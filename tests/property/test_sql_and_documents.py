"""Property-based tests: SQL aggregates and the document store
against plain-Python reference computations."""

from hypothesis import given, settings, strategies as st

from repro.core.database import SpitzDatabase
from repro.core.documents import DocumentStore

amounts = st.lists(
    st.integers(-1000, 1000), min_size=0, max_size=25
)


def _sales_db(values):
    db = SpitzDatabase(block_batch=8)
    db.sql("CREATE TABLE t (id INT, v INT, g STR, PRIMARY KEY (id))")
    for index, value in enumerate(values):
        group = "abc"[index % 3]
        db.sql(
            f"INSERT INTO t (id, v, g) VALUES ({index}, {value}, '{group}')"
        )
    return db


@given(values=amounts)
@settings(max_examples=40, deadline=None)
def test_aggregates_match_python(values):
    db = _sales_db(values)
    assert db.sql("SELECT COUNT(*) FROM t") == [{"count(*)": len(values)}]
    total = db.sql("SELECT SUM(v) FROM t")[0]["sum(v)"]
    assert total == (sum(values) if values else None)
    if values:
        assert db.sql("SELECT MIN(v) FROM t")[0]["min(v)"] == min(values)
        assert db.sql("SELECT MAX(v) FROM t")[0]["max(v)"] == max(values)
        avg = db.sql("SELECT AVG(v) FROM t")[0]["avg(v)"]
        assert abs(avg - sum(values) / len(values)) < 1e-9


@given(values=amounts)
@settings(max_examples=40, deadline=None)
def test_group_by_partitions_exactly(values):
    db = _sales_db(values)
    rows = db.sql("SELECT g, COUNT(*) FROM t GROUP BY g")
    reference = {}
    for index, _value in enumerate(values):
        group = "abc"[index % 3]
        reference[group] = reference.get(group, 0) + 1
    assert {row["g"]: row["count(*)"] for row in rows} == reference
    # Group counts always add back up to the table count.
    assert sum(row["count(*)"] for row in rows) == len(values)


@given(values=amounts, low=st.integers(-1000, 1000),
       span=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_order_by_is_a_permutation_of_where(values, low, span):
    db = _sales_db(values)
    high = low + span
    ordered = db.sql(
        f"SELECT v FROM t WHERE v BETWEEN {low} AND {high} ORDER BY v"
    )
    got = [row["v"] for row in ordered]
    expected = sorted(v for v in values if low <= v <= high)
    assert got == expected


doc_scripts = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.integers(0, 8),  # doc id
        st.integers(0, 50),  # field value
    ),
    max_size=30,
)


@given(script=doc_scripts)
@settings(max_examples=40, deadline=None)
def test_document_store_matches_dict_model(script):
    store = DocumentStore()
    collection = store.collection("c")
    model = {}
    for action, doc_number, value in script:
        doc_id = f"d{doc_number}"
        if action == "put":
            document = {"n": value}
            collection.put(doc_id, document)
            model[doc_id] = document
        else:
            assert collection.delete(doc_id) == (doc_id in model)
            model.pop(doc_id, None)
    assert collection.ids() == sorted(model)
    for doc_id, document in model.items():
        assert collection.get(doc_id) == document
    # find() agrees with a linear scan of the model.
    for probe in {value for _, _, value in script} | {0}:
        found = {doc_id for doc_id, _ in collection.find("n", value=probe)}
        expected = {
            doc_id for doc_id, doc in model.items() if doc["n"] == probe
        }
        assert found == expected
    assert store.db.verify_chain()
