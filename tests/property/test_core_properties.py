"""Property-based tests for core components: universal keys, the
value codec, MVCC snapshots, HLC ordering, and SQL round-trips."""

from hypothesis import given, settings, strategies as st

from repro.core.schema import decode_value, encode_value
from repro.core.sql import Select, parse
from repro.core.universal_key import UniversalKey
from repro.txn.hlc import HybridLogicalClock
from repro.txn.mvcc import MVCCStore


# -- universal keys ---------------------------------------------------------

columns = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=8,
)


@given(
    column=columns,
    pk=st.binary(max_size=16),
    timestamp=st.integers(0, 2**60),
    value=st.binary(max_size=16),
)
@settings(max_examples=150, deadline=None)
def test_universal_key_round_trip(column, pk, timestamp, value):
    ukey = UniversalKey.for_cell(column, pk, timestamp, value)
    decoded = UniversalKey.decode(ukey.encode())
    assert decoded.column == column
    assert decoded.primary_key == pk
    assert decoded.timestamp == timestamp


@given(
    column=columns,
    pk=st.binary(max_size=16),
    stamps=st.lists(st.integers(0, 2**40), min_size=2, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_universal_key_prefix_encloses_versions(column, pk, stamps):
    low, high = UniversalKey.prefix(column, pk)
    for timestamp in stamps:
        encoded = UniversalKey.for_cell(column, pk, timestamp, b"v").encode()
        assert low <= encoded <= high


# -- value codec -------------------------------------------------------------

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**30), 2**30),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=10,
)


@given(value=st.integers(-(2**62), 2**62))
def test_int_codec_round_trip(value):
    assert decode_value(encode_value("int", value)) == value


@given(value=st.floats(allow_nan=False, allow_infinity=False))
def test_float_codec_round_trip(value):
    assert decode_value(encode_value("float", value)) == value


@given(value=st.text(max_size=64))
def test_str_codec_round_trip(value):
    assert decode_value(encode_value("str", value)) == value


@given(value=st.one_of(st.lists(json_values, max_size=3),
                       st.dictionaries(st.text(max_size=4), json_values,
                                       max_size=3)))
@settings(max_examples=80, deadline=None)
def test_json_codec_round_trip(value):
    assert decode_value(encode_value("json", value)) == value


# -- MVCC snapshots -----------------------------------------------------------

@given(
    writes=st.lists(
        st.tuples(st.sampled_from("abc"), st.integers(0, 100)),
        min_size=1,
        max_size=20,
    ),
    probe=st.integers(0, 25),
)
@settings(max_examples=100, deadline=None)
def test_mvcc_snapshot_is_prefix_state(writes, probe):
    """Reading at snapshot ts yields exactly the last write at or
    before that timestamp — MVCC's core contract."""
    store = MVCCStore()
    model_at = {}
    state = {}
    for ts, (key, value) in enumerate(writes, start=1):
        store.install({key: value}, ts, ts)
        state = dict(state)
        state[key] = value
        model_at[ts] = state
    snapshot = min(probe, len(writes))
    expected = model_at.get(snapshot, {})
    for key in "abc":
        version = store.read(key, snapshot)
        if key in expected:
            assert version.value == expected[key]
        else:
            assert version is None


# -- HLC -----------------------------------------------------------------------

@given(
    script=st.lists(
        st.tuples(st.sampled_from([0, 1]), st.booleans()),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_hlc_causal_order_never_violated(script):
    """Timestamps strictly increase along every causal chain: local
    successor events on one node, and send -> receive edges between
    skewed nodes.  (Concurrent events on different nodes may tie —
    HLC only orders causality.)"""
    clocks = [
        HybridLogicalClock(physical_clock=lambda: 100),
        HybridLogicalClock(physical_clock=lambda: 37),  # far behind
    ]
    last_on_node = [None, None]
    for node, send in script:
        stamp = clocks[node].now()
        if last_on_node[node] is not None:
            assert stamp > last_on_node[node]
        last_on_node[node] = stamp
        if send:
            received = clocks[1 - node].update(stamp)
            assert received > stamp  # send happens-before receive
            if last_on_node[1 - node] is not None:
                assert received > last_on_node[1 - node]
            last_on_node[1 - node] = received


# -- SQL round trip --------------------------------------------------------------

identifiers = st.text(
    alphabet=st.sampled_from("abcdefgh"), min_size=1, max_size=6
)


@given(
    table=identifiers,
    column=identifiers,
    value=st.integers(-1000, 1000),
    limit=st.integers(1, 50),
)
@settings(max_examples=100, deadline=None)
def test_select_parse_round_trip(table, column, value, limit):
    statement = parse(
        f"SELECT {column} FROM {table} WHERE {column} = {value} "
        f"LIMIT {limit}"
    )
    assert isinstance(statement, Select)
    assert statement.table == table
    assert statement.columns == (column,)
    assert statement.where[0].value == value
    assert statement.limit == limit
