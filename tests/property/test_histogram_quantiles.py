"""Property-based tests for histogram quantile accuracy.

The geometric bucket grid (``2**(k/4)``) promises ~19% relative
resolution: any percentile estimate is the upper bound of the bucket
holding the rank-``q`` observation, so it can overshoot the exact
order-statistic by at most one geometric step (``2**0.25``) and never
undershoot it.  The windowed estimate from the time-series layer must
agree with a from-scratch histogram over the same observations to the
same tolerance — bucket-delta subtraction loses nothing but the
min/max clamp.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeries

GEOMETRIC_STEP = 2.0 ** 0.25

# Well inside the bucket grid (9.3e-10 .. 1.1e12), so the one-step
# bound applies with no edge-bucket truncation.
values_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)
quantile_strategy = st.floats(min_value=0.01, max_value=1.0)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def exact_quantile(values, q):
    """The same rank convention the histogram uses, but exact."""
    ordered = sorted(values)
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[rank - 1]


@given(values=values_strategy, q=quantile_strategy)
@settings(max_examples=150, deadline=None)
def test_percentile_within_one_geometric_bucket_of_exact(values, q):
    hist = MetricsRegistry().histogram("lat")
    for value in values:
        hist.observe(value)
    estimate = hist.percentile(q)
    exact = exact_quantile(values, q)
    assert estimate is not None
    # Never undershoots; overshoots by at most one geometric step.
    assert exact <= estimate + 1e-12
    assert estimate <= exact * GEOMETRIC_STEP * (1 + 1e-9)


@given(values=values_strategy, q=quantile_strategy)
@settings(max_examples=100, deadline=None)
def test_windowed_percentile_agrees_with_fresh_histogram(values, q):
    registry = MetricsRegistry()
    clock = FakeClock()
    ts = TimeSeries(registry, slot_seconds=1.0, retention_slots=10,
                    clock=clock)
    ts.tick()  # baseline
    hist = registry.histogram("lat")
    for value in values:
        hist.observe(value)
    clock.advance(1.0)
    ts.tick()

    fresh = MetricsRegistry().histogram("lat")
    for value in values:
        fresh.observe(value)

    windowed = ts.percentile("lat", q, 60.0)
    reference = fresh.percentile(q)
    assert windowed is not None and reference is not None
    # The windowed estimate is the raw bucket bound; the registry one
    # additionally clamps to observed min/max.  Same bucket either
    # way, so they differ by at most the clamp: one geometric step.
    ratio = windowed / reference
    assert 1.0 - 1e-9 <= ratio <= GEOMETRIC_STEP * (1 + 1e-9)


@given(values=values_strategy)
@settings(max_examples=60, deadline=None)
def test_summary_quantiles_are_sorted(values):
    hist = MetricsRegistry().histogram("lat")
    for value in values:
        hist.observe(value)
    p50 = hist.percentile(0.5)
    p95 = hist.percentile(0.95)
    p99 = hist.percentile(0.99)
    assert p50 <= p95 <= p99
    assert math.isfinite(p99)
