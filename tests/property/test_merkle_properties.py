"""Property-based tests for Merkle trees and the chunker."""

from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import MerkleTree
from repro.forkbase.chunker import RollingChunker


@given(leaves=st.lists(st.binary(max_size=32), min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_every_leaf_has_valid_proof(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert tree.prove(index).verify(leaf, tree.root)


@given(
    leaves=st.lists(st.binary(max_size=16), min_size=2, max_size=60),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_single_bit_tamper_always_detected(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    leaf = leaves[index]
    if not leaf:
        tampered = b"\x01"
    else:
        byte = data.draw(st.integers(0, len(leaf) - 1))
        bit = data.draw(st.integers(0, 7))
        tampered = (
            leaf[:byte]
            + bytes([leaf[byte] ^ (1 << bit)])
            + leaf[byte + 1:]
        )
    assert not tree.prove(index).verify(tampered, tree.root)


@given(leaves=st.lists(st.binary(max_size=16), min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_incremental_equals_bulk(leaves):
    incremental = MerkleTree()
    for leaf in leaves:
        incremental.append(leaf)
    assert incremental.root == MerkleTree(leaves).root


@given(data=st.binary(max_size=30_000))
@settings(max_examples=60, deadline=None)
def test_chunker_reassembles_and_is_deterministic(data):
    chunker = RollingChunker(mask_bits=6, min_size=64, max_size=2048)
    chunks = chunker.split(data)
    assert b"".join(chunks) == data
    assert chunks == chunker.split(data)
    if data:
        assert all(chunks)  # no empty chunks


@given(
    prefix=st.binary(min_size=2_000, max_size=6_000),
    insertion=st.binary(min_size=1, max_size=64),
    suffix=st.binary(min_size=2_000, max_size=6_000),
)
@settings(max_examples=30, deadline=None)
def test_chunker_locality(prefix, insertion, suffix):
    """An insertion can only affect chunks near the edit point: the
    chunk sets before and after share a significant portion whenever
    the data is large enough to span several chunks."""
    chunker = RollingChunker(mask_bits=5, min_size=64, max_size=1024)
    original = chunker.split(prefix + suffix)
    edited = chunker.split(prefix + insertion + suffix)
    if len(original) >= 8:
        shared = len(set(original) & set(edited))
        assert shared >= len(original) * 0.25
