"""Property: crash anywhere, recover a verified prefix.

For *any* sequence of operations and *any* crash offset into the WAL
byte stream, recovery must yield a database that (a) passes its full
ledger chain audit and (b) holds exactly the state of some prefix of
the committed sequence — never a partial transaction, never silently
corrupted state.  A flipped byte must either be detected
(:class:`TamperDetectedError`) or fall in a region whose loss still
leaves a clean prefix (torn tail).
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.durability import DurableDatabase
from repro.durability.crashsim import (
    flip_byte,
    truncate_wal_stream,
    wal_stream_length,
)
from repro.durability.wal import list_segments
from repro.errors import TamperDetectedError

KEYS = [b"a", b"b", b"c", b"d"]

# An op is (key_index, value-or-None); None deletes when present.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(KEYS) - 1),
        st.one_of(st.none(), st.binary(min_size=0, max_size=6)),
    ),
    min_size=1,
    max_size=10,
)


def _run_ops(ddb, ops):
    """Apply ops; return the model state after each committed op."""
    states = [{}]
    model = {}
    for key_index, value in ops:
        key = KEYS[key_index]
        if value is None:
            if key not in model:
                states.append(dict(model))
                continue  # deleting an absent key: skip, no commit
            ddb.delete(key)
            model.pop(key)
        else:
            ddb.put(key, value)
            model[key] = value
        states.append(dict(model))
    return states


def _committed_prefix_states(ops):
    """Model state after each commit (skips count as no-ops)."""
    states = [{}]
    model = {}
    for key_index, value in ops:
        key = KEYS[key_index]
        if value is None:
            if key in model:
                model.pop(key)
                states.append(dict(model))
        else:
            model[key] = value
            states.append(dict(model))
    return states


@settings(max_examples=40, deadline=None)
@given(ops=OPS, data=st.data())
def test_crash_at_any_offset_recovers_a_verified_prefix(ops, data):
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        with DurableDatabase.open(root) as ddb:
            _run_ops(ddb, ops)
        total = wal_stream_length(root)
        offset = data.draw(
            st.integers(min_value=0, max_value=total), label="crash_offset"
        )
        truncate_wal_stream(root, offset)
        with DurableDatabase.open(root) as recovered:
            assert recovered.verify_chain()
            state = dict(recovered.scan(b"", b"\xff" * 4))
            prefixes = _committed_prefix_states(ops)
            assert recovered.db.ledger.height < len(prefixes) + 1
            assert state == prefixes[recovered.db.ledger.height], (
                "recovered state is not the committed prefix at its height"
            )


@settings(max_examples=40, deadline=None)
@given(ops=OPS, data=st.data())
def test_flipped_byte_is_detected_or_leaves_clean_prefix(ops, data):
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        with DurableDatabase.open(root) as ddb:
            _run_ops(ddb, ops)
        segments = list_segments(root)
        sizes = [path.stat().st_size for _idx, path in segments]
        offset = data.draw(
            st.integers(min_value=0, max_value=sum(sizes) - 1),
            label="flip_offset",
        )
        for (idx, path), size in zip(segments, sizes):
            if offset < size:
                flip_byte(path, offset)
                break
            offset -= size
        prefixes = _committed_prefix_states(ops)
        try:
            with DurableDatabase.open(root) as recovered:
                assert recovered.verify_chain()
                state = dict(recovered.scan(b"", b"\xff" * 4))
                assert state in prefixes, (
                    "undetected corruption produced a non-prefix state"
                )
        except TamperDetectedError:
            pass  # detection is the other acceptable outcome
