"""Property-based tests for the verifiable search plane.

The load-bearing properties:

- the order-preserving value codec really preserves order;
- ``InvertedIndex.range(low, high)`` equals the brute-force filter
  over everything indexed (the ISSUE's range/boundary property);
- postings returned to callers alias nothing — mutating a result list
  can never corrupt the index;
- a ``SearchProof`` built over arbitrary data verifies and carries
  exactly the brute-force answer, for every predicate shape;
- committed roots are insertion-order invariant.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.forkbase.chunk_store import ChunkStore
from repro.core.ledger import SpitzLedger
from repro.indexes.inverted import InvertedIndex
from repro.search.committed import (
    SEARCH_ROOT_KEY,
    CommittedSearchIndex,
    decode_postings,
    decode_search_value,
    encode_postings,
    encode_search_value,
)
from repro.search.proofs import (
    SearchPredicate,
    build_search_proof,
    evaluate_on_inverted,
)

#: Indexable numerics: finite floats plus ints in a range that
#: float64 represents exactly (the codec canonicalizes int → float).
numerics = st.one_of(
    st.integers(-(2**52), 2**52),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
strings = st.text(max_size=12)
ukeys = st.binary(min_size=1, max_size=12)


# -- value codec ------------------------------------------------------------


@given(a=numerics, b=numerics)
@settings(max_examples=200, deadline=None)
def test_numeric_encoding_preserves_order(a, b):
    ea, eb = encode_search_value(a), encode_search_value(b)
    assert (ea < eb) == (float(a) < float(b))
    assert (ea == eb) == (float(a) == float(b))


@given(a=strings, b=strings)
@settings(max_examples=200, deadline=None)
def test_string_encoding_preserves_order(a, b):
    ea, eb = encode_search_value(a), encode_search_value(b)
    assert (ea < eb) == (a < b)
    assert (ea == eb) == (a == b)


@given(value=st.one_of(numerics, strings))
@settings(max_examples=200, deadline=None)
def test_value_codec_round_trips(value):
    decoded = decode_search_value(encode_search_value(value))
    if isinstance(value, str):
        assert decoded == value
    else:
        assert decoded == float(value)


@given(entries=st.lists(ukeys, max_size=20))
@settings(max_examples=150, deadline=None)
def test_postings_codec_round_trips_canonically(entries):
    blob = encode_postings(entries)
    assert decode_postings(blob) == tuple(sorted(set(entries)))
    # Canonical: any permutation encodes to the same bytes.
    shuffled = list(entries)
    random.Random(0).shuffle(shuffled)
    assert encode_postings(shuffled) == blob


# -- inverted index vs brute force ------------------------------------------


rows_numeric = st.lists(
    st.tuples(st.integers(0, 30), ukeys), min_size=1, max_size=40
)
rows_string = st.lists(
    st.tuples(st.text(min_size=1, max_size=4), ukeys),
    min_size=1,
    max_size=40,
)


@given(rows=rows_numeric, low=st.integers(-2, 32), span=st.integers(0, 12))
@settings(max_examples=150, deadline=None)
def test_numeric_range_equals_brute_force(rows, low, span):
    index = InvertedIndex()
    for value, ukey in rows:
        index.add("t.q", value, ukey)
    high = low + span
    expected = sorted(
        {ukey for value, ukey in rows if low <= value <= high}
    )
    assert sorted(set(index.range("t.q", low, high))) == expected


@given(rows=rows_string, low=strings, high=strings)
@settings(max_examples=150, deadline=None)
def test_string_range_equals_brute_force(rows, low, high):
    if low > high:
        low, high = high, low
    index = InvertedIndex()
    for value, ukey in rows:
        index.add("t.s", value, ukey)
    expected = sorted(
        {ukey for value, ukey in rows if low <= value <= high}
    )
    assert sorted(set(index.range("t.s", low, high))) == expected


@given(rows=rows_numeric)
@settings(max_examples=100, deadline=None)
def test_range_boundaries_are_inclusive(rows):
    index = InvertedIndex()
    for value, ukey in rows:
        index.add("t.q", value, ukey)
    value, ukey = rows[0]
    assert ukey in index.range("t.q", value, value)


@given(rows=rows_numeric)
@settings(max_examples=100, deadline=None)
def test_mutating_returned_postings_cannot_corrupt_index(rows):
    index = InvertedIndex()
    for value, ukey in rows:
        index.add("t.q", value, ukey)
    value = rows[0][0]
    before = list(index.lookup("t.q", value))
    stolen = index.lookup("t.q", value)
    stolen.clear()
    stolen.append(b"injected")
    ranged = index.range("t.q", value, value)
    ranged.reverse()
    ranged.append(b"also-injected")
    assert index.lookup("t.q", value) == before
    assert b"injected" not in index.lookup("t.q", value)
    assert b"also-injected" not in index.range("t.q", value, value)


# -- underlying ordered structures vs brute force ---------------------------


@given(
    entries=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 9)),
        min_size=1,
        max_size=40,
    ),
    low=st.integers(-2, 42),
    span=st.integers(0, 15),
)
@settings(max_examples=150, deadline=None)
def test_skiplist_range_equals_brute_force(entries, low, span):
    from repro.indexes.skiplist import SkipList

    index = SkipList()
    model = {}
    for key, value in entries:
        index.insert(key, value)
        model[key] = value
    high = low + span
    expected = sorted(
        (key, value) for key, value in model.items() if low <= key <= high
    )
    assert list(index.range(low, high)) == expected
    # Exclusive high drops exactly the boundary entry, nothing else.
    exclusive = list(index.range(low, high, inclusive=False))
    assert exclusive == [kv for kv in expected if kv[0] != high]


@given(
    entries=st.lists(
        st.tuples(st.binary(max_size=4), st.integers(0, 9)),
        min_size=1,
        max_size=40,
    ),
    prefix=st.binary(max_size=3),
)
@settings(max_examples=150, deadline=None)
def test_radix_prefix_equals_brute_force(entries, prefix):
    from repro.indexes.radix import RadixTree

    tree = RadixTree()
    model = {}
    for key, value in entries:
        tree.insert(key, value)
        model[key] = value
    expected = sorted(
        (key, value)
        for key, value in model.items()
        if key.startswith(prefix)
    )
    assert sorted(tree.prefix_items(prefix)) == expected


# -- end-to-end proof property ----------------------------------------------


predicates = st.one_of(
    st.builds(SearchPredicate.eq, st.integers(0, 30)),
    st.builds(SearchPredicate.ge, st.integers(0, 30)),
    st.builds(SearchPredicate.gt, st.integers(0, 30)),
    st.builds(SearchPredicate.le, st.integers(0, 30)),
    st.builds(SearchPredicate.lt, st.integers(0, 30)),
    st.builds(
        lambda low, span: SearchPredicate.between(low, low + span),
        st.integers(0, 30),
        st.integers(0, 10),
    ),
)


@given(rows=rows_numeric, predicate=predicates)
@settings(max_examples=60, deadline=None)
def test_search_proof_carries_exact_brute_force_answer(rows, predicate):
    chunks = ChunkStore()
    ledger = SpitzLedger(chunks)
    inverted = InvertedIndex()
    index = CommittedSearchIndex(chunks, ["t.q"])
    for value, ukey in rows:
        inverted.add("t.q", value, ukey)
        index.note_change("t.q", value)
    ledger.append_block({SEARCH_ROOT_KEY: index.seal(inverted)})
    proof = build_search_proof(ledger, index, "t.q", predicate)
    assert proof.verify(ledger.digest().chain_digest)
    expected = sorted(
        {ukey for value, ukey in rows if predicate.matches(value)}
    )
    assert sorted(set(proof.ukeys)) == expected
    # The unverified path answers identically (as a set of ukeys).
    assert sorted(
        set(evaluate_on_inverted(inverted, "t.q", predicate))
    ) == expected


@given(rows=rows_string)
@settings(max_examples=60, deadline=None)
def test_committed_root_is_insertion_order_invariant(rows):
    def build(ordering):
        chunks = ChunkStore()
        inverted = InvertedIndex()
        index = CommittedSearchIndex(chunks, ["t.s"])
        for value, ukey in ordering:
            inverted.add("t.s", value, ukey)
            index.note_change("t.s", value)
        index.seal(inverted)
        return index.manifest_bytes()

    shuffled = list(rows)
    random.Random(7).shuffle(shuffled)
    assert build(rows) == build(shuffled)
