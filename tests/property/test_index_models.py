"""Property-based model tests: ordered indexes vs a dict model."""

from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.indexes.bplus import BPlusTree
from repro.indexes.radix import RadixTree
from repro.indexes.skiplist import SkipList

#: Operation scripts over a small key universe (to exercise overwrite
#: and delete paths heavily).
int_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 40),
    ),
    max_size=120,
)

bytes_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.binary(min_size=0, max_size=5),
    ),
    max_size=120,
)


def _run_script(index, ops, model):
    for action, key in ops:
        if action == "insert":
            index.insert(key, str(key))
            model[key] = str(key)
        else:
            if key in model:
                index.delete(key)
                del model[key]
            else:
                try:
                    index.delete(key)
                    raise AssertionError("delete of absent key succeeded")
                except KeyNotFoundError:
                    pass


@given(ops=int_ops, order=st.sampled_from([4, 5, 8, 64]))
@settings(max_examples=120, deadline=None)
def test_bplus_matches_dict(ops, order):
    tree = BPlusTree(order=order)
    model = {}
    _run_script(tree, ops, model)
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)
    for key in model:
        assert tree.get(key) == model[key]


@given(ops=int_ops, low=st.integers(0, 40), span=st.integers(0, 20))
@settings(max_examples=100, deadline=None)
def test_bplus_range_matches_dict(ops, low, span):
    tree = BPlusTree(order=4)
    model = {}
    _run_script(tree, ops, model)
    high = low + span
    expected = [(k, v) for k, v in sorted(model.items()) if low <= k <= high]
    assert list(tree.range(low, high)) == expected


@given(ops=int_ops)
@settings(max_examples=100, deadline=None)
def test_skiplist_matches_dict(ops):
    skiplist = SkipList(seed=1)
    model = {}
    _run_script(skiplist, ops, model)
    assert list(skiplist.items()) == sorted(model.items())
    assert len(skiplist) == len(model)


@given(ops=bytes_ops)
@settings(max_examples=120, deadline=None)
def test_radix_matches_dict(ops):
    tree = RadixTree()
    model = {}
    _run_script(tree, ops, model)
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)


@given(ops=bytes_ops, prefix=st.binary(max_size=3))
@settings(max_examples=100, deadline=None)
def test_radix_prefix_matches_dict(ops, prefix):
    tree = RadixTree()
    model = {}
    _run_script(tree, ops, model)
    expected = [
        (k, v) for k, v in sorted(model.items()) if k.startswith(prefix)
    ]
    assert list(tree.prefix_items(prefix)) == expected
