"""Property-based tests: SIRI structural invariance (hypothesis).

The defining property of the family (paper Section 3.1, ref [59]):
for any key/value set and any partition of it into ordered update
batches (including deletes of absent keys), the final root digest
depends only on the final logical content.
"""

from hypothesis import given, settings, strategies as st

from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.pos_tree import PosTree
from repro.indexes.siri import DELETE

keys = st.binary(min_size=1, max_size=12)
values = st.binary(min_size=0, max_size=16)

#: A script of (key, value-or-delete) operations.
scripts = st.lists(
    st.tuples(keys, st.one_of(values, st.just(DELETE))),
    min_size=0,
    max_size=60,
)


def _final_state(script):
    state = {}
    for key, value in script:
        if value is DELETE:
            state.pop(key, None)
        else:
            state[key] = value
    return state


def _apply_script(index, script, batch_size):
    batch = {}
    for key, value in script:
        batch[key] = value
        if len(batch) >= batch_size:
            index = index.apply(batch)
            batch = {}
    if batch:
        index = index.apply(batch)
    return index


def _check_invariance(make_index, script, batch_size):
    store = ChunkStore()
    scripted = _apply_script(make_index(store), script, batch_size)
    state = _final_state(script)
    fresh = make_index(store).apply(state) if state else make_index(store)
    assert scripted.root == fresh.root
    assert dict(scripted.items()) == state


@given(script=scripts, batch_size=st.integers(1, 7))
@settings(max_examples=120, deadline=None)
def test_pos_tree_invariance(script, batch_size):
    _check_invariance(
        lambda store: PosTree.empty(store, mask_bits=2), script, batch_size
    )


@given(script=scripts, batch_size=st.integers(1, 7))
@settings(max_examples=120, deadline=None)
def test_mpt_invariance(script, batch_size):
    _check_invariance(
        MerklePatriciaTrie.empty, script, batch_size
    )


@given(script=scripts, batch_size=st.integers(1, 7))
@settings(max_examples=100, deadline=None)
def test_mbt_invariance(script, batch_size):
    _check_invariance(
        lambda store: MerkleBucketTree.empty(store, buckets=8),
        script,
        batch_size,
    )


@given(script=scripts)
@settings(max_examples=60, deadline=None)
def test_pos_tree_proofs_always_verify(script):
    store = ChunkStore()
    tree = _apply_script(PosTree.empty(store, mask_bits=2), script, 5)
    state = _final_state(script)
    for key in list(state)[:10]:
        value, proof = tree.get_with_proof(key)
        assert value == state[key]
        assert PosTree.verify_proof(proof, tree.root)
    value, proof = tree.get_with_proof(b"\xffnot-a-key")
    assert value is None
    assert PosTree.verify_proof(proof, tree.root)


@given(script=scripts)
@settings(max_examples=60, deadline=None)
def test_pos_tree_load_round_trip(script):
    store = ChunkStore()
    tree = _apply_script(PosTree.empty(store, mask_bits=2), script, 4)
    loaded = PosTree.load(store, tree.root, mask_bits=2)
    assert loaded.root == tree.root
    assert list(loaded.items()) == list(tree.items())
    # A post-load update must behave identically to the original.
    update = {b"new-key": b"new-value"}
    assert loaded.apply(update).root == tree.apply(update).root
