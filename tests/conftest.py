"""Shared fixtures, plus the ``stress`` marker's per-test timeout.

Threaded hammer tests are marked ``@pytest.mark.stress``; a deadlock
in one must fail CI, not hang it.  There is no pytest-timeout in the
baked toolchain, so the timeout is a SIGALRM armed around the test
call (tests run in the main thread, where the signal is delivered).
On platforms without SIGALRM the tests simply run unguarded.
"""

import signal

import pytest

from repro.core.database import SpitzDatabase
from repro.forkbase.chunk_store import ChunkStore

#: Default per-test budget for @pytest.mark.stress, seconds.  Generous:
#: the hammer tests finish in a few seconds; only a real deadlock or
#: livelock gets anywhere near it.
STRESS_TIMEOUT_SECONDS = 60


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("stress")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    timeout = int(marker.kwargs.get("timeout", STRESS_TIMEOUT_SECONDS))

    def _on_alarm(signum, frame):
        pytest.fail(
            f"stress test exceeded its {timeout}s timeout "
            "(deadlock or livelock?)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(timeout)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def store():
    """A fresh content-addressed chunk store."""
    return ChunkStore()


@pytest.fixture
def db():
    """A fresh single-node Spitz database."""
    return SpitzDatabase()


@pytest.fixture
def loaded_db():
    """A Spitz database preloaded with 200 sequential KV records."""
    database = SpitzDatabase()
    for i in range(200):
        database.put(f"key{i:04d}".encode(), f"value{i}".encode())
    return database
