"""Shared fixtures for the test suite."""

import pytest

from repro.core.database import SpitzDatabase
from repro.forkbase.chunk_store import ChunkStore


@pytest.fixture
def store():
    """A fresh content-addressed chunk store."""
    return ChunkStore()


@pytest.fixture
def db():
    """A fresh single-node Spitz database."""
    return SpitzDatabase()


@pytest.fixture
def loaded_db():
    """A Spitz database preloaded with 200 sequential KV records."""
    database = SpitzDatabase()
    for i in range(200):
        database.put(f"key{i:04d}".encode(), f"value{i}".encode())
    return database
