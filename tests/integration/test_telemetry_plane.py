"""Integration tests for the time-series telemetry plane end to end.

A real listening socket fronts a cluster whose telemetry plane runs on
an injected fake clock (manual mode — no ticker thread), so every
window edge in these tests is deterministic:

- an error burst trips the fast+slow burn-rate rule and flips
  ``/readyz`` to 503 with the burning SLO named; 61 clean seconds
  later the fast window drains and readiness recovers;
- ``GET /metrics`` serves valid Prometheus text (the strict CI parser
  accepts it) with windowed ``_rate`` series and ``le``-labelled
  buckets, and counters are monotone across successive scrapes;
- ``/v1/stats`` carries ``windows``/``slo`` keys, honors ``Accept:
  text/plain`` with the exposition format, and inlines a profiler
  report for ``?profile_seconds=``;
- per-shard registry snapshots in ``/v1/stats`` sum to the facade's
  write counts (the satellite regression);
- ``spitz top --iterations 1`` renders one frame from the live server.
"""

import http.client
import json

import pytest

from repro.cli import main as cli_main
from repro.core.node import SpitzCluster
from repro.obs.exposition import (
    PROM_CONTENT_TYPE,
    check_monotone,
    parse_prometheus,
)
from repro.serve.client import HttpClusterClient
from repro.serve.server import SpitzHTTPServer, serve_cluster


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def rig():
    """Cluster + server with a manual-mode telemetry plane."""
    clock = FakeClock()
    cluster = SpitzCluster(nodes=2, telemetry_clock=clock)
    cluster.start()
    server = SpitzHTTPServer(cluster)
    server.start()
    yield clock, cluster, server
    server.stop()
    cluster.stop()


def _raw(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.headers, response.read()
    finally:
        conn.close()


def _drive(port, healthy=0, malformed=0):
    """Healthy puts/gets and malformed gets through the real socket."""
    with HttpClusterClient("127.0.0.1", port, attempts=1) as client:
        for i in range(healthy):
            assert client.put(b"k:%d" % i, b"v").ok
            assert client.get(b"k:%d" % i).ok
    for _ in range(malformed):
        # A get with no "key" raises inside the handler: an error
        # response, counted against requests.kind.get.errors.
        status, _headers, raw = _raw(
            port, "POST", "/v1/request",
            body=json.dumps(
                {"kind": "get", "payload": {"wrong_field": 1}}
            ).encode(),
        )
        assert status == 200
        assert json.loads(raw)["ok"] is False


class TestSloReadiness:
    def test_error_burst_trips_readyz_then_recovers(self, rig):
        clock, cluster, server = rig
        plane = cluster.telemetry
        assert plane is not None and plane.manual
        plane.tick()  # baseline

        # Healthy minute: readiness stays green.
        _drive(server.port, healthy=15)
        clock.advance(1.0)
        plane.tick()
        status, _headers, raw = _raw(server.port, "GET", "/readyz")
        assert status == 200
        assert json.loads(raw)["status"] == "ready"

        # Error burst: 30 failed gets in one slot — burn is 100x the
        # 1% budget in both windows, with enough volume to mean it.
        _drive(server.port, malformed=30)
        clock.advance(1.0)
        plane.tick()
        status, _headers, raw = _raw(server.port, "GET", "/readyz")
        assert status == 503
        detail = json.loads(raw)
        assert detail["status"] == "slo_burn"
        assert any("get-availability" in reason for reason in detail["slo"])

        # 61 clean seconds: the burst leaves the fast window (still in
        # the slow one) and readiness recovers — fast-window-paced.
        clock.advance(61.0)
        plane.tick()
        status, _headers, raw = _raw(server.port, "GET", "/readyz")
        assert status == 200
        assert json.loads(raw)["status"] == "ready"

    def test_liveness_never_gated_by_slo(self, rig):
        clock, cluster, server = rig
        plane = cluster.telemetry
        plane.tick()
        _drive(server.port, malformed=30)
        clock.advance(1.0)
        plane.tick()
        assert _raw(server.port, "GET", "/healthz")[0] == 200


class TestMetricsEndpoint:
    def test_scrape_is_valid_prom_text_with_rates_and_buckets(self, rig):
        clock, cluster, server = rig
        plane = cluster.telemetry
        plane.tick()
        _drive(server.port, healthy=10)
        clock.advance(1.0)
        plane.tick()
        status, headers, raw = _raw(server.port, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE
        series = parse_prometheus(raw.decode("utf-8"))
        assert series["spitz_db_commits_total"] >= 10
        assert series['spitz_requests_total_rate{window="60s"}'] > 0
        assert any("_bucket{le=" in key for key in series)
        assert 'spitz_request_latency_seconds_bucket{le="+Inf"}' in series

    def test_counters_monotone_across_scrapes(self, rig):
        clock, cluster, server = rig
        _drive(server.port, healthy=5)
        before = parse_prometheus(
            _raw(server.port, "GET", "/metrics")[2].decode("utf-8")
        )
        _drive(server.port, healthy=5)
        after = parse_prometheus(
            _raw(server.port, "GET", "/metrics")[2].decode("utf-8")
        )
        assert check_monotone(before, after) == []
        assert (
            after["spitz_db_commits_total"]
            > before["spitz_db_commits_total"]
        )

    def test_metrics_needs_no_auth_like_health_probes(self):
        svc = serve_cluster(nodes=1, auth_tokens=["sesame"])
        try:
            assert _raw(svc.port, "GET", "/metrics")[0] == 200
        finally:
            svc.stop()


class TestStatsRoute:
    def test_stats_carries_windows_and_slo(self, rig):
        clock, cluster, server = rig
        plane = cluster.telemetry
        plane.tick()
        _drive(server.port, healthy=5)
        clock.advance(1.0)
        plane.tick()
        body = json.loads(_raw(server.port, "GET", "/v1/stats")[2])
        assert "60s" in body["windows"]["windows"]
        assert body["slo"]["ok"] is True
        names = {o["name"] for o in body["slo"]["objectives"]}
        assert "get-availability" in names

    def test_accept_text_plain_negotiates_exposition(self, rig):
        clock, cluster, server = rig
        _drive(server.port, healthy=3)
        status, headers, raw = _raw(
            server.port, "GET", "/v1/stats",
            headers={"Accept": "text/plain"},
        )
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE
        parse_prometheus(raw.decode("utf-8"))

    def test_profile_seconds_inlines_a_report(self, rig):
        clock, cluster, server = rig
        body = json.loads(
            _raw(server.port, "GET", "/v1/stats?profile_seconds=0.05")[2]
        )
        profile = body["profile"]
        assert profile["samples"] >= 1
        assert profile["elapsed"] > 0
        assert isinstance(profile["hottest"], list)

    def test_bogus_profile_seconds_ignored(self, rig):
        clock, cluster, server = rig
        body = json.loads(
            _raw(server.port, "GET", "/v1/stats?profile_seconds=banana")[2]
        )
        assert "profile" not in body


class TestShardSnapshots:
    def test_shard_counters_sum_to_facade_writes(self):
        # The satellite regression: per-shard registry snapshots under
        # the "shards" key must sum to the facade's write counts.
        svc = serve_cluster(nodes=2, shards=4)
        try:
            with HttpClusterClient(
                "127.0.0.1", svc.port, attempts=1
            ) as client:
                for i in range(32):
                    assert client.put(b"sk:%d" % i, b"v").ok
            body = json.loads(_raw(svc.port, "GET", "/v1/stats")[2])
            shards = body["shards"]
            assert len(shards) == 4
            total = sum(
                shard["counters"].get("db.commits", 0)
                for shard in shards.values()
            )
            assert total == body["counters"]["db.commits"] == 32
            # The exposition carries the same split, labelled.
            series = parse_prometheus(
                _raw(svc.port, "GET", "/metrics")[2].decode("utf-8")
            )
            labelled = [
                value for key, value in series.items()
                if key.startswith('spitz_shard_db_commits_total{shard="')
            ]
            assert len(labelled) == 4
            assert sum(labelled) == 32
        finally:
            svc.stop()


class TestTopCommand:
    def test_one_frame_from_a_live_server(self, rig, capsys):
        clock, cluster, server = rig
        plane = cluster.telemetry
        plane.tick()
        _drive(server.port, healthy=10)
        clock.advance(1.0)
        plane.tick()
        code = cli_main([
            "top", "--port", str(server.port), "--iterations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spitz top" in out
        assert "rps" in out
        assert "slo" in out
        assert "get-availability" in out

    def test_unreachable_server_is_an_error(self, capsys):
        code = cli_main([
            "top", "--port", "1", "--iterations", "1",
        ])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
