"""End-to-end integration: write → read → verify → tamper → detect."""

import dataclasses

import pytest

from repro.core.database import SpitzDatabase
from repro.core.proofs import LedgerProof
from repro.core.verifier import ClientVerifier
from repro.errors import TamperDetectedError
from repro.indexes.siri import SiriProof


class TestHonestLifecycle:
    def test_full_kv_lifecycle(self):
        db = SpitzDatabase()
        client = ClientVerifier()

        # 1. writes, with the client tracking digests
        for i in range(100):
            db.put(f"account:{i:03d}".encode(), f"balance={i}".encode())
        client.trust(db.digest())

        # 2. verified point reads
        for i in (0, 42, 99):
            value, proof = db.get_verified(f"account:{i:03d}".encode())
            assert value == f"balance={i}".encode()
            client.verify_or_raise(proof)

        # 3. verified range read
        entries, range_proof = db.scan_verified(
            b"account:010", b"account:019"
        )
        assert len(entries) == 10
        client.verify_or_raise(range_proof)

        # 4. update + delete, client follows the digest
        db.put(b"account:000", b"balance=1000")
        db.delete(b"account:001")
        client.observe(db.digest())
        value, proof = db.get_verified(b"account:000")
        assert value == b"balance=1000"
        client.verify_or_raise(proof)
        value, proof = db.get_verified(b"account:001")
        assert value is None
        client.verify_or_raise(proof)

        # 5. history still verifiable against its own block
        history = db.ledger.key_history(b"k\x00account:001")
        assert history[-1][1] is None

        # 6. full-chain audit
        assert db.verify_chain()

    def test_mixed_sql_and_kv_share_one_ledger(self):
        db = SpitzDatabase()
        db.put(b"raw-key", b"raw-value")
        db.sql("CREATE TABLE t (id INT, v STR, PRIMARY KEY (id))")
        db.sql("INSERT INTO t (id, v) VALUES (1, 'one')")
        client = ClientVerifier()
        client.trust(db.digest())
        value, proof = db.get_verified(b"raw-key")
        assert value == b"raw-value"
        client.verify_or_raise(proof)
        assert db.sql("SELECT v FROM t WHERE id = 1") == [{"v": "one"}]
        assert db.verify_chain()


class TestTamperDetection:
    def _client_and_proof(self, db):
        client = ClientVerifier()
        client.trust(db.digest())
        value, proof = db.get_verified(b"key0001")
        return client, value, proof

    def test_forged_value_detected(self, loaded_db):
        client, _value, proof = self._client_and_proof(loaded_db)
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        with pytest.raises(TamperDetectedError):
            client.verify_or_raise(forged)

    def test_forged_tree_root_detected(self, loaded_db):
        client, _value, proof = self._client_and_proof(loaded_db)
        other = SpitzDatabase()
        other.put(b"key0001", b"evil")
        other_value, other_proof = other.get_verified(b"key0001")
        # A proof from a parallel universe fails against our digest.
        with pytest.raises(TamperDetectedError):
            client.verify_or_raise(other_proof)

    def test_forged_block_header_detected(self, loaded_db):
        client, _value, proof = self._client_and_proof(loaded_db)
        forged_block = dataclasses.replace(
            proof.block, writes_digest=proof.block.statements_digest
        )
        forged = dataclasses.replace(proof, block=forged_block)
        with pytest.raises(TamperDetectedError):
            client.verify_or_raise(forged)

    def test_truncated_ledger_detected(self, loaded_db):
        client = ClientVerifier()
        old_digest = loaded_db.digest()
        loaded_db.put(b"newer", b"write")
        client.trust(loaded_db.digest())
        with pytest.raises(TamperDetectedError):
            client.observe(old_digest)  # server presents shorter history

    def test_storage_level_tamper_breaks_proof_generation(self):
        """An attacker rewriting chunk bytes in place cannot produce a
        valid proof: the node's address no longer matches its content."""
        db = SpitzDatabase()
        for i in range(50):
            db.put(f"k{i:02d}".encode(), b"honest")
        client = ClientVerifier()
        client.trust(db.digest())
        value, proof = db.get_verified(b"k25")
        # Tamper with one proof node's bytes the way a malicious
        # storage layer would.
        nodes = list(proof.siri.nodes)
        nodes[-1] = nodes[-1].replace(b"honest", b"evil!!")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil!!", nodes=tuple(nodes)
            ),
            block=proof.block,
        )
        assert not client.verify(forged)

    def test_range_result_manipulation_detected(self, loaded_db):
        client = ClientVerifier()
        client.trust(loaded_db.digest())
        entries, proof = loaded_db.scan_verified(b"key0010", b"key0019")
        # Drop a row from the claimed results.
        forged_range = dataclasses.replace(
            proof.range_proof, entries=proof.range_proof.entries[1:]
        )
        forged = dataclasses.replace(proof, range_proof=forged_range)
        assert not client.verify(forged)


class TestDeferredDetection:
    def test_deferred_batch_detects_eventually(self, loaded_db):
        client = ClientVerifier(deferred=True, batch_size=4)
        client.trust(loaded_db.digest())
        for i in range(3):
            _value, proof = loaded_db.get_verified(f"key{i:04d}".encode())
            client.verify(proof)
        _value, proof = loaded_db.get_verified(b"key0004")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        # The 4th submission fills the batch and triggers the flush.
        with pytest.raises(TamperDetectedError):
            client.verify(forged)
