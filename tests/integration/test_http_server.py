"""Integration tests for the HTTP service plane (``repro.serve``).

Everything here runs a real listening socket (ephemeral port) with the
real middleware stack, wire codec and cluster behind it.  The suite
pins the service-plane contract end to end:

- reads/writes/verified reads round-trip the wire and **verify
  client-side** against the served digest;
- edge rejections map to the right statuses (401 auth, 429 rate
  limit / overload, 503 shed / stopped, 504 timeout) with
  ``Retry-After`` carried both as the integer header and the precise
  float body field;
- ``ClusterOverloadedError.retry_after`` survives the wire and is
  honored by the standard :class:`ClusterClient` retry loop through
  an injected sleep (the satellite regression);
- the exactly-once accounting invariant holds under genuine
  multi-threaded overload through the socket;
- every HTTP request yields one complete parented trace in the
  flight recorder.
"""

import http.client
import json
import threading

import pytest

from repro.core.client import _SlowHandler
from repro.core.ledger import LedgerDigest
from repro.core.proofs import LedgerProof
from repro.core.request_handler import Request, RequestKind, Response
from repro.core.verifier import ClientVerifier
from repro.errors import (
    ClusterOverloadedError,
    ClusterStoppedError,
    RateLimitedError,
)
from repro.serve.client import HttpClusterClient
from repro.serve.codec import decode_value
from repro.serve.middleware import REQUEST_ID_HEADER
from repro.serve.server import serve_cluster


@pytest.fixture()
def service():
    svc = serve_cluster(nodes=2, queue_capacity=64)
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    with HttpClusterClient("127.0.0.1", service.port, attempts=1) as c:
        yield c


def _raw(service, method, path, body=None, headers=None):
    """One raw HTTP exchange, for asserting statuses and headers."""
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.headers, response.read()
    finally:
        conn.close()


class TestHealthAndOps:
    def test_healthz_and_readyz(self, service, client):
        assert client.transport.healthz()
        ready, detail = client.transport.readyz()
        assert ready
        assert detail["status"] == "ready"
        assert detail["queue_capacity"] == 64

    def test_readyz_reports_stopping_cluster(self, service, client):
        service.cluster.queue.close()
        ready, detail = client.transport.readyz()
        assert not ready
        assert detail["status"] == "stopping"

    def test_unknown_route_is_404(self, service):
        status, _headers, _body = _raw(service, "GET", "/nope")
        assert status == 404

    def test_missing_content_length_is_411(self, service):
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=10
        )
        try:
            conn.putrequest("POST", "/v1/request", skip_accept_encoding=True)
            conn.endheaders()
            assert conn.getresponse().status == 411
        finally:
            conn.close()

    def test_digest_endpoint_decodes_to_live_digest(self, service, client):
        body = client.transport.digest()
        digest = decode_value(body["digest"])
        assert isinstance(digest, LedgerDigest)
        assert digest == service.cluster.db.digest()

    def test_stats_endpoint_serves_the_cli_frame(self, service, client):
        client.put(b"stat-key", b"v")
        body = client.transport.stats()
        # The same top-level frame `spitz stats --json` prints —
        # both run the snapshot through codec.to_jsonable.
        assert set(body) >= {"counters", "gauges", "histograms"}
        assert body["counters"]["serve.http.requests"] >= 1
        assert "traces" not in body
        with_traces = client.transport.stats(traces=True)
        assert set(with_traces["traces"]) == {
            "attribution", "slowest", "failures",
        }
        json.dumps(with_traces)  # wire frame stays JSON-pure


class TestRequestRoundTrips:
    def test_put_then_get(self, service, client):
        assert client.put(b"alice", b"100").ok
        response = client.get(b"alice")
        assert response.ok
        assert response.result == b"100"

    def test_verified_get_verifies_client_side(self, service, client):
        assert client.put(b"bob", b"42").ok
        response = client.call(
            Request(RequestKind.GET, {"key": b"bob"}, verify=True)
        )
        assert response.ok and response.result == b"42"
        assert isinstance(response.proof, LedgerProof)
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        verifier.verify_or_raise(response.proof)

    def test_verified_multi_get_verifies_client_side(self, service, client):
        from repro.core.proofs import LedgerMultiProof

        for i in range(8):
            assert client.put(b"mget:%d" % i, b"v%d" % i).ok
        keys = [b"mget:1", b"mget:5", b"mget:7", b"mget:nope"]
        response = client.get_many(keys, verify=True)
        assert response.ok
        assert response.result == [b"v1", b"v5", b"v7", None]
        assert isinstance(response.proof, LedgerMultiProof)
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        verifier.verify_or_raise(response.proof)
        # Unverified batch read carries no proof.
        plain = client.get_many(keys)
        assert plain.ok and plain.proof is None
        assert plain.result == [b"v1", b"v5", b"v7", None]

    def test_verified_scan_verifies_client_side(self, service, client):
        for i in range(6):
            assert client.put(b"scan:%d" % i, b"v%d" % i).ok
        response = client.call(
            Request(
                RequestKind.SCAN,
                {"low": b"scan:1", "high": b"scan:4"},
                verify=True,
            )
        )
        assert response.ok
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        verifier.verify_or_raise(response.proof)

    def test_malformed_body_is_400(self, service):
        status, _headers, body = _raw(
            service, "POST", "/v1/request", body=b"{not json",
        )
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_unknown_kind_is_400(self, service):
        status, _headers, body = _raw(
            service, "POST", "/v1/request",
            body=json.dumps({"kind": "bogus", "payload": {}}).encode(),
        )
        assert status == 400
        assert "bogus" in json.loads(body)["error"]

    def test_request_id_is_echoed(self, service):
        status, headers, body = _raw(
            service, "POST", "/v1/request",
            body=json.dumps(
                {"kind": "digest", "payload": {}}
            ).encode(),
            headers={REQUEST_ID_HEADER: "my-id-1"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "my-id-1"
        assert json.loads(body)["request_id"] == "my-id-1"


class TestAuth:
    @pytest.fixture()
    def locked(self):
        svc = serve_cluster(nodes=1, auth_tokens=["sesame"])
        yield svc
        svc.stop()

    def test_wrong_token_is_401_not_retryable(self, locked):
        with HttpClusterClient(
            "127.0.0.1", locked.port, token="wrong", attempts=1
        ) as client:
            response = client.put(b"k", b"v")
        assert not response.ok
        assert not response.retryable
        assert "token" in response.error

    def test_missing_token_is_401_on_stats_too(self, locked):
        status, _headers, _body = _raw(locked, "GET", "/v1/stats")
        assert status == 401
        # ...but liveness stays open: probes never need credentials.
        assert _raw(locked, "GET", "/healthz")[0] == 200

    def test_right_token_admits(self, locked):
        with HttpClusterClient(
            "127.0.0.1", locked.port, token="sesame", attempts=1
        ) as client:
            assert client.put(b"k", b"v").ok
            assert client.get(b"k").result == b"v"


class TestRateLimit:
    def test_burst_exhaustion_is_429_with_retry_after(self):
        svc = serve_cluster(nodes=1, rate=0.5, burst=2)
        try:
            with HttpClusterClient(
                "127.0.0.1", svc.port, attempts=1
            ) as client:
                assert client.put(b"a", b"1").ok
                assert client.put(b"b", b"2").ok
                with pytest.raises(RateLimitedError) as info:
                    client.put(b"c", b"3")
            assert info.value.retry_after > 0
            # The subclassing contract: a retry loop written for
            # overload errors handles rate limiting unchanged.
            assert isinstance(info.value, ClusterOverloadedError)
            counters = svc.cluster.stats()["counters"]
            assert counters["serve.ratelimit.limited"] >= 1
        finally:
            svc.stop()

    def test_429_carries_integer_retry_after_header(self):
        svc = serve_cluster(nodes=1, rate=0.1, burst=1)
        try:
            body = json.dumps({"kind": "digest", "payload": {}}).encode()
            assert _raw(svc, "POST", "/v1/request", body=body)[0] == 200
            status, headers, raw = _raw(svc, "POST", "/v1/request", body=body)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            reply = json.loads(raw)
            assert reply["retryable"] is True
            assert reply["retry_after"] > 0
            assert "overloaded" not in reply
        finally:
            svc.stop()


class TestOverloadOnTheWire:
    def test_retry_after_survives_wire_and_drives_client_backoff(
        self, service
    ):
        # The satellite regression: the queue's suggested backoff must
        # reach the remote retry loop bit-exact.  Overload is injected
        # deterministically at the submit seam; the client's sleep is
        # a recorder.
        marker = ClusterOverloadedError(
            depth=7, capacity=4, retry_after=0.1234
        )

        def rejecting_submit(request, timeout=10.0):
            raise marker

        service.cluster.submit = rejecting_submit
        sleeps = []
        client = HttpClusterClient(
            "127.0.0.1", service.port,
            attempts=3, backoff=1e-9, sleep=sleeps.append,
        )
        with client:
            with pytest.raises(ClusterOverloadedError) as info:
                client.put(b"k", b"v")
        # The wire round-trip preserved the server's numbers...
        assert info.value.retry_after == pytest.approx(0.1234)
        assert info.value.depth == 7
        assert info.value.capacity == 4
        # ...and the injected sleep proves the retry loop honored the
        # suggested value over its own (tiny) exponential schedule.
        assert len(sleeps) == 2
        for slept in sleeps:
            assert slept == pytest.approx(0.1234)
        assert client.stats.rejected_overload == 3

    def test_overload_maps_to_429_with_headers(self, service):
        def rejecting_submit(request, timeout=10.0):
            raise ClusterOverloadedError(
                depth=9, capacity=4, retry_after=0.5
            )

        service.cluster.submit = rejecting_submit
        status, headers, raw = _raw(
            service, "POST", "/v1/request",
            body=json.dumps({"kind": "digest", "payload": {}}).encode(),
        )
        assert status == 429
        assert int(headers["Retry-After"]) == 1
        reply = json.loads(raw)
        assert reply["overloaded"] is True
        assert reply["depth"] == 9
        assert reply["retry_after"] == pytest.approx(0.5)

    def test_shed_response_maps_to_503_with_backoff(self, service):
        def shedding_submit(request, timeout=10.0):
            return Response(
                ok=False, error="shed after deadline", retryable=True
            )

        service.cluster.submit = shedding_submit
        status, headers, raw = _raw(
            service, "POST", "/v1/request",
            body=json.dumps({"kind": "get", "payload": {}}).encode(),
        )
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        reply = json.loads(raw)
        assert reply["retryable"] is True
        # The queue's live suggestion was stamped onto the shed frame.
        assert reply["retry_after"] > 0

    def test_stopped_cluster_maps_to_503_stopped(self, service):
        def stopped_submit(request, timeout=10.0):
            raise ClusterStoppedError("stopping")

        service.cluster.submit = stopped_submit
        with HttpClusterClient(
            "127.0.0.1", service.port, attempts=1
        ) as client:
            with pytest.raises(ClusterStoppedError):
                client.put(b"k", b"v")

    def test_timeout_maps_to_504(self, service):
        def slow_submit(request, timeout=10.0):
            raise TimeoutError("no processor node answered in time")

        service.cluster.submit = slow_submit
        with HttpClusterClient(
            "127.0.0.1", service.port, attempts=1
        ) as client:
            with pytest.raises(TimeoutError):
                client.put(b"k", b"v")


class TestOverloadForReal:
    def test_exactly_once_accounting_through_the_socket(self):
        # Genuine saturation: tiny queue, slowed handlers, concurrent
        # client threads over real connections.  Whatever mix of 200 /
        # 429 / 503 comes back, every accepted envelope is accounted
        # for exactly once.
        svc = serve_cluster(
            nodes=2, queue_capacity=2, overload_window=0.0,
        )
        for node in svc.cluster.nodes:
            node.handler = _SlowHandler(node.handler, 0.005)
        outcomes = {"ok": 0, "overload": 0, "shed": 0, "timeout": 0}
        lock = threading.Lock()

        def worker(worker_id):
            with HttpClusterClient(
                "127.0.0.1", svc.port, attempts=1, timeout=0.05
            ) as client:
                for i in range(6):
                    try:
                        response = client.put(
                            b"ld:%d:%d" % (worker_id, i), b"v"
                        )
                    except ClusterOverloadedError:
                        key = "overload"
                    except TimeoutError:
                        key = "timeout"
                    else:
                        key = (
                            "ok" if response.ok
                            else "shed" if response.retryable
                            else "timeout"
                        )
                    with lock:
                        outcomes[key] += 1

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        svc.stop()
        counters = svc.cluster.stats()["counters"]
        submitted = counters.get("queue.submitted", 0)
        processed = counters.get("node.processed", 0)
        shed = counters.get("queue.shed", 0)
        failed = counters.get("cluster.failed_on_stop", 0)
        assert submitted == processed + shed + failed
        assert sum(outcomes.values()) == 36
        assert outcomes["ok"] > 0
        # The point of the run: the edge actually pushed back.
        assert outcomes["overload"] + outcomes["shed"] > 0


class TestTracing:
    def test_each_http_request_yields_one_parented_trace(
        self, service, client
    ):
        assert client.put(b"traced", b"v").ok
        traces = [
            trace for trace in service.cluster.metrics.flight.recent()
            if trace.root.name == "http.request"
        ]
        assert len(traces) == 1
        trace = traces[0]
        assert trace.root.attributes["kind"] == "put"
        assert trace.root.attributes["http_status"] == 200
        assert trace.root.attributes["request_id"]
        children = [
            span.name for span in trace.children_of(trace.root)
        ]
        # The cluster's own client.submit span parented under the HTTP
        # span via the handler thread's active-span stack: one
        # complete socket-to-storage tree per request.
        assert "client.submit" in children

    def test_stats_route_is_traced_too(self, service, client):
        client.transport.stats()
        kinds = [
            trace.root.attributes.get("kind")
            for trace in service.cluster.metrics.flight.recent()
            if trace.root.name == "http.request"
        ]
        assert "stats" in kinds
