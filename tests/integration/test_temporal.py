"""Temporal/provenance integration: history, snapshots, and storage.

The healthcare motivation of Section 1: records are never deleted,
coding standards change over time, and every historical state stays
queryable and verifiable.
"""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.forkbase.store import ForkBase
from repro.workloads.wiki import WikiWorkload, naive_storage_bytes


class TestTemporalQueries:
    def test_every_block_is_a_queryable_snapshot(self):
        db = SpitzDatabase()
        heights = {}
        for round_number in range(5):
            db.put(b"patient:1", f"state-{round_number}".encode())
            heights[round_number] = db.ledger.height - 1
        for round_number, height in heights.items():
            assert db.get_at_block(b"patient:1", height) == (
                f"state-{round_number}".encode()
            )

    def test_snapshots_survive_deletion(self):
        db = SpitzDatabase()
        db.put(b"k", b"precious")
        height = db.ledger.height - 1
        db.delete(b"k")
        assert db.get(b"k") is None
        assert db.get_at_block(b"k", height) == b"precious"

    def test_historical_proofs_bind_to_their_block(self):
        db = SpitzDatabase()
        db.put(b"k", b"v1")
        height = db.ledger.height - 1
        for i in range(20):
            db.put(f"noise{i}".encode(), b"x")
        value, proof = db.get_at_block_verified(b"k", height)
        assert value == b"v1"
        assert proof.verify(db.ledger.block(height).chain_digest)
        assert not proof.verify(db.digest().chain_digest)

    def test_sql_as_of_journeys(self):
        db = SpitzDatabase()
        db.sql(
            "CREATE TABLE meds (id INT, code STR, dose FLOAT, "
            "PRIMARY KEY (id))"
        )
        db.sql("INSERT INTO meds (id, code, dose) VALUES (1, 'ICD9-250', 5.0)")
        icd9_height = db.ledger.height - 1
        # Coding standard migration: ICD-9 -> ICD-10 (Section 1).
        db.sql("UPDATE meds SET code = 'ICD10-E11' WHERE id = 1")
        now = db.sql("SELECT code FROM meds WHERE id = 1")
        then = db.sql(
            f"SELECT code FROM meds WHERE id = 1 AS OF BLOCK {icd9_height}"
        )
        assert now == [{"code": "ICD10-E11"}]
        assert then == [{"code": "ICD9-250"}]

    def test_row_history_tracks_all_transitions(self):
        db = SpitzDatabase()
        db.sql("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        db.sql("INSERT INTO t (id, v) VALUES (1, 10)")
        db.sql("UPDATE t SET v = 20 WHERE id = 1")
        db.sql("DELETE FROM t WHERE id = 1")
        db.sql("INSERT INTO t (id, v) VALUES (1, 30)")
        states = [row for _, row in db.row_history("t", 1)]
        values = [row["v"] if row else None for row in states]
        assert values == [None, 10, 20, None, 30]


class TestVersionedStorageEfficiency:
    def test_wiki_versions_dedup_beats_naive(self):
        """The Figure 1 claim at test scale: ForkBase's physical bytes
        grow much slower than snapshot-per-version storage."""
        wiki = WikiWorkload(seed=2)
        initial = wiki.initial_pages()
        edits = wiki.edits(versions=25)
        naive = naive_storage_bytes(initial, edits)

        fork = ForkBase()
        for page, content in initial:
            fork.put(page, content)
        fork.commit("v1")
        for edit in edits:
            fork.put(edit.page, edit.content)
            fork.commit(f"v{edit.version}")
        physical = fork.stats.physical_bytes
        assert physical < naive * 0.6
        # And every version stays readable.
        commits = list(fork.versions.log())
        assert len(commits) == 25

    def test_spitz_versions_share_ledger_nodes(self):
        db = SpitzDatabase()
        for i in range(200):
            db.put(f"k{i:03d}".encode(), b"value")
        chunks_after_load = db.chunks.stats.unique_chunks
        for _ in range(20):
            db.put(b"k000", b"rewrite")
        added = db.chunks.stats.unique_chunks - chunks_after_load
        # 20 rewrites touch one path each, not 20 whole trees.
        per_write = added / 20
        assert per_write < 12
