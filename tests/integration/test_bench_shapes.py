"""Small-scale shape assertions for the paper's figures.

These run the actual figure harness at tiny sizes and assert the
*relative* claims the paper makes — who wins, in which direction
verification hurts — without pinning absolute numbers.
"""

import pytest

from repro.bench.harness import (
    _load_spitz,
    _settle_gc,
    _throughput_over,
    fig1_storage,
    fig6_read,
    fig6_write,
    fig7_range,
    fig8_nonintrusive,
    fig_obs,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.workloads.generator import WorkloadGenerator

SIZES = [200, 800]


@pytest.fixture(scope="module")
def figures():
    read = fig6_read(SIZES)
    write = fig6_write(SIZES)
    ranged = fig7_range(SIZES, selectivity=0.01)
    fig8_read, fig8_write = fig8_nonintrusive([400])
    return read, write, ranged, fig8_read, fig8_write


class TestFigure1Shape:
    def test_dedup_reduces_storage_growth(self):
        result = fig1_storage(versions_list=(10, 30))
        naive = result.series_named("Storage").points
        fork = result.series_named("Storage-ForkBase").points
        # ForkBase stores less at every point...
        assert fork[10] < naive[10]
        assert fork[30] < naive[30]
        # ...and grows slower.
        assert (fork[30] - fork[10]) < (naive[30] - naive[10]) * 0.8


class TestFigure6Shapes:
    def test_verification_costs_throughput_on_reads(self, figures):
        read, _w, _r, _f8r, _f8w = figures
        for n in SIZES:
            assert read.ratio("Spitz", "Spitz-verify", n) > 1.5
            assert read.ratio("Baseline", "Baseline-verify", n) > 2.0

    def test_spitz_verify_beats_baseline_verify(self, figures):
        read, _w, _r, _f8r, _f8w = figures
        # The paper's headline: the unified index wins, and the gap
        # widens with the record count.
        small, large = SIZES
        ratio = read.ratio("Spitz-verify", "Baseline-verify", large)
        # The Baseline-verify measurement window is ~30 ops, so even
        # best-of-N timing leaves this ratio noisy on a loaded
        # machine; a dip below the bound is re-measured from scratch
        # before being declared a regression.
        for _ in range(3):
            if ratio > 1.2:
                break
            ratio = fig6_read(SIZES).ratio(
                "Spitz-verify", "Baseline-verify", large
            )
        assert ratio > 1.2

    def test_baseline_verify_degrades_with_size(self, figures):
        read, _w, _r, _f8r, _f8w = figures
        small, large = SIZES
        points = read.series_named("Baseline-verify").points
        assert points[large] < points[small]

    def test_kvs_writes_fastest(self, figures):
        _r, write, _rng, _f8r, _f8w = figures
        for n in SIZES:
            assert write.ratio("Immutable KVS", "Spitz", n) > 1.0
            assert write.ratio("Immutable KVS", "Baseline", n) > 1.0


class TestFigure7Shapes:
    def test_range_queries_slower_than_point(self, figures):
        read, _w, ranged, _f8r, _f8w = figures
        for system in ("Spitz", "Immutable KVS"):
            for n in SIZES:
                point = read.series_named(system).points[n]
                scan = ranged.series_named(system).points[n]
                assert scan < point

    def test_spitz_verified_ranges_beat_baseline(self, figures):
        _r, _w, ranged, _f8r, _f8w = figures
        large = SIZES[-1]
        assert ranged.ratio("Spitz-verify", "Baseline-verify", large) > 2.0


class TestInstrumentationOverhead:
    def test_read_path_overhead_under_five_percent(self):
        """The acceptance budget: instrumenting the registry must not
        cost the ``bench_fig6_read`` measured path more than 5%.

        The raw point read deliberately has no per-operation
        instrumentation (commits and snapshots do), so the comparison
        is between a live registry and the shared NULL registry on an
        identical code path.  Best-of-N interleaved trials keep
        scheduler noise out of the ratio.
        """
        gen = WorkloadGenerator(500, seed=3)
        instrumented = _load_spitz(gen, MetricsRegistry())
        plain = _load_spitz(gen, NULL_REGISTRY)
        _settle_gc()
        ops = list(gen.reads(2000))

        def throughput(db):
            return _throughput_over(ops, lambda op: db.get(op.key))

        throughput(plain), throughput(instrumented)  # warm caches
        best_plain = best_instrumented = 0.0
        # Interleaved with alternating order: measuring the same side
        # first every round would let monotonic drift (turbo decay
        # after the load phase) bias whichever side runs later.
        for i in range(9):
            first, second = (
                (plain, instrumented) if i % 2 == 0
                else (instrumented, plain)
            )
            for db in (first, second):
                value = throughput(db)
                if db is plain:
                    best_plain = max(best_plain, value)
                else:
                    best_instrumented = max(best_instrumented, value)
        assert best_instrumented >= best_plain * 0.95

    def test_instrumented_bench_db_still_counts(self):
        registry = MetricsRegistry()
        _load_spitz(WorkloadGenerator(100, seed=3), registry)
        snap = registry.snapshot()
        assert snap["counters"]["db.writes_folded"] == 100


class TestFigure8Shapes:
    def test_nonintrusive_pays_for_separation(self, figures):
        _r, _w, _rng, fig8_read, fig8_write = figures
        n = 400
        assert fig8_read.ratio("Spitz", "Non-intrusive", n) > 1.2
        assert fig8_read.ratio(
            "Spitz-verify", "Non-intrusive-verify", n
        ) > 1.5
        assert fig8_write.ratio("Spitz", "Non-intrusive", n) > 1.5


class TestFigureObsShapes:
    def test_telemetry_on_within_budget_of_off(self):
        """The tentpole acceptance bar: a live telemetry plane ticking
        aggressively (50ms slots) must keep the read path within 5% of
        a disabled registry.

        ``fig_obs`` already takes best-of-N interleaved trials, but a
        noisy box can still lose a run to scheduler jitter — re-measure
        up to three times before calling it a regression, the same
        policy as the budget guard above.
        """
        for attempt in range(3):
            figure = fig_obs([300])
            ratio = figure.ratio("Telemetry on", "Telemetry off", 300)
            if ratio >= 0.95:
                break
        assert ratio >= 0.95

    def test_series_and_overhead_shape(self):
        figure = fig_obs([250])
        names = {series.name for series in figure.series}
        assert names == {
            "Telemetry off",
            "Telemetry on",
            "Telemetry on + profiler",
            "Overhead on vs off (%)",
            "Overhead on+profiler vs off (%)",
        }
        assert figure.xs() == [250]
        for name in ("Telemetry off", "Telemetry on"):
            assert figure.series_named(name).points[250] > 0
        # Overhead series are consistent with the throughput series.
        on = figure.series_named("Telemetry on").points[250]
        off = figure.series_named("Telemetry off").points[250]
        overhead = figure.series_named("Overhead on vs off (%)").points[250]
        assert overhead == pytest.approx(100.0 * (1.0 - on / off))
