"""Acceptance: saturate a bounded cluster and audit the accounting.

The scenario from the issue: queue capacity B, offered load well past
what the nodes can process.  Under that pressure the cluster must

- reject excess submits *fast* with ``ClusterOverloadedError``
  (no blocking on a full queue, no waiting out the client timeout),
- shed envelopes whose deadline expired before a node reached them,
  counting them in ``queue.shed``, and
- never lose an accepted envelope: every one is completed exactly once
  — processed, shed, or failed on stop — so the counters balance.
"""

import time

import pytest

from repro.core.client import run_saturation
from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.errors import ClusterOverloadedError


def _put(i: int) -> Request:
    return Request(RequestKind.PUT, {"key": f"sat{i}".encode(), "value": b"v"})


@pytest.mark.stress
class TestSaturation:
    # Service is deliberately slower than the offered load: 2 nodes at
    # 10ms/request drain 200 req/s, while 12 clients that wait at most
    # 25ms per op can offer ~480 req/s.  Capacity (8) sits below the
    # client count, so the opening burst alone pins the queue over
    # capacity for longer than the grace window and submits reject;
    # queued envelopes outlive the 25ms deadline and are shed.
    DEADLINE = 0.025

    @pytest.fixture(scope="class")
    def report(self):
        return run_saturation(
            clients=12,
            ops_per_client=25,
            nodes=2,
            capacity=8,
            overload_window=0.005,
            deadline=self.DEADLINE,
            attempts=1,
            service_delay=0.01,
        )

    def test_overload_is_rejected(self, report):
        assert report.counters["queue.rejected_overload"] > 0

    def test_expired_envelopes_are_shed_and_counted(self, report):
        assert report.counters["queue.shed"] > 0
        assert report.shed == report.counters["queue.shed"]

    def test_some_work_still_completes(self, report):
        assert report.completed > 0
        assert report.counters["node.processed"] >= report.completed

    def test_accepted_envelope_accounting_balances(self, report):
        counters = report.counters
        assert counters["queue.submitted"] > 0
        assert (
            counters["node.processed"]
            + counters["queue.shed"]
            + counters["cluster.failed_on_stop"]
            == counters["queue.submitted"]
        ), f"request-loss invariant violated: {counters}"

    def test_queue_wait_p99_bounded_by_deadline(self, report):
        # Processed envelopes waited at most their deadline (expired
        # ones are shed without touching the histogram); the histogram
        # reports the max observed value for the tail bucket, so no
        # bucket-resolution slack is needed.
        assert report.wait_p99 is not None
        assert report.wait_p99 <= self.DEADLINE + 1e-6

    def test_offered_load_fully_accounted_client_side(self, report):
        # Every client op ended somewhere: completed, rejected at
        # admission, errored, or abandoned (timed out waiting — those
        # envelopes show up as shed/failed-on-stop server-side).
        assert report.offered == 12 * 25
        accounted = (
            report.completed + report.rejected_overload + report.errors
        )
        assert accounted <= report.offered


@pytest.mark.stress
def test_full_queue_rejects_within_milliseconds():
    """The 'fast' in fail-fast: with the queue pinned at capacity and
    the grace window elapsed, a submit must reject immediately rather
    than wait out the client timeout (the pre-fix behaviour)."""
    cluster = SpitzCluster(nodes=1, queue_capacity=8, overload_window=0.0)
    # No nodes started: the queue cannot drain.
    for i in range(8):
        cluster.queue.submit(_put(i))
    began = time.perf_counter()
    for i in range(20):
        with pytest.raises(ClusterOverloadedError):
            cluster.submit(_put(100 + i), timeout=5.0)
    elapsed = time.perf_counter() - began
    assert elapsed < 0.5, (
        f"20 rejections took {elapsed:.3f}s; admission is blocking"
    )
    cluster.stop()
    counters = cluster.stats()["counters"]
    assert counters["queue.rejected_overload"] == 20
    assert counters["cluster.failed_on_stop"] == 8


@pytest.mark.stress
def test_retry_pressure_preserves_the_invariant():
    """attempts>1 multiplies admission attempts (every rejection is
    retried on a backoff schedule); the accounting must stay exact and
    the extra attempts must all be visible in the counters."""
    report = run_saturation(
        clients=6, ops_per_client=10, nodes=1, capacity=4,
        overload_window=0.0, deadline=0.05, attempts=4,
        service_delay=0.005,
    )
    counters = report.counters
    assert (
        counters["node.processed"]
        + counters["queue.shed"]
        + counters["cluster.failed_on_stop"]
        == counters["queue.submitted"]
    ), f"request-loss invariant violated under retries: {counters}"
    # Every op made at least one admission attempt, each of which was
    # either accepted or rejected; retried rejections add more.
    attempts = counters["queue.submitted"] + counters["queue.rejected_overload"]
    assert attempts >= report.offered
    # 6 concurrent clients against capacity 4 with a zero grace window
    # cannot avoid rejections, so retries must have fired.
    assert counters["queue.rejected_overload"] > 0
    # A rejection that exhausted all 4 attempts burned 4 admission
    # tries; client-side surviving rejections reconcile with that.
    assert report.completed + report.rejected_overload + report.errors <= report.offered
