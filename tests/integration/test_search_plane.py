"""Integration tests for the verifiable search plane, end to end.

Covers the full thread the ISSUE specifies: index maintenance on the
normal write path, SEARCH requests through the cluster, the
``$search_proof`` wire framing, client-side verification over HTTP,
durable reopen, shard refusal, and the ``search.*`` telemetry series
under the strict Prometheus parser.
"""

import tempfile

import pytest

from repro.core.client import ClusterClient
from repro.core.database import SpitzDatabase
from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.core.verifier import ClientVerifier
from repro.errors import QueryError, TamperDetectedError
from repro.obs.exposition import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.search.proofs import SearchPredicate, SearchProof
from repro.serve.client import HttpClusterClient
from repro.serve.codec import (
    WireCodecError,
    decode_response,
    encode_response,
)
from repro.serve.server import serve_cluster
from repro.shard.database import ShardedDatabase


def _seeded_db(metrics=None):
    db = SpitzDatabase(
        metrics=metrics,
        indexed_columns=["items.name", "items.price"],
    )
    db.sql(
        "CREATE TABLE items (id INT, name STR, price INT, "
        "PRIMARY KEY (id))"
    )
    rows = [
        (1, "apple", 10),
        (2, "banana", 20),
        (3, "cherry", 20),
        (4, "date", 30),
        (5, "apple", 40),
    ]
    for pk, name, price in rows:
        db.sql(
            f"INSERT INTO items (id, name, price) "
            f"VALUES ({pk}, '{name}', {price})"
        )
    return db


class TestDatabaseSearch:
    def test_unverified_and_verified_agree(self):
        db = _seeded_db()
        predicate = SearchPredicate.between(15, 35)
        plain = db.search("items.price", predicate)
        ukeys, proof = db.search_verified("items.price", predicate)
        assert set(plain) == set(ukeys)
        assert len(ukeys) == 3
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert verifier.verify(proof)

    def test_keyword_search_verifies(self):
        db = _seeded_db()
        ukeys, proof = db.search_verified(
            "items.name", SearchPredicate.eq("apple")
        )
        assert len(ukeys) == 2
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifier.verify_or_raise(proof)

    def test_write_path_maintains_postings(self):
        db = _seeded_db()
        db.sql("INSERT INTO items (id, name, price) VALUES (6, 'elder', 25)")
        ukeys, proof = db.search_verified(
            "items.price", SearchPredicate.between(15, 35)
        )
        assert len(ukeys) == 4
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert verifier.verify(proof)

    def test_delete_removes_postings(self):
        db = _seeded_db()
        db.sql("DELETE FROM items WHERE id = 2")
        ukeys, proof = db.search_verified(
            "items.price", SearchPredicate.eq(20)
        )
        assert len(ukeys) == 1
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert verifier.verify(proof)

    def test_update_moves_postings(self):
        db = _seeded_db()
        db.sql("UPDATE items SET price = 99 WHERE id = 1")
        before, _ = db.search_verified(
            "items.price", SearchPredicate.eq(10)
        )
        after, proof = db.search_verified(
            "items.price", SearchPredicate.eq(99)
        )
        assert before == []
        assert len(after) == 1
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert verifier.verify(proof)

    def test_search_without_index_raises(self):
        db = SpitzDatabase()
        with pytest.raises(QueryError):
            db.search_verified("items.price", SearchPredicate.eq(1))

    def test_enable_search_backfills(self):
        db = SpitzDatabase()
        db.sql("CREATE TABLE t (a INT, b STR, PRIMARY KEY (a))")
        db.sql("INSERT INTO t (a, b) VALUES (1, 'x')")
        db.enable_search(["t.b"])
        ukeys, proof = db.search_verified("t.b", SearchPredicate.eq("x"))
        assert len(ukeys) == 1
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert verifier.verify(proof)
        with pytest.raises(QueryError):
            db.enable_search(["t.other"])  # different set refused

    def test_stale_proof_detected_after_writes(self):
        db = _seeded_db()
        _, proof = db.search_verified(
            "items.name", SearchPredicate.eq("apple")
        )
        db.sql("INSERT INTO items (id, name, price) VALUES (7, 'apple', 1)")
        db.flush_ledger()
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        with pytest.raises(TamperDetectedError):
            verifier.verify_or_raise(proof)

    def test_search_counters_populate(self):
        metrics = MetricsRegistry()
        db = _seeded_db(metrics=metrics)
        db.search("items.price", SearchPredicate.ge(0))
        db.search_verified("items.price", SearchPredicate.ge(0))
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["search.queries"] == 2
        assert snapshot["search.matches"] > 0
        assert snapshot["search.proof_bytes"] > 0
        assert snapshot["search.maintained_postings"] > 0


class TestClusterSearch:
    def test_search_request_kind_round_trips_the_codec(self):
        cluster = SpitzCluster(
            nodes=2, indexed_columns=["items.name", "items.price"]
        )
        cluster.start()
        try:
            client = ClusterClient(cluster)
            cluster.submit(Request(RequestKind.SQL, {
                "text": (
                    "CREATE TABLE items (id INT, name STR, price INT, "
                    "PRIMARY KEY (id))"
                )
            }))
            for pk, name, price in [(1, "ant", 5), (2, "bee", 15)]:
                cluster.submit(Request(RequestKind.SQL, {
                    "text": (
                        f"INSERT INTO items (id, name, price) "
                        f"VALUES ({pk}, '{name}', {price})"
                    )
                }))
            response = client.search(
                "items.price", ">= 10", verify=True
            )
            assert response.ok
            assert isinstance(response.proof, SearchProof)
            assert len(response.result) == 1
            # Round-trip the full response through the wire codec.
            frame = encode_response(response)
            decoded = decode_response(frame)
            assert isinstance(decoded.proof, SearchProof)
            verifier = ClientVerifier()
            verifier.trust(decoded.digest)
            assert verifier.verify(decoded.proof)
            assert decoded.proof.ukeys == response.proof.ukeys
        finally:
            cluster.stop()

    def test_tampered_proof_over_the_wire_fails_verification(self):
        cluster = SpitzCluster(nodes=1, indexed_columns=["t.v"])
        cluster.start()
        try:
            client = ClusterClient(cluster)
            cluster.submit(Request(RequestKind.SQL, {
                "text": "CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))"
            }))
            cluster.submit(Request(RequestKind.SQL, {
                "text": "INSERT INTO t (a, v) VALUES (1, 7)"
            }))
            response = client.search("t.v", "== 7", verify=True)
            frame = encode_response(response)
            # Drop the claimed match but keep everything else intact.
            frame["proof"]["$search_proof"]["matches"] = []
            decoded = decode_response(frame)
            verifier = ClientVerifier()
            verifier.trust(decoded.digest)
            assert not verifier.verify(decoded.proof)
        finally:
            cluster.stop()

    def test_malformed_proof_frame_is_a_codec_error(self):
        cluster = SpitzCluster(nodes=1, indexed_columns=["t.v"])
        cluster.start()
        try:
            client = ClusterClient(cluster)
            cluster.submit(Request(RequestKind.SQL, {
                "text": "CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))"
            }))
            cluster.submit(Request(RequestKind.SQL, {
                "text": "INSERT INTO t (a, v) VALUES (1, 7)"
            }))
            response = client.search("t.v", "== 7", verify=True)
            frame = encode_response(response)
            del frame["proof"]["$search_proof"]["anchor"]
            with pytest.raises(WireCodecError):
                decode_response(frame)
        finally:
            cluster.stop()

    def test_durable_cluster_rebuilds_search_on_reopen(self):
        with tempfile.TemporaryDirectory() as root:
            cluster = SpitzCluster(
                nodes=1, durable_root=root, indexed_columns=["t.v"]
            )
            cluster.start()
            try:
                cluster.submit(Request(RequestKind.SQL, {
                    "text": (
                        "CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))"
                    )
                }))
                cluster.submit(Request(RequestKind.SQL, {
                    "text": "INSERT INTO t (a, v) VALUES (1, 42)"
                }))
            finally:
                cluster.stop()
            reopened = SpitzCluster(
                nodes=1, durable_root=root, indexed_columns=["t.v"]
            )
            reopened.start()
            try:
                client = ClusterClient(reopened)
                response = client.search("t.v", "== 42", verify=True)
                assert response.ok
                verifier = ClientVerifier()
                verifier.trust(response.digest)
                assert verifier.verify(response.proof)
                assert len(response.result) == 1
            finally:
                reopened.stop()

    def test_sharded_database_refuses_search(self):
        sharded = ShardedDatabase(num_shards=2)
        with pytest.raises(QueryError):
            sharded.search("t.v", SearchPredicate.eq(1))
        with pytest.raises(QueryError):
            sharded.search_verified("t.v", SearchPredicate.eq(1))
        with pytest.raises(ValueError):
            SpitzCluster(nodes=1, shards=2, indexed_columns=["t.v"])


class TestHttpSearch:
    def test_verified_search_over_the_wire(self):
        service = serve_cluster(
            nodes=2, indexed_columns=["items.name", "items.price"]
        )
        try:
            with HttpClusterClient(
                "127.0.0.1", service.port, attempts=1
            ) as client:
                client.call(Request(RequestKind.SQL, {
                    "text": (
                        "CREATE TABLE items (id INT, name STR, price "
                        "INT, PRIMARY KEY (id))"
                    )
                }))
                for pk, name, price in [
                    (1, "apple", 10), (2, "banana", 25), (3, "apple", 30),
                ]:
                    client.call(Request(RequestKind.SQL, {
                        "text": (
                            f"INSERT INTO items (id, name, price) "
                            f"VALUES ({pk}, '{name}', {price})"
                        )
                    }))
                response = client.search(
                    "items.name", "apple", verify=True
                )
                assert response.ok
                assert isinstance(response.proof, SearchProof)
                verifier = ClientVerifier()
                verifier.trust(response.digest)
                verifier.verify_or_raise(response.proof)
                assert len(response.result) == 2
                # Range over the same socket.
                ranged = client.search(
                    "items.price", "between 5 27", verify=True
                )
                verifier.observe(ranged.digest)
                verifier.verify_or_raise(ranged.proof)
                assert len(ranged.result) == 2
        finally:
            service.stop()


class TestSearchTelemetry:
    def test_search_series_render_and_parse_strictly(self):
        metrics = MetricsRegistry()
        db = _seeded_db(metrics=metrics)
        db.search_verified("items.price", SearchPredicate.ge(0))
        text = render_prometheus(metrics.exposition_snapshot())
        series = parse_prometheus(text)  # raises on malformed output
        assert series["spitz_search_queries_total"] == 1.0
        assert series["spitz_search_proof_bytes_total"] > 0
        assert series["spitz_search_maintained_postings_total"] > 0
        assert any(
            name.startswith("spitz_span_search_maintain")
            for name in series
        )
