"""Concurrency integration tests: serializability across certifiers,
distributed transactions, and multi-node clusters."""

import random
import threading

import pytest

from repro.core.database import SpitzDatabase
from repro.errors import TransactionAborted
from repro.txn.manager import TransactionManager
from repro.txn.mvcc import MVCCStore
from repro.txn.occ import OccCertifier
from repro.txn.oracle import TimestampOracle
from repro.txn.two_pc import Participant, TwoPhaseCoordinator
from repro.txn.two_pl import LockManager, TwoPhaseLockingCertifier


def _bank_transfer_storm(tm, accounts=4, threads=6, transfers=40):
    """Concurrent random transfers; total balance must be conserved."""
    for i in range(accounts):
        tm.run(lambda t, i=i: t.write(f"acct{i}", 100))

    def worker(seed):
        rng = random.Random(seed)
        for _ in range(transfers):
            src = rng.randrange(accounts)
            dst = (src + 1 + rng.randrange(accounts - 1)) % accounts
            amount = rng.randint(1, 10)

            def transfer(txn):
                from_balance = txn.read(f"acct{src}")
                to_balance = txn.read(f"acct{dst}")
                txn.write(f"acct{src}", from_balance - amount)
                txn.write(f"acct{dst}", to_balance + amount)

            try:
                tm.run(transfer, retries=100)
            except TransactionAborted:
                pass  # conservation matters, not success rate

    workers = [
        threading.Thread(target=worker, args=(seed,))
        for seed in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    total = sum(
        tm.begin().read(f"acct{i}") for i in range(accounts)
    )
    assert total == accounts * 100


class TestSerializability:
    def test_occ_conserves_money(self):
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(), OccCertifier(store)
        )
        _bank_transfer_storm(tm)

    def test_two_pl_conserves_money(self):
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(),
            TwoPhaseLockingCertifier(LockManager()),
        )
        _bank_transfer_storm(tm)

    def test_write_skew_prevented_by_occ(self):
        """Classic write-skew: two txns each read both flags and clear
        the other; serializable execution forbids both committing."""
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(), OccCertifier(store)
        )
        tm.run(lambda t: (t.write("a", 1), t.write("b", 1)))
        t1 = tm.begin()
        t2 = tm.begin()
        assert t1.read("a") + t1.read("b") == 2
        assert t2.read("a") + t2.read("b") == 2
        t1.write("a", 0)
        t2.write("b", 0)
        t1.commit()
        with pytest.raises(TransactionAborted):
            t2.commit()


class TestDistributed:
    def test_transfer_across_nodes(self):
        a = Participant("a", TransactionManager())
        b = Participant("b", TransactionManager())
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"alice": 100}, "b": {"bob": 0}})
        coordinator.execute({"a": {"alice": 70}, "b": {"bob": 30}})
        assert a.manager.begin().read("alice") == 70
        assert b.manager.begin().read("bob") == 30

    def test_atomicity_over_many_random_failures(self):
        rng = random.Random(5)
        a = Participant("a", TransactionManager())
        b = Participant("b", TransactionManager())
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 0}, "b": {"y": 0}})
        expected = 0
        for i in range(1, 30):
            if rng.random() < 0.3:
                b.fail_next_prepare = True
                with pytest.raises(TransactionAborted):
                    coordinator.execute({"a": {"x": i}, "b": {"y": i}})
            else:
                coordinator.execute({"a": {"x": i}, "b": {"y": i}})
                expected = i
            # Invariant: x and y always match after each round.
            assert (
                a.manager.begin().read("x")
                == b.manager.begin().read("y")
                == expected
            )


class TestConcurrentDatabase:
    def test_parallel_transactions_one_db(self):
        db = SpitzDatabase()
        db.put(b"counter", b"0")

        def bump():
            for _ in range(20):
                while True:
                    txn = db.transaction()
                    try:
                        value = int(txn.get(b"counter"))
                        txn.put(b"counter", str(value + 1).encode())
                        txn.commit()
                        break
                    except TransactionAborted:
                        continue

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.get(b"counter") == b"80"
        assert db.verify_chain()
