"""Integration tests for the extension surfaces working together:
documents + persistence + audit + extension proofs + cluster."""

import threading

import pytest

from repro import (
    DocumentStore,
    compare_replicas,
    load_database,
    make_bundle,
    save_database,
    verify_bundle,
)
from repro.core.database import SpitzDatabase
from repro.core.node import SpitzCluster
from repro.core.provenance import key_provenance, verify_statements
from repro.core.request_handler import Request, RequestKind
from repro.core.verifier import ClientVerifier
from repro.errors import TamperDetectedError


class TestDocumentLifecycle:
    def test_documents_survive_persistence(self, tmp_path):
        store = DocumentStore()
        orders = store.collection("orders")
        orders.put("o1", {"sku": "widget", "qty": 3})
        orders.put("o1", {"sku": "widget", "qty": 5})
        path = tmp_path / "docs.spitz"
        save_database(store.db, path)

        restored = DocumentStore(load_database(path))
        restored_orders = restored.collection("orders")
        assert restored_orders.get("o1") == {"sku": "widget", "qty": 5}
        states = [s for _, s in restored_orders.history("o1")]
        assert [s["qty"] if s else None for s in states] == [3, 5]

    def test_document_proof_bundle_round_trip(self):
        store = DocumentStore()
        c = store.collection("c")
        c.put("d1", {"claim": "important"})
        store.db.flush_ledger()
        bundle = make_bundle(store.db.ledger, c._key("d1"), "doc d1")
        ok, message = verify_bundle(
            bundle.deserialize(bundle.serialize()),
            trusted=store.db.digest(),
        )
        assert ok, message

    def test_documents_and_sql_share_provenance(self):
        db = SpitzDatabase()
        store = DocumentStore(db)
        db.sql("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        db.sql("INSERT INTO t (id) VALUES (1)")
        store.collection("c").put("d", {"x": 1})
        db.put(b"raw", b"kv")
        assert verify_statements(db.ledger) == []
        lineage = key_provenance(db.ledger, b"k\x00raw")
        assert len(lineage) == 1


class TestClientDigestLifecycle:
    def test_long_lived_client_with_extension_proofs(self):
        """A client that only syncs periodically still never accepts
        rewritten history."""
        db = SpitzDatabase()
        db.put(b"genesis", b"block")
        client = ClientVerifier()
        client.trust(db.digest())

        for epoch in range(5):
            synced_height = client.trusted_digest.height
            for i in range(7):
                db.put(f"e{epoch}-k{i}".encode(), b"v")
            client.advance(
                db.digest(), db.ledger.extension_proof(synced_height)
            )
            value, proof = db.get_verified(f"e{epoch}-k0".encode())
            assert value == b"v"
            client.verify_or_raise(proof)
        assert client.trusted_digest.height == 36

    def test_forked_server_caught_on_sync(self):
        honest = SpitzDatabase()
        for i in range(5):
            honest.put(f"k{i}".encode(), b"v")
        client = ClientVerifier()
        client.trust(honest.digest())

        # The server is replaced by a forked history of equal length +
        # new growth; the extension cannot chain from the client's
        # trusted digest.
        forked = SpitzDatabase()
        for i in range(5):
            forked.put(f"k{i}".encode(), b"DIFFERENT")
        for i in range(3):
            forked.put(f"new{i}".encode(), b"v")
        with pytest.raises(TamperDetectedError):
            client.advance(
                forked.digest(), forked.ledger.extension_proof(5)
            )

    def test_replica_comparison_localizes_the_fork(self):
        a = SpitzDatabase()
        b = SpitzDatabase()
        for i in range(4):
            a.put(f"k{i}".encode(), b"v")
            b.put(f"k{i}".encode(), b"v")
        a.put(b"k4", b"honest")
        b.put(b"k4", b"forged")
        report = compare_replicas(a.ledger, b.ledger)
        assert not report.consistent
        assert report.fork_height == 4


class TestClusterVerifiedTraffic:
    def test_concurrent_clients_with_verification(self):
        cluster = SpitzCluster(nodes=3)
        cluster.start()
        errors = []
        try:
            for i in range(20):
                cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"seed{i}".encode(), "value": b"v"},
                    )
                )

            def client_worker(worker_id):
                try:
                    verifier = ClientVerifier()
                    for i in range(15):
                        response = cluster.submit(
                            Request(
                                RequestKind.GET,
                                {"key": f"seed{(worker_id + i) % 20}".encode()},
                                verify=True,
                            )
                        )
                        assert response.ok
                        verifier.trust(response.digest)
                        verifier.verify_or_raise(response.proof)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            workers = [
                threading.Thread(target=client_worker, args=(w,))
                for w in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            cluster.stop()
        assert errors == []
        assert cluster.db.verify_chain()
