"""Cross-system equivalence: all four systems agree on query results.

The benchmark comparisons are only meaningful if the systems compute
the same answers; this suite loads the same workload everywhere and
checks result equality (and proof validity where supported).
"""

import pytest

from repro.baseline.ledger_db import BaselineLedgerDB
from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.kvstore.kvs import ImmutableKVS
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def systems():
    gen = WorkloadGenerator(300, seed=11)
    records = list(gen.records())
    kvs = ImmutableKVS()
    spitz = SpitzDatabase()
    baseline = BaselineLedgerDB()
    noni = NonIntrusiveVDB()
    for key, value in records:
        kvs.put(key, value)
        spitz.put(key, value)
        baseline.put(key, value)
        noni.put(key, value)
    return gen, dict(records), kvs, spitz, baseline, noni


class TestResultEquivalence:
    def test_point_reads_agree(self, systems):
        gen, records, kvs, spitz, baseline, noni = systems
        for op in gen.reads(50):
            expected = records[op.key]
            assert kvs.get(op.key) == expected
            assert spitz.get(op.key) == expected
            assert baseline.get(op.key) == expected
            assert noni.get(op.key) == expected

    def test_missing_keys_agree(self, systems):
        _gen, _records, kvs, spitz, baseline, noni = systems
        assert kvs.get(b"zz-missing") is None
        assert spitz.get(b"zz-missing") is None
        assert baseline.get(b"zz-missing") is None
        assert noni.get(b"zz-missing") is None

    def test_range_scans_agree(self, systems):
        gen, _records, kvs, spitz, baseline, noni = systems
        for op in gen.range_scans(10, selectivity=0.05):
            expected = kvs.scan(op.key, op.high)
            assert spitz.scan(op.key, op.high) == expected
            assert baseline.scan(op.key, op.high) == expected
            assert noni.scan(op.key, op.high) == expected
            assert len(expected) >= 1

    def test_verified_reads_agree_and_verify(self, systems):
        gen, records, _kvs, spitz, baseline, noni = systems
        spitz_client = ClientVerifier()
        spitz_client.trust(spitz.digest())
        noni_client = ClientVerifier()
        noni_client.trust(noni.digest())
        baseline_root = baseline.digest()
        for op in gen.reads(20):
            expected = records[op.key]

            value, proof = spitz.get_verified(op.key)
            assert value == expected
            spitz_client.verify_or_raise(proof)

            value, bproof = baseline.get_verified(op.key)
            assert value == expected
            assert bproof.verify(baseline_root)

            value, nproof, digest = noni.get_verified(op.key)
            assert value == expected
            noni_client.observe(digest)
            noni_client.verify_or_raise(nproof)

    def test_histories_agree(self, systems):
        _gen, records, kvs, spitz, baseline, _noni = systems
        key = next(iter(records))
        kvs.put(key, b"updated-value-0001")
        spitz.put(key, b"updated-value-0001")
        baseline.put(key, b"updated-value-0001")
        kvs_history = [v for _, v in kvs.history(key)]
        spitz_history = [v for _, v in spitz.history(key)]
        baseline_history = [v for _, v in baseline.history(key)]
        assert kvs_history == spitz_history == baseline_history
        assert kvs_history[-1] == b"updated-value-0001"
