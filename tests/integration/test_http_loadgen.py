"""Integration test for the multi-process HTTP load generator.

Spawns real worker processes (the ``spawn`` context — each worker is
a fresh interpreter) against a real server socket, then checks the
merged :class:`LoadReport` against the server's own accounting.  Kept
small: the point is that the machinery works end to end, not the
absolute numbers.
"""

import json

from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import serve_cluster


class TestRunLoad:
    def test_multiprocess_load_reports_and_accounts(self):
        svc = serve_cluster(nodes=2, queue_capacity=256)
        try:
            report = run_load(
                host="127.0.0.1",
                port=svc.port,
                processes=2,
                ops_per_process=25,
                put_ratio=0.8,
                verify_every=5,
                attempts=2,
            )
        finally:
            svc.stop()

        assert report.offered == 50
        # Generous queue, retries on: everything lands.
        assert report.completed == 50
        assert report.errors == 0
        assert report.network_errors == 0
        assert report.attempts >= 50
        assert report.elapsed_seconds > 0
        assert report.rps > 0
        assert report.latency_p50 is not None
        assert report.latency_p99 >= report.latency_p50
        assert len(report.per_worker) == 2

        # The server's own books agree: every accepted envelope was
        # processed exactly once (nothing shed at this load).
        counters = svc.cluster.stats()["counters"]
        assert counters["queue.submitted"] == counters["node.processed"]
        assert counters["serve.http.status.200"] >= 50

        # The report is the JSON artifact the bench/CI path uploads.
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["rps"] == report.rps

    def test_report_math_without_processes(self):
        report = LoadReport(processes=4, ops_per_process=10)
        assert report.rps == 0.0
        report.completed, report.elapsed_seconds = 30, 2.0
        assert report.rps == 15.0
