"""Cross-layer observability: one registry, three surfaces.

The same :class:`~repro.obs.metrics.MetricsRegistry` snapshot must be
reachable through a ``RequestKind.STATS`` request, the ``spitz stats``
CLI subcommand, and the benchmark harness's ``--json`` output — and
its totals must survive concurrent load exactly (no lost increments).

Tracing follows the same rule: every envelope a queue accepts must
finalize exactly one trace — a parented span tree from the client's
root span down to the storage leaf spans — including shed, errored and
failed-on-stop requests, with the outcome recorded as the span status.
"""

import collections
import json
import threading
import time

from repro.cli import main as cli_main
from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.bench.harness import main as bench_main


class TestClusterConcurrencyTotals:
    def test_hammered_cluster_counts_every_request(self):
        """4 nodes, 8 client threads: every registry total equals the
        number of requests actually submitted."""
        cluster = SpitzCluster(nodes=4)
        cluster.start()
        clients, per_client = 8, 25
        errors = []

        def client(client_id: int):
            try:
                for i in range(per_client):
                    key = f"c{client_id}k{i}".encode()
                    response = cluster.submit(
                        Request(
                            RequestKind.PUT, {"key": key, "value": b"v"}
                        )
                    )
                    assert response.ok
            except Exception as error:  # propagate to the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(n,))
            for n in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = clients * per_client
        try:
            snap = cluster.stats()
            assert snap["counters"]["requests.total"] == total
            assert snap["counters"]["requests.kind.put"] == total
            assert snap["counters"]["queue.submitted"] == total
            assert snap["counters"]["node.processed"] == total
            assert snap["counters"]["requests.errors"] == 0
            assert snap["histograms"]["queue.wait_seconds"]["count"] == total
            assert snap["histograms"]["span.node.serve"]["count"] == total
            assert sum(node.processed for node in cluster.nodes) == total
            assert snap["counters"]["db.commits"] == total
        finally:
            cluster.stop()

    def test_stats_request_matches_cluster_stats(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            for i in range(10):
                cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"k{i}".encode(), "value": b"v"},
                    )
                )
            served = cluster.submit(Request(RequestKind.STATS))
            assert served.ok
            local = cluster.stats()
            # Identical structure and identical totals for everything
            # the STATS request itself does not bump.
            assert set(served.result) == {"counters", "gauges", "histograms"}
            assert served.result["counters"]["db.commits"] == 10
            assert local["counters"]["db.commits"] == 10
            assert (
                served.result["gauges"]["ledger.height"]
                == local["gauges"]["ledger.height"]
            )
        finally:
            cluster.stop()


def _spans_by_name(trace):
    spans = {}
    for span in trace.spans:
        spans.setdefault(span.name, []).append(span)
    return spans


class TestTracePropagation:
    def test_hammer_yields_one_complete_trace_tree_per_request(self):
        """4 nodes, 8 client threads: every submitted request finalizes
        exactly one trace whose tree is fully parented — client span →
        node.serve → request.handle → storage leaf spans."""
        cluster = SpitzCluster(nodes=4)
        # Retain every trace the hammer produces (the default recent
        # ring is sized for production, not for exhaustive asserts).
        cluster.metrics.flight._recent = collections.deque(maxlen=4096)
        cluster.start()
        clients, per_client = 8, 25
        errors = []

        def client(client_id: int):
            try:
                for i in range(per_client):
                    key = f"t{client_id}k{i}".encode()
                    response = cluster.submit(
                        Request(
                            RequestKind.PUT, {"key": key, "value": b"v"}
                        )
                    )
                    assert response.ok
            except Exception as error:  # propagate to the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(n,))
            for n in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = clients * per_client
        try:
            traces = cluster.metrics.flight.recent()
            assert len(traces) == total
            assert cluster.metrics.tracer.open_trace_count() == 0
            for trace in traces:
                assert trace.kind == "put"
                assert trace.status == "ok"
                root = trace.root
                assert root.name == "client.submit"
                assert root.parent_id is None
                spans = _spans_by_name(trace)
                (serve,) = spans["node.serve"]
                assert serve.parent_id == root.span_id
                assert serve.attributes["node"].startswith("p")
                assert serve.attributes["queue_wait"] >= 0.0
                (handle,) = spans["request.handle"]
                assert handle.parent_id == serve.span_id
                (commit,) = spans["txn.commit"]
                assert commit.parent_id == handle.span_id
                # Every span belongs to the same trace and every
                # parent_id resolves within the tree.
                span_ids = {span.span_id for span in trace.spans}
                for span in trace.spans:
                    assert span.trace_id == root.trace_id
                    if span.parent_id is not None:
                        assert span.parent_id in span_ids
                # The acceptance invariant: per-stage self-times never
                # sum past the end-to-end duration.
                assert sum(trace.stages.values()) <= trace.duration + 1e-12
        finally:
            cluster.stop()

    def test_shed_request_closes_trace_with_shed_status(self):
        cluster = SpitzCluster(nodes=1)
        try:
            # Submit with an already-expired deadline, then serve: the
            # node must shed it and still finalize the trace.
            envelope = cluster.queue.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"}),
                deadline=time.perf_counter() - 1.0,
            )
            assert cluster.nodes[0].serve_one(timeout=1.0)
            assert envelope.done.is_set()
            assert envelope.response.retryable
            failures = cluster.metrics.flight.failures()
            assert len(failures) == 1
            trace = failures[0]
            assert trace.status == "shed"
            spans = _spans_by_name(trace)
            (serve,) = spans["node.serve"]
            assert serve.status == "shed"
            assert serve.parent_id == trace.root.span_id
            # Shed means no work: the handler never ran.
            assert "request.handle" not in spans
        finally:
            cluster.stop()

    def test_errored_request_closes_trace_with_error_status(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            response = cluster.submit(
                Request(RequestKind.GET, {"wrong_field": 1})
            )
            assert not response.ok
            failures = cluster.metrics.flight.failures()
            assert len(failures) == 1
            trace = failures[0]
            assert trace.status == "error"
            spans = _spans_by_name(trace)
            assert spans["node.serve"][0].status == "error"
            # The handler ran (and converted the exception), so the
            # request.handle span exists and is marked errored too.
            assert spans["request.handle"][0].status == "error"
        finally:
            cluster.stop()

    def test_failed_on_stop_closes_trace_with_error_status(self):
        cluster = SpitzCluster(nodes=1)  # never started
        envelope = cluster.queue.submit(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        cluster.stop()
        assert envelope.done.is_set()
        assert not envelope.response.ok
        (trace,) = cluster.metrics.flight.failures()
        assert trace.status == "error"
        assert trace.root.name == "client.submit"

    def test_stats_request_serves_traces_on_opt_in(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            for i in range(5):
                cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"k{i}".encode(), "value": b"v"},
                    )
                )
            plain = cluster.submit(Request(RequestKind.STATS))
            assert set(plain.result) == {"counters", "gauges", "histograms"}
            served = cluster.submit(
                Request(RequestKind.STATS, {"traces": True})
            )
            assert served.ok
            traces = served.result["traces"]
            assert traces["attribution"]["put"]["requests"] == 5
            assert traces["slowest"]
            root = traces["slowest"][0]["root"]
            assert root["name"] == "client.submit"
            assert root["children"][0]["name"] == "node.serve"
            # The payload must round-trip as JSON (the simnet layer
            # serializes responses).
            json.dumps(served.result)
        finally:
            cluster.stop()


class TestQueueDepthGauge:
    def test_depth_gauge_tracks_qsize_exactly(self):
        cluster = SpitzCluster(nodes=1)  # not started: queue only
        queue = cluster.queue
        gauge = cluster.metrics.gauge("queue.depth")
        for i in range(5):
            queue.submit(
                Request(RequestKind.PUT, {"key": b"k%d" % i, "value": b"v"})
            )
            assert gauge.value == queue._queue.qsize() == i + 1
        for i in range(5):
            assert queue.take(timeout=0.1) is not None
            assert gauge.value == queue._queue.qsize() == 4 - i
        cluster.stop()

    def test_depth_gauge_consistent_under_concurrency(self):
        """Interleaved submit/take can no longer strand the gauge: it
        is updated under the queue lock, so after the dust settles it
        equals the real depth (zero)."""
        cluster = SpitzCluster(nodes=4)
        cluster.start()
        gauge = cluster.metrics.gauge("queue.depth")

        def client(client_id: int):
            for i in range(50):
                cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"d{client_id}k{i}".encode(), "value": b"v"},
                    )
                )

        threads = [
            threading.Thread(target=client, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert gauge.value == cluster.queue._queue.qsize() == 0
        finally:
            cluster.stop()


class TestQueueWaitStamp:
    def test_queue_wait_excludes_submit_lock_contention(self):
        """Regression: enqueued_at was stamped at Envelope construction
        — before submit's lock/admission work — so queue.wait_seconds
        silently included submit-side contention.  Holding the queue
        lock while another thread submits must not inflate its measured
        wait."""
        cluster = SpitzCluster(nodes=1)  # not started: take manually
        queue = cluster.queue
        hold = 0.2
        envelope_box = {}

        def submitter():
            envelope_box["env"] = queue.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )

        with queue._lock:
            thread = threading.Thread(target=submitter)
            thread.start()
            time.sleep(hold)  # submitter is now blocked on the lock
        thread.join()
        took = time.perf_counter()
        envelope = envelope_box["env"]
        # The stamp is from *after* the lock was finally acquired and
        # the envelope actually enqueued — the wait measured from it
        # must not contain the artificial contention window.
        assert took - envelope.enqueued_at < hold / 2
        cluster.stop()


class TestCliTraceSubcommands:
    def test_slowest_prints_attribution_with_bounded_stage_sums(
        self, capsys
    ):
        assert cli_main(
            ["slowest", "--ops", "10", "--nodes", "2", "--limit", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "client.submit" in out

    def test_slowest_json_stage_durations_bounded_by_duration(
        self, capsys
    ):
        assert cli_main(
            ["slowest", "--ops", "10", "--limit", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slowest"], "no traces retained"
        for entry in payload["slowest"]:
            total = sum(entry["stages"].values())
            assert total <= entry["duration_seconds"] + 1e-12
        for kind, row in payload["attribution"].items():
            fractions = sum(
                cell["fraction"] for cell in row["stages"].values()
            )
            assert fractions <= 1.0 + 1e-9, kind

    def test_trace_failures_shows_errored_request(self, capsys):
        assert cli_main(
            ["trace", "--ops", "3", "--failures", "--limit", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "client.submit" in out


class TestCliStats:
    def test_stats_subcommand_prints_snapshot_json(self, tmp_path, capsys):
        root = str(tmp_path / "db.d")
        assert cli_main(["init", root, "--durable"]) == 0
        assert cli_main(["put", root, "alice", "100"]) == 0
        capsys.readouterr()
        assert cli_main(["stats", root, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap) == {"counters", "gauges", "histograms"}
        # The opening recovery replayed the logged put.
        assert snap["counters"]["db.commits"] == 1
        assert snap["gauges"]["ledger.height"] == 1
        # The WAL reports into the same registry.
        assert "wal.fsyncs" in snap["counters"]
        assert "chunks.dedup_hit_rate" in snap["gauges"]

    def test_stats_on_snapshot_file(self, tmp_path, capsys):
        path = str(tmp_path / "db.spitz")
        assert cli_main(["init", path]) == 0
        assert cli_main(["put", path, "k", "v"]) == 0
        capsys.readouterr()
        assert cli_main(["stats", path, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        # A pickled snapshot carries its registry: the put recorded
        # before saving is still visible after loading.
        assert snap["counters"]["db.commits"] == 1


class TestBenchJson:
    def test_harness_writes_figures_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            bench_main(
                [
                    "--figure", "6a",
                    "--scale", "30",
                    "--ladder", "1,2",
                    "--json", str(out),
                ]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["sizes"] == [30, 60]
        figure = report["figures"][0]
        assert figure["figure"] == "Figure 6(a)"
        assert set(figure["series"]) >= {"Spitz", "Spitz-verify", "Baseline"}
        assert figure["series"]["Spitz"]["30"] > 0
        # The run's registry delta rides along with the figure...
        assert figure["metrics_delta"]["counters"]["db.commits"] > 0
        # ...with its per-stage breakdown (the load phase commits
        # through the traced txn.commit stage)...
        breakdown = figure["stage_breakdown"]
        assert breakdown["txn.commit"]["count"] > 0
        assert breakdown["txn.commit"]["total_seconds"] > 0
        assert sum(
            cell["fraction"] for cell in breakdown.values()
        ) <= 1.0 + 1e-9
        # ...and the full shared snapshot is the same shape the STATS
        # request and `spitz stats` emit.
        snap = report["metrics"]
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["verifier.checks"] > 0
        assert snap["counters"]["verifier.detections"] == 0
        # The flight-recorder surface rides along too (figure 6a has
        # no cluster requests, so it may be empty — but the key and
        # shape must be there).
        assert set(report["traces"]) == {
            "attribution", "slowest", "failures",
        }
