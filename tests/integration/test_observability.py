"""Cross-layer observability: one registry, three surfaces.

The same :class:`~repro.obs.metrics.MetricsRegistry` snapshot must be
reachable through a ``RequestKind.STATS`` request, the ``spitz stats``
CLI subcommand, and the benchmark harness's ``--json`` output — and
its totals must survive concurrent load exactly (no lost increments).
"""

import json
import threading

from repro.cli import main as cli_main
from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.bench.harness import main as bench_main


class TestClusterConcurrencyTotals:
    def test_hammered_cluster_counts_every_request(self):
        """4 nodes, 8 client threads: every registry total equals the
        number of requests actually submitted."""
        cluster = SpitzCluster(nodes=4)
        cluster.start()
        clients, per_client = 8, 25
        errors = []

        def client(client_id: int):
            try:
                for i in range(per_client):
                    key = f"c{client_id}k{i}".encode()
                    response = cluster.submit(
                        Request(
                            RequestKind.PUT, {"key": key, "value": b"v"}
                        )
                    )
                    assert response.ok
            except Exception as error:  # propagate to the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(n,))
            for n in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = clients * per_client
        try:
            snap = cluster.stats()
            assert snap["counters"]["requests.total"] == total
            assert snap["counters"]["requests.kind.put"] == total
            assert snap["counters"]["queue.submitted"] == total
            assert snap["counters"]["node.processed"] == total
            assert snap["counters"]["requests.errors"] == 0
            assert snap["histograms"]["queue.wait_seconds"]["count"] == total
            assert snap["histograms"]["span.node.serve"]["count"] == total
            assert sum(node.processed for node in cluster.nodes) == total
            assert snap["counters"]["db.commits"] == total
        finally:
            cluster.stop()

    def test_stats_request_matches_cluster_stats(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            for i in range(10):
                cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"k{i}".encode(), "value": b"v"},
                    )
                )
            served = cluster.submit(Request(RequestKind.STATS))
            assert served.ok
            local = cluster.stats()
            # Identical structure and identical totals for everything
            # the STATS request itself does not bump.
            assert set(served.result) == {"counters", "gauges", "histograms"}
            assert served.result["counters"]["db.commits"] == 10
            assert local["counters"]["db.commits"] == 10
            assert (
                served.result["gauges"]["ledger.height"]
                == local["gauges"]["ledger.height"]
            )
        finally:
            cluster.stop()


class TestCliStats:
    def test_stats_subcommand_prints_snapshot_json(self, tmp_path, capsys):
        root = str(tmp_path / "db.d")
        assert cli_main(["init", root, "--durable"]) == 0
        assert cli_main(["put", root, "alice", "100"]) == 0
        capsys.readouterr()
        assert cli_main(["stats", root]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap) == {"counters", "gauges", "histograms"}
        # The opening recovery replayed the logged put.
        assert snap["counters"]["db.commits"] == 1
        assert snap["gauges"]["ledger.height"] == 1
        # The WAL reports into the same registry.
        assert "wal.fsyncs" in snap["counters"]
        assert "chunks.dedup_hit_rate" in snap["gauges"]

    def test_stats_on_snapshot_file(self, tmp_path, capsys):
        path = str(tmp_path / "db.spitz")
        assert cli_main(["init", path]) == 0
        assert cli_main(["put", path, "k", "v"]) == 0
        capsys.readouterr()
        assert cli_main(["stats", path]) == 0
        snap = json.loads(capsys.readouterr().out)
        # A pickled snapshot carries its registry: the put recorded
        # before saving is still visible after loading.
        assert snap["counters"]["db.commits"] == 1


class TestBenchJson:
    def test_harness_writes_figures_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            bench_main(
                [
                    "--figure", "6a",
                    "--scale", "30",
                    "--ladder", "1,2",
                    "--json", str(out),
                ]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["sizes"] == [30, 60]
        figure = report["figures"][0]
        assert figure["figure"] == "Figure 6(a)"
        assert set(figure["series"]) >= {"Spitz", "Spitz-verify", "Baseline"}
        assert figure["series"]["Spitz"]["30"] > 0
        # The run's registry delta rides along with the figure...
        assert figure["metrics_delta"]["counters"]["db.commits"] > 0
        # ...and the full shared snapshot is the same shape the STATS
        # request and `spitz stats` emit.
        snap = report["metrics"]
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["verifier.checks"] > 0
        assert snap["counters"]["verifier.detections"] == 0
