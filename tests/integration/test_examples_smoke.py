"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; a broken example is a
documentation bug.  Each runs in a subprocess exactly as a user would
run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"
