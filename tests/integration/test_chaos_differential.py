"""Chaos differential test: Spitz vs a reference model.

A long random operation stream (puts, overwrites, deletes, scans,
temporal reads, transactions) runs against Spitz and a plain dict
model simultaneously.  After every step the results must agree; every
K steps the client verifies proofs, advances its digest with an
extension proof, and spot-checks a historical snapshot.  This is the
strongest end-to-end statement the suite makes: under arbitrary
operation interleavings the verifiable database *is* the map it
claims to be, at every point in history.
"""

import random

import pytest

from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.errors import TransactionAborted

STEPS = 600
VERIFY_EVERY = 25


def _key(rng):
    return f"key-{rng.randrange(80):03d}".encode()


@pytest.mark.parametrize("seed", [7, 23, 91])
def test_chaos_stream_matches_model(seed):
    rng = random.Random(seed)
    db = SpitzDatabase(block_batch=rng.choice([1, 4, 16]))
    model = {}
    # (height, snapshot) pairs recorded for temporal spot checks.
    snapshots = []
    client = ClientVerifier()
    client.trust(db.digest())

    for step in range(STEPS):
        action = rng.random()
        if action < 0.45:
            key, value = _key(rng), f"v{step}".encode()
            db.put(key, value)
            model[key] = value
        elif action < 0.60:
            key = _key(rng)
            db.delete(key)
            model.pop(key, None)
        elif action < 0.75:
            key = _key(rng)
            assert db.get(key) == model.get(key), f"step {step}"
        elif action < 0.85:
            low, high = sorted([_key(rng), _key(rng)])
            got = dict(db.scan(low, high))
            expected = {
                k: v for k, v in model.items() if low <= k <= high
            }
            assert got == expected, f"step {step}"
        else:
            # Transactional read-modify-write of two keys.
            first, second = _key(rng), _key(rng)
            try:
                with db.transaction() as txn:
                    a = txn.get(first) or b"0:"
                    txn.put(first, a + b"+")
                    txn.put(second, b"swapped")
                model[first] = (model.get(first) or b"0:") + b"+"
                model[second] = b"swapped"
            except TransactionAborted:  # pragma: no cover - single thread
                pass

        if step % VERIFY_EVERY == VERIFY_EVERY - 1:
            synced = client.trusted_digest.height
            client.advance(
                db.digest(), db.ledger.extension_proof(synced)
            )
            # Verified spot reads of a few random keys (present or not).
            for _ in range(3):
                key = _key(rng)
                value, proof = db.get_verified(key)
                assert value == model.get(key), f"step {step}"
                client.verify_or_raise(proof)
            snapshots.append((db.digest().height - 1, dict(model)))

    # Temporal spot checks: each recorded snapshot must still be fully
    # readable at its block height.
    for height, snapshot in rng.sample(snapshots, min(5, len(snapshots))):
        probe_keys = rng.sample(sorted(snapshot) or [b"none"],
                                min(5, len(snapshot)))
        for key in probe_keys:
            assert db.get_at_block(key, height) == snapshot[key]

    assert db.verify_chain()
