"""Tests for SQL aggregates and ORDER BY."""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.sql import Select, parse
from repro.errors import SchemaError, SqlSyntaxError


@pytest.fixture
def sales_db():
    db = SpitzDatabase()
    db.sql(
        "CREATE TABLE sales (id INT, region STR, amount FLOAT, "
        "qty INT, PRIMARY KEY (id))"
    )
    rows = [
        (1, "north", 100.0, 2),
        (2, "south", 250.0, 5),
        (3, "north", 75.0, 1),
        (4, "east", 300.0, 6),
        (5, "south", 125.0, 3),
    ]
    for row in rows:
        db.sql(
            "INSERT INTO sales (id, region, amount, qty) "
            f"VALUES ({row[0]}, '{row[1]}', {row[2]}, {row[3]})"
        )
    return db


class TestAggregateParsing:
    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        assert isinstance(stmt, Select)
        assert stmt.aggregate == ("count", "*")

    def test_sum_column(self):
        stmt = parse("SELECT SUM(amount) FROM t WHERE id > 3")
        assert stmt.aggregate == ("sum", "amount")
        assert len(stmt.where) == 1

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM t")

    def test_aggregate_names_usable_as_columns(self):
        # A column that happens to be named like a function still
        # parses as a plain projection without parentheses.
        stmt = parse("SELECT count FROM t")
        assert stmt.aggregate is None
        assert stmt.columns == ("count",)


class TestOrderByParsing:
    def test_order_by_default_asc(self):
        stmt = parse("SELECT * FROM t ORDER BY price")
        assert stmt.order_by == ("price", False)

    def test_order_by_desc_with_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY price DESC LIMIT 3")
        assert stmt.order_by == ("price", True)
        assert stmt.limit == 3

    def test_order_by_after_where(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 ORDER BY b ASC")
        assert stmt.order_by == ("b", False)


class TestAggregateExecution:
    def test_count_star(self, sales_db):
        assert sales_db.sql("SELECT COUNT(*) FROM sales") == [
            {"count(*)": 5}
        ]

    def test_count_with_where(self, sales_db):
        assert sales_db.sql(
            "SELECT COUNT(*) FROM sales WHERE region = 'north'"
        ) == [{"count(*)": 2}]

    def test_sum(self, sales_db):
        assert sales_db.sql("SELECT SUM(amount) FROM sales") == [
            {"sum(amount)": 850.0}
        ]

    def test_avg(self, sales_db):
        assert sales_db.sql("SELECT AVG(qty) FROM sales") == [
            {"avg(qty)": 3.4}
        ]

    def test_min_max(self, sales_db):
        assert sales_db.sql("SELECT MIN(amount) FROM sales") == [
            {"min(amount)": 75.0}
        ]
        assert sales_db.sql("SELECT MAX(amount) FROM sales") == [
            {"max(amount)": 300.0}
        ]

    def test_aggregate_over_empty_set(self, sales_db):
        assert sales_db.sql(
            "SELECT SUM(amount) FROM sales WHERE id > 99"
        ) == [{"sum(amount)": None}]
        assert sales_db.sql(
            "SELECT COUNT(*) FROM sales WHERE id > 99"
        ) == [{"count(*)": 0}]

    def test_aggregate_unknown_column(self, sales_db):
        with pytest.raises(SchemaError):
            sales_db.sql("SELECT SUM(bogus) FROM sales")

    def test_aggregate_as_of_block(self, sales_db):
        height = sales_db.ledger.height - 1
        sales_db.sql(
            "INSERT INTO sales (id, region, amount, qty) "
            "VALUES (6, 'west', 1000.0, 1)"
        )
        assert sales_db.sql(
            f"SELECT COUNT(*) FROM sales AS OF BLOCK {height}"
        ) == [{"count(*)": 5}]
        assert sales_db.sql("SELECT COUNT(*) FROM sales") == [
            {"count(*)": 6}
        ]


class TestOrderByExecution:
    def test_order_asc(self, sales_db):
        rows = sales_db.sql("SELECT id FROM sales ORDER BY amount")
        assert [r["id"] for r in rows] == [3, 1, 5, 2, 4]

    def test_order_desc_limit(self, sales_db):
        rows = sales_db.sql(
            "SELECT id FROM sales ORDER BY amount DESC LIMIT 2"
        )
        assert [r["id"] for r in rows] == [4, 2]

    def test_order_by_unprojected_column(self, sales_db):
        rows = sales_db.sql("SELECT region FROM sales ORDER BY qty DESC")
        assert rows[0] == {"region": "east"}
        assert set(rows[0]) == {"region"}  # projection still applied

    def test_order_by_with_where(self, sales_db):
        rows = sales_db.sql(
            "SELECT id FROM sales WHERE region = 'south' "
            "ORDER BY amount DESC"
        )
        assert [r["id"] for r in rows] == [2, 5]

    def test_order_by_unknown_column(self, sales_db):
        with pytest.raises(SchemaError):
            sales_db.sql("SELECT id FROM sales ORDER BY bogus")

    def test_order_by_string_column(self, sales_db):
        rows = sales_db.sql("SELECT region FROM sales ORDER BY region")
        assert [r["region"] for r in rows] == [
            "east", "north", "north", "south", "south",
        ]


class TestGroupBy:
    def test_group_by_sum(self, sales_db):
        rows = sales_db.sql(
            "SELECT region, SUM(amount) FROM sales GROUP BY region"
        )
        assert rows == [
            {"region": "east", "sum(amount)": 300.0},
            {"region": "north", "sum(amount)": 175.0},
            {"region": "south", "sum(amount)": 375.0},
        ]

    def test_group_by_count_without_projection(self, sales_db):
        rows = sales_db.sql("SELECT COUNT(*) FROM sales GROUP BY region")
        assert [row["count(*)"] for row in rows] == [1, 2, 2]

    def test_group_by_with_where(self, sales_db):
        rows = sales_db.sql(
            "SELECT region, MAX(qty) FROM sales WHERE amount > 100.0 "
            "GROUP BY region"
        )
        assert rows == [
            {"region": "east", "max(qty)": 6},
            {"region": "south", "max(qty)": 5},
        ]

    def test_group_by_limit(self, sales_db):
        rows = sales_db.sql(
            "SELECT region, COUNT(*) FROM sales GROUP BY region LIMIT 1"
        )
        assert rows == [{"region": "east", "count(*)": 1}]

    def test_group_by_requires_aggregate(self, sales_db):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT region FROM sales GROUP BY region")

    def test_projection_must_match_group_column(self, sales_db):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT id, SUM(amount) FROM sales GROUP BY region")

    def test_two_aggregates_rejected(self, sales_db):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(a), COUNT(*) FROM t")

    def test_group_by_unknown_column(self, sales_db):
        with pytest.raises(SchemaError):
            sales_db.sql("SELECT COUNT(*) FROM sales GROUP BY bogus")
