"""Unit tests for Merkle-DAG objects (Blob, MerkleList, MerkleMap)."""

import random

import pytest

from repro.forkbase.dag import Blob, MerkleList, MerkleMap


class TestBlob:
    def test_round_trip(self, store):
        data = bytes(range(256)) * 40
        blob = Blob.write(store, data)
        assert blob.read() == data
        assert len(blob) == len(data)

    def test_identical_blobs_share_chunks(self, store):
        data = b"shared content " * 1000
        Blob.write(store, data)
        before = store.stats.physical_bytes
        Blob.write(store, data)
        assert store.stats.physical_bytes == before

    def test_empty_blob(self, store):
        blob = Blob.write(store, b"")
        assert blob.read() == b""
        assert len(blob) == 0


class TestMerkleList:
    def test_round_trip(self, store):
        items = ("a", 1, b"raw", None)
        mlist = MerkleList.write(store, items)
        assert mlist.items() == items

    def test_append_is_persistent(self, store):
        first = MerkleList.write(store, ("a",))
        second = first.append("b")
        assert first.items() == ("a",)
        assert second.items() == ("a", "b")

    def test_equal_content_equal_address(self, store):
        one = MerkleList.write(store, (1, 2, 3))
        two = MerkleList.write(store, (1, 2, 3))
        assert one.address == two.address


class TestMerkleMap:
    def test_empty(self, store):
        empty = MerkleMap.empty(store)
        assert len(empty) == 0
        assert "k" not in empty

    def test_set_get(self, store):
        m = MerkleMap.empty(store).set("k", "v")
        assert m.get("k") == "v"

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyError):
            MerkleMap.empty(store).get("ghost")

    def test_get_optional_default(self, store):
        assert MerkleMap.empty(store).get_optional("x", 42) == 42

    def test_persistence(self, store):
        base = MerkleMap.empty(store).set("a", 1)
        updated = base.set("a", 2)
        assert base.get("a") == 1
        assert updated.get("a") == 2

    def test_delete(self, store):
        m = MerkleMap.empty(store).set("a", 1).set("b", 2)
        without = m.delete("a")
        assert "a" not in without
        assert without.get("b") == 2
        assert m.get("a") == 1

    def test_delete_absent_is_noop_with_shared_root(self, store):
        m = MerkleMap.empty(store).set("a", 1)
        assert m.delete("zzz").address == m.address

    def test_items_sorted(self, store):
        keys = [f"k{i:03d}" for i in range(100)]
        random.Random(0).shuffle(keys)
        m = MerkleMap.empty(store)
        for key in keys:
            m = m.set(key, key.upper())
        assert [k for k, _ in m.items()] == sorted(keys)

    def test_large_map_splits_and_finds(self, store):
        m = MerkleMap.empty(store)
        for i in range(1500):
            m = m.set(f"key{i:05d}", i)
        assert len(m) == 1500
        assert m.get("key00777") == 777
        assert m.get("key01499") == 1499

    def test_from_items_bulk_build(self, store):
        pairs = [(f"k{i:04d}", i) for i in range(500)]
        m = MerkleMap.from_items(store, pairs)
        assert len(m) == 500
        assert m.get("k0250") == 250

    def test_from_items_last_write_wins(self, store):
        m = MerkleMap.from_items(store, [("a", 1), ("a", 2)])
        assert m.get("a") == 2

    def test_structural_sharing_between_versions(self, store):
        m = MerkleMap.empty(store)
        for i in range(400):
            m = m.set(f"key{i:05d}", i)
        before = store.stats.unique_chunks
        m.set("key00010", "changed")
        added = store.stats.unique_chunks - before
        # Only the spine to one leaf is rewritten.
        assert added <= 5
