"""Unit tests for the virtual cell store."""

from repro.core.cell_store import CellStore
from repro.forkbase.chunk_store import ChunkStore


def _cells():
    return CellStore(ChunkStore())


class TestCellStore:
    def test_put_then_latest(self):
        cells = _cells()
        cells.put("col", b"pk", 1, b"v1")
        assert cells.latest("col", b"pk").value == b"v1"

    def test_get_exact_version(self):
        cells = _cells()
        ukey = cells.put("col", b"pk", 5, b"v")
        assert cells.get(ukey) == b"v"

    def test_missing(self):
        cells = _cells()
        assert cells.latest("col", b"nope") is None
        assert cells.get_by_encoded(b"garbage") is None

    def test_versions_ordered_by_timestamp(self):
        cells = _cells()
        for ts in (1, 2, 3):
            cells.put("col", b"pk", ts, f"v{ts}".encode())
        versions = cells.versions("col", b"pk")
        assert [c.ukey.timestamp for c in versions] == [1, 2, 3]
        assert versions[-1].value == b"v3"

    def test_at_time(self):
        cells = _cells()
        cells.put("col", b"pk", 10, b"old")
        cells.put("col", b"pk", 20, b"new")
        assert cells.at_time("col", b"pk", 15).value == b"old"
        assert cells.at_time("col", b"pk", 25).value == b"new"
        assert cells.at_time("col", b"pk", 5) is None

    def test_immutability_values_deduplicated(self):
        chunks = ChunkStore()
        cells = CellStore(chunks)
        cells.put("a", b"p1", 1, b"same-value")
        before = chunks.stats.physical_bytes
        cells.put("a", b"p2", 2, b"same-value")
        assert chunks.stats.physical_bytes == before

    def test_cells_isolated_by_column(self):
        cells = _cells()
        cells.put("c1", b"pk", 1, b"in-c1")
        assert cells.latest("c2", b"pk") is None

    def test_scan_by_encoded_range(self):
        cells = _cells()
        for i in range(5):
            cells.put("col", f"pk{i}".encode(), 1, str(i).encode())
        from repro.core.universal_key import UniversalKey

        low, _ = UniversalKey.prefix("col", b"pk1")
        _, high = UniversalKey.prefix("col", b"pk3")
        found = [c.ukey.primary_key for c in cells.scan(low, high)]
        assert found == [b"pk1", b"pk2", b"pk3"]

    def test_len_counts_versions(self):
        cells = _cells()
        cells.put("c", b"p", 1, b"a")
        cells.put("c", b"p", 2, b"b")
        assert len(cells) == 2
