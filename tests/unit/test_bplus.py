"""Unit tests for the B+-tree."""

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.indexes.bplus import BPlusTree


class TestBPlusBasics:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(5, "five")
        assert tree.get(5) == "five"

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            BPlusTree().get(1)

    def test_get_optional(self):
        tree = BPlusTree()
        assert tree.get_optional(9, "d") == "d"

    def test_overwrite_keeps_size(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_contains(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert "k" in tree
        assert "other" not in tree

    def test_min_max(self):
        tree = BPlusTree(order=4)
        for value in [5, 1, 9, 3]:
            tree.insert(value, value)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(KeyNotFoundError):
            BPlusTree().min_key()


class TestBPlusScale:
    @pytest.mark.parametrize("order", [4, 8, 64])
    def test_sequential_inserts(self, order):
        tree = BPlusTree(order=order)
        for i in range(1000):
            tree.insert(i, i * 2)
        assert len(tree) == 1000
        assert tree.get(999) == 1998
        assert list(tree.keys()) == list(range(1000))

    def test_random_inserts_sorted_iteration(self):
        tree = BPlusTree(order=8)
        keys = list(range(2000))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert list(tree.keys()) == list(range(2000))

    def test_range_query(self):
        tree = BPlusTree(order=8)
        for i in range(500):
            tree.insert(i, str(i))
        assert [k for k, _ in tree.range(100, 110)] == list(range(100, 111))

    def test_range_exclusive_high(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, i)
        result = [k for k, _ in tree.range(5, 10, inclusive=False)]
        assert result == [5, 6, 7, 8, 9]

    def test_range_outside_keyspace(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        assert list(tree.range(100, 200)) == []


class TestBPlusDelete:
    def test_delete_missing_raises(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        with pytest.raises(KeyNotFoundError):
            tree.delete(2)

    def test_delete_then_get_raises(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        tree.delete(1)
        with pytest.raises(KeyNotFoundError):
            tree.get(1)

    @pytest.mark.parametrize("order", [4, 8])
    def test_delete_everything(self, order):
        tree = BPlusTree(order=order)
        keys = list(range(500))
        random.Random(2).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.delete(key)
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_mixed_against_dict_model(self):
        rng = random.Random(11)
        tree = BPlusTree(order=4)
        model = {}
        for _ in range(5000):
            key = rng.randrange(800)
            if rng.random() < 0.4 and model:
                victim = rng.choice(list(model))
                tree.delete(victim)
                del model[victim]
            else:
                tree.insert(key, key * 3)
                model[key] = key * 3
        assert list(tree.items()) == sorted(model.items())
        assert len(tree) == len(model)

    def test_range_after_heavy_deletes(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i)
        for i in range(0, 200, 2):
            tree.delete(i)
        assert [k for k, _ in tree.range(0, 199)] == list(range(1, 200, 2))
