"""Unit tests for the audit module (replicas, forks, proof bundles)."""

import dataclasses

import pytest

from repro.core.audit import (
    ProofBundle,
    audit_ledger,
    compare_replicas,
    make_bundle,
    verify_bundle,
)
from repro.core.database import SpitzDatabase
from repro.core.ledger import SpitzLedger
from repro.errors import VerificationError


def _ledger(writes):
    ledger = SpitzLedger()
    for key, value in writes:
        ledger.append_block({key: value})
    return ledger


class TestCompareReplicas:
    def test_identical_replicas(self):
        writes = [(f"k{i}".encode(), b"v") for i in range(5)]
        report = compare_replicas(_ledger(writes), _ledger(writes))
        assert report.consistent
        assert report.common_prefix == 5

    def test_lagging_replica_is_consistent(self):
        writes = [(f"k{i}".encode(), b"v") for i in range(5)]
        report = compare_replicas(_ledger(writes), _ledger(writes[:3]))
        assert report.consistent
        assert report.common_prefix == 3
        assert "behind" in report.detail

    def test_fork_detected_at_first_divergence(self):
        shared = [(f"k{i}".encode(), b"v") for i in range(3)]
        a = _ledger(shared + [(b"x", b"honest")])
        b = _ledger(shared + [(b"x", b"forged")])
        report = compare_replicas(a, b)
        assert not report.consistent
        assert report.fork_height == 3
        assert report.common_prefix == 3

    def test_divergence_propagates_forward(self):
        a = _ledger([(b"a", b"1"), (b"b", b"2")])
        b = _ledger([(b"a", b"other"), (b"b", b"2")])
        report = compare_replicas(a, b)
        assert report.fork_height == 0


class TestAuditLedger:
    def test_clean_ledger(self):
        ledger = _ledger([(f"k{i}".encode(), b"v") for i in range(10)])
        assert audit_ledger(ledger) == []

    def test_detects_rewritten_block(self):
        ledger = _ledger([(f"k{i}".encode(), b"v") for i in range(5)])
        block = ledger._blocks[2]
        ledger._blocks[2] = dataclasses.replace(
            block, writes_digest=ledger._blocks[0].writes_digest
        )
        findings = audit_ledger(ledger)
        assert any("#2" in finding for finding in findings)

    def test_detects_broken_link(self):
        ledger = _ledger([(f"k{i}".encode(), b"v") for i in range(5)])
        block = ledger._blocks[3]
        ledger._blocks[3] = dataclasses.replace(
            block, previous_chain_digest=ledger._blocks[0].chain_digest
        )
        findings = audit_ledger(ledger)
        assert findings


class TestProofBundles:
    def _db(self):
        db = SpitzDatabase()
        for i in range(20):
            db.put(f"k{i:02d}".encode(), f"v{i}".encode())
        return db

    def test_bundle_round_trip(self):
        db = self._db()
        bundle = make_bundle(db.ledger, b"k\x00" + b"", "probe")
        # Use a real ledger key.
        bundle = make_bundle(db.ledger, b"k\x00k05", "k05 evidence")
        blob = bundle.serialize()
        restored = ProofBundle.deserialize(blob)
        ok, message = verify_bundle(restored)
        assert ok, message

    def test_bundle_pinned_to_trusted_digest(self):
        db = self._db()
        bundle = make_bundle(db.ledger, b"k\x00k05")
        ok, _ = verify_bundle(bundle, trusted=db.digest())
        assert ok
        db.put(b"later", b"write")
        ok, message = verify_bundle(bundle, trusted=db.digest())
        assert not ok
        assert "digest" in message

    def test_tampered_bundle_rejected(self):
        db = self._db()
        bundle = make_bundle(db.ledger, b"k\x00k05")
        from repro.core.proofs import LedgerProof
        from repro.indexes.siri import SiriProof

        forged_proof = LedgerProof(
            siri=SiriProof(
                key=bundle.proof.siri.key,
                value=b"forged",
                nodes=bundle.proof.siri.nodes,
            ),
            block=bundle.proof.block,
        )
        forged = dataclasses.replace(bundle, proof=forged_proof)
        ok, message = verify_bundle(forged)
        assert not ok

    def test_deserialize_garbage_rejected(self):
        import pickle

        with pytest.raises(Exception):
            ProofBundle.deserialize(b"not a pickle")
        with pytest.raises(VerificationError):
            ProofBundle.deserialize(pickle.dumps({"not": "a bundle"}))
