"""Tests for the error hierarchy and less-travelled database modes."""

import pytest

from repro import errors
from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.core.schema import KV_PREFIX


class TestErrorHierarchy:
    def test_everything_is_a_spitz_error(self):
        leaf_errors = [
            errors.ChunkNotFoundError("aa"),
            errors.BranchNotFoundError("b"),
            errors.CommitNotFoundError("c"),
            errors.KeyNotFoundError("k"),
            errors.TransactionAborted(1, "why"),
            errors.DeadlockError(2),
            errors.TwoPhaseCommitError("x"),
            errors.VerificationError("v"),
            errors.ProofError("p"),
            errors.TamperDetectedError("t"),
            errors.SqlSyntaxError("sql", 3, "msg"),
            errors.SchemaError("s"),
            errors.NetworkError("n"),
        ]
        for error in leaf_errors:
            assert isinstance(error, errors.SpitzError)

    def test_tamper_is_verification_error(self):
        assert issubclass(
            errors.TamperDetectedError, errors.VerificationError
        )

    def test_deadlock_is_abort(self):
        error = errors.DeadlockError(7)
        assert isinstance(error, errors.TransactionAborted)
        assert error.txn_id == 7

    def test_sql_error_carries_position(self):
        error = errors.SqlSyntaxError("SELECT", 3, "boom")
        assert error.position == 3
        assert "offset 3" in str(error)

    def test_key_not_found_carries_key(self):
        assert errors.KeyNotFoundError(b"k").key == b"k"


class TestLedgerOnlyMode:
    """Section 5.1: Spitz "can be applied into a non-intrusive design
    ... by solely waking up the auditor" — ledger-only mode."""

    def test_ledger_records_without_storage_layer(self):
        db = SpitzDatabase(ledger_only=True)
        db.put(b"k", b"v")
        # The ledger has the entry...
        assert db.ledger.get(KV_PREFIX + b"k") == b"v"
        # ...but the storage layer (cells, primary index) was skipped.
        assert len(db.cells) == 0
        assert db.get(b"k") is None

    def test_proofs_still_issued(self):
        db = SpitzDatabase(ledger_only=True)
        db.put(b"k", b"v")
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        value, proof = db.ledger.get_with_proof(KV_PREFIX + b"k")
        assert value == b"v"
        assert verifier.verify(proof)

    def test_chain_audit_works(self):
        db = SpitzDatabase(ledger_only=True)
        for i in range(10):
            db.put(f"k{i}".encode(), b"v")
        assert db.verify_chain()


class TestDatabaseEdgeCases:
    def test_empty_scan(self, db):
        assert db.scan(b"a", b"z") == []

    def test_history_of_unknown_key(self, db):
        assert db.history(b"ghost") == []

    def test_overwrite_same_value_changes_digest(self, db):
        db.put(b"k", b"v")
        first = db.digest()
        db.put(b"k", b"v")  # same value again: still a new block
        assert db.digest().height == first.height + 1

    def test_delete_unknown_key_is_recorded(self, db):
        block = db.delete(b"never-existed")
        assert block.write_count == 1
        assert db.get(b"never-existed") is None

    def test_binary_keys_and_values(self, db):
        key = bytes(range(1, 64))
        value = bytes(range(255, 0, -1))
        db.put(key, value)
        assert db.get(key) == value
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        got, proof = db.get_verified(key)
        assert got == value
        assert verifier.verify(proof)

    def test_large_value_storage_accounting(self, db):
        """The cell store deduplicates raw value bytes across keys;
        the ledger's unified index, however, inlines values in its
        leaves, so rewriting a leaf re-stores its resident values and
        the superseded leaf stays readable for history.  With two
        50 KB values landing in one leaf that is one new 100 KB leaf
        and zero new cell-store bytes — a documented trade-off of
        putting values inside the proof path (fine for the paper's
        20-byte cells; large blobs belong in the cell store with only
        their universal-key hash in the ledger)."""
        payload = b"X" * 50_000
        db.put(b"a", payload)
        cell_bytes_before = db.cells._chunks.stats.logical_bytes
        before = db.chunks.stats.physical_bytes
        db.put(b"b", payload)
        added = db.chunks.stats.physical_bytes - before
        assert 90_000 < added < 110_000  # new 2-entry leaf, old leaf kept
        # The raw value itself deduplicated (no new unique value chunk).
        from repro.crypto.hashing import hash_bytes

        assert db.chunks.refcount(hash_bytes(payload)) >= 2
