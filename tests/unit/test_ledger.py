"""Unit tests for the Spitz ledger."""

import dataclasses

import pytest

from repro.errors import CommitNotFoundError
from repro.indexes.siri import DELETE
from repro.core.ledger import SpitzLedger


class TestLedgerBlocks:
    def test_empty_ledger(self):
        ledger = SpitzLedger()
        assert ledger.height == 0
        assert ledger.latest_block() is None
        assert ledger.get(b"k") is None

    def test_append_block(self):
        ledger = SpitzLedger()
        block = ledger.append_block({b"k": b"v"}, statements=("PUT k",))
        assert block.height == 0
        assert block.write_count == 1
        assert ledger.get(b"k") == b"v"

    def test_chain_links(self):
        ledger = SpitzLedger()
        first = ledger.append_block({b"a": b"1"})
        second = ledger.append_block({b"b": b"2"})
        assert second.previous_chain_digest == first.chain_digest

    def test_block_lookup(self):
        ledger = SpitzLedger()
        ledger.append_block({b"a": b"1"})
        assert ledger.block(0).height == 0
        with pytest.raises(CommitNotFoundError):
            ledger.block(5)

    def test_delete_in_block(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"})
        ledger.append_block({b"k": DELETE})
        assert ledger.get(b"k") is None
        assert ledger.get_at(b"k", 0) == b"v"

    def test_digest_reflects_state(self):
        ledger = SpitzLedger()
        ledger.append_block({b"a": b"1"})
        first = ledger.digest()
        ledger.append_block({b"b": b"2"})
        second = ledger.digest()
        assert first.chain_digest != second.chain_digest
        assert first.tree_root != second.tree_root
        assert second.height == 2

    def test_statements_affect_block_digest(self):
        one = SpitzLedger()
        other = SpitzLedger()
        a = one.append_block({b"k": b"v"}, statements=("stmt-1",))
        b = other.append_block({b"k": b"v"}, statements=("stmt-2",))
        assert a.tree_root == b.tree_root  # same data
        assert a.chain_digest != b.chain_digest  # different provenance


class TestLedgerProofs:
    def test_point_proof(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"})
        value, proof = ledger.get_with_proof(b"k")
        assert value == b"v"
        assert proof.verify(ledger.digest().chain_digest)

    def test_proof_on_empty_ledger_raises(self):
        with pytest.raises(CommitNotFoundError):
            SpitzLedger().get_with_proof(b"k")

    def test_range_proof(self):
        ledger = SpitzLedger()
        ledger.append_block(
            {f"k{i:02d}".encode(): str(i).encode() for i in range(30)}
        )
        entries, proof = ledger.scan_with_proof(b"k05", b"k14")
        assert len(entries) == 10
        assert proof.verify(ledger.digest().chain_digest)

    def test_historical_proof_binds_to_its_block(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v1"})
        ledger.append_block({b"k": b"v2"})
        value, proof = ledger.get_at_with_proof(b"k", 0)
        assert value == b"v1"
        assert proof.verify(ledger.block(0).chain_digest)
        assert not proof.verify(ledger.digest().chain_digest)

    def test_forged_block_witness_rejected(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"})
        _value, proof = ledger.get_with_proof(b"k")
        forged_block = dataclasses.replace(proof.block, height=99)
        forged = dataclasses.replace(proof, block=forged_block)
        assert not forged.verify(ledger.digest().chain_digest)


class TestLedgerHistory:
    def test_tree_instances_per_block(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v1"})
        ledger.append_block({b"k": b"v2"})
        assert ledger.tree_at(0).get(b"k") == b"v1"
        assert ledger.tree_at(1).get(b"k") == b"v2"
        with pytest.raises(CommitNotFoundError):
            ledger.tree_at(7)

    def test_key_history(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v1"})
        ledger.append_block({b"other": b"x"})
        ledger.append_block({b"k": b"v2"})
        ledger.append_block({b"k": DELETE})
        history = ledger.key_history(b"k")
        assert history == [(0, b"v1"), (2, b"v2"), (3, None)]

    def test_key_history_of_absent_key_is_empty(self):
        """Regression: a never-written key used to report a phantom
        ``(0, None)`` change at the first block."""
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v1"})
        ledger.append_block({b"k": b"v2"})
        assert ledger.key_history(b"never-written") == []

    def test_key_history_starts_at_first_write(self):
        ledger = SpitzLedger()
        ledger.append_block({b"other": b"x"})
        ledger.append_block({b"other": b"y"})
        ledger.append_block({b"k": b"v"})
        assert ledger.key_history(b"k") == [(2, b"v")]

    def test_instances_share_nodes(self):
        ledger = SpitzLedger()
        ledger.append_block(
            {f"k{i:03d}".encode(): b"v" for i in range(500)}
        )
        before = ledger.chunks.stats.unique_chunks
        ledger.append_block({b"k000": b"changed"})
        added = ledger.chunks.stats.unique_chunks - before
        assert added < 12  # one path, not a new tree

    def test_verify_chain_accepts_honest_history(self):
        ledger = SpitzLedger()
        for i in range(10):
            ledger.append_block({f"k{i}".encode(): b"v"})
        assert ledger.verify_chain()

    def test_verify_chain_detects_rewritten_block(self):
        ledger = SpitzLedger()
        for i in range(5):
            ledger.append_block({f"k{i}".encode(): b"v"})
        tampered = dataclasses.replace(
            ledger._blocks[2], writes_digest=ledger._blocks[3].writes_digest
        )
        ledger._blocks[2] = tampered
        assert not ledger.verify_chain()

    def test_storage_report(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"})
        report = ledger.storage_report()
        assert report["blocks"] == 1
        assert report["physical_bytes"] > 0
