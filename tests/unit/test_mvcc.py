"""Unit tests for the MVCC version store."""

import pytest

from repro.txn.mvcc import MVCCStore, Version


class TestMvccStore:
    def test_read_missing(self):
        assert MVCCStore().read("k", 100) is None

    def test_snapshot_reads(self):
        store = MVCCStore()
        store.install({"k": "v1"}, commit_ts=10, txn_id=1)
        store.install({"k": "v2"}, commit_ts=20, txn_id=2)
        assert store.read("k", 5) is None
        assert store.read("k", 10).value == "v1"
        assert store.read("k", 15).value == "v1"
        assert store.read("k", 20).value == "v2"
        assert store.read("k", 99).value == "v2"

    def test_read_latest(self):
        store = MVCCStore()
        store.install({"k": "a"}, 1, 1)
        store.install({"k": "b"}, 2, 2)
        assert store.read_latest("k").value == "b"

    def test_latest_commit_ts(self):
        store = MVCCStore()
        assert store.latest_commit_ts("k") == 0
        store.install({"k": "v"}, 7, 1)
        assert store.latest_commit_ts("k") == 7

    def test_out_of_order_install_rejected(self):
        store = MVCCStore()
        store.install({"k": "v"}, 10, 1)
        with pytest.raises(ValueError):
            store.install({"k": "w"}, 10, 2)
        with pytest.raises(ValueError):
            store.install({"k": "w"}, 5, 3)

    def test_atomic_multi_key_install(self):
        store = MVCCStore()
        store.install({"a": 1, "b": 2}, 5, 1)
        assert store.read("a", 5).value == 1
        assert store.read("b", 5).value == 2

    def test_history(self):
        store = MVCCStore()
        for ts, value in [(1, "a"), (2, "b"), (3, "c")]:
            store.install({"k": value}, ts, ts)
        assert [v.value for v in store.history("k")] == ["a", "b", "c"]

    def test_tombstone(self):
        store = MVCCStore()
        store.install({"k": "v"}, 1, 1)
        store.delete("k", 2, 2)
        version = store.read("k", 2)
        assert version.is_tombstone
        assert not store.read("k", 1).is_tombstone

    def test_snapshot_items_excludes_tombstones(self):
        store = MVCCStore()
        store.install({"a": 1, "b": 2}, 1, 1)
        store.delete("a", 2, 2)
        assert list(store.snapshot_items(1)) == [("a", 1), ("b", 2)]
        assert list(store.snapshot_items(2)) == [("b", 2)]

    def test_version_count(self):
        store = MVCCStore()
        store.install({"a": 1}, 1, 1)
        store.install({"a": 2, "b": 1}, 2, 2)
        assert store.version_count() == 3
        assert len(store) == 2
