"""Windowed time-series over the registry: rates, percentiles,
retention, and the telemetry plane's manual/auto modes.

Everything here drives ``tick()`` with an injected fake clock — no
sleeps, every window edge deterministic (the same pattern as the
token-bucket tests)."""

import pytest

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
from repro.obs.timeseries import TelemetryPlane, TimeSeries


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def rig():
    registry = MetricsRegistry()
    clock = FakeClock()
    ts = TimeSeries(registry, slot_seconds=1.0, retention_slots=10,
                    clock=clock)
    return registry, clock, ts


class TestTimeSeries:
    def test_first_tick_is_baseline_only(self, rig):
        registry, clock, ts = rig
        registry.counter("ops").inc(5)
        ts.tick()
        assert ts.ticks == 0
        assert ts.rate("ops", 60.0) == 0.0

    def test_rate_is_delta_over_elapsed(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        ts.tick()
        ops.inc(30)
        clock.advance(2.0)
        ts.tick()
        assert ts.rate("ops", 60.0) == pytest.approx(15.0)
        assert ts.count("ops", 60.0) == 30

    def test_rate_covers_only_the_window(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        ts.tick()
        ops.inc(100)
        clock.advance(1.0)
        ts.tick()  # slot sealed at t+1 holds 100 increments
        clock.advance(1.0)
        ts.tick()  # empty slot at t+2
        # A 0.5s window reaches only the empty slot (sealed at t+2);
        # the busy slot's right edge (t+1) is outside: rate is 0.
        assert ts.rate("ops", 0.5) == 0.0
        # A 3s window covers both slots: 100 ops over 2 seconds.
        assert ts.rate("ops", 3.0) == pytest.approx(50.0)

    def test_zero_elapsed_tick_is_ignored(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        ts.tick()
        ops.inc(10)
        ts.tick()  # clock did not move: no slot may be sealed
        assert ts.ticks == 0
        clock.advance(1.0)
        ts.tick()
        assert ts.count("ops", 60.0) == 10

    def test_retention_drops_oldest_slots(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        ts.tick()
        for _ in range(15):  # retention is 10 slots
            ops.inc(1)
            clock.advance(1.0)
            ts.tick()
        # Only the 10 retained slots can answer, regardless of window.
        assert ts.count("ops", 1000.0) == 10

    def test_window_drains_as_the_clock_advances(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        ts.tick()
        ops.inc(50)
        clock.advance(1.0)
        ts.tick()
        assert ts.count("ops", 5.0) == 50
        clock.advance(10.0)  # no further ticks needed: queries re-read
        assert ts.count("ops", 5.0) == 0

    def test_windowed_percentile_matches_fresh_histogram(self, rig):
        registry, clock, ts = rig
        hist = registry.histogram("lat")
        ts.tick()
        values = [0.001 * (i + 1) for i in range(100)]
        for value in values:
            hist.observe(value)
        clock.advance(1.0)
        ts.tick()
        # A from-scratch histogram over the same observations must give
        # the same bucketed estimate (both use BUCKET_BOUNDS ranks).
        fresh = MetricsRegistry().histogram("lat")
        for value in values:
            fresh.observe(value)
        windowed = ts.percentile("lat", 0.99, 60.0)
        exact_rank = fresh.percentile(0.99)
        # The windowed estimate is the pure bucket bound; the registry
        # clamps to observed max — same bucket, so within one geometric
        # step (2**0.25) of each other.
        assert windowed is not None
        assert exact_rank <= windowed <= exact_rank * 2 ** 0.25 + 1e-12

    def test_percentile_none_when_window_empty(self, rig):
        registry, clock, ts = rig
        registry.histogram("lat").observe(0.5)
        ts.tick()
        assert ts.percentile("lat", 0.99, 60.0) is None

    def test_only_changed_counters_stored(self, rig):
        registry, clock, ts = rig
        ops = registry.counter("ops")
        idle = registry.counter("idle")
        assert idle.value == 0
        ts.tick()
        ops.inc()
        clock.advance(1.0)
        ts.tick()
        rates = ts.rates(60.0)
        assert "ops" in rates
        assert "idle" not in rates

    def test_snapshot_shape(self, rig):
        registry, clock, ts = rig
        registry.counter("ops").inc()  # pre-baseline, not in any slot
        ts.tick()
        registry.counter("ops").inc(9)
        registry.histogram("lat").observe(0.01)
        clock.advance(1.0)
        ts.tick()
        snap = ts.snapshot(windows=(5.0,))
        view = snap["windows"]["5s"]
        assert view["rates"]["ops"] == pytest.approx(9.0)
        assert view["histograms"]["lat"]["count"] == 1
        assert view["histograms"]["lat"]["p99"] in BUCKET_BOUNDS

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeries(registry, slot_seconds=0)
        with pytest.raises(ValueError):
            TimeSeries(registry, retention_slots=0)


class TestTelemetryPlane:
    def test_injected_clock_means_manual_mode(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        plane = TelemetryPlane(registry, clock=clock)
        assert plane.manual
        plane.start()  # must not spawn a ticker thread
        assert plane._thread is None
        plane.stop()

    def test_tick_counts_and_evaluates(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        plane = TelemetryPlane(registry, clock=clock)
        plane.tick()
        clock.advance(1.0)
        plane.tick()
        assert registry.counter("telemetry.ticks").value == 2
        snap = plane.slo_snapshot()
        assert snap["ok"] is True
        assert snap["objectives"]  # default objectives evaluated

    def test_background_ticker_really_ticks(self):
        registry = MetricsRegistry()
        plane = TelemetryPlane(registry, slot_seconds=0.01)
        assert not plane.manual
        plane.start()
        try:
            import time

            deadline = time.monotonic() + 2.0
            while (
                registry.counter("telemetry.ticks").value < 3
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        finally:
            plane.stop()
        assert registry.counter("telemetry.ticks").value >= 3
        assert plane._thread is None
