"""Unit tests for ledger statements and provenance queries."""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.ledger import SpitzLedger
from repro.core.provenance import (
    ProvenanceEntry,
    blocks_touching,
    key_provenance,
    verify_statements,
)
from repro.errors import CommitNotFoundError
from repro.indexes.siri import DELETE


class TestLedgerStatements:
    def test_statements_retained(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"}, statements=("PUT k",))
        assert ledger.statements(0) == ("PUT k",)

    def test_out_of_range(self):
        with pytest.raises(CommitNotFoundError):
            SpitzLedger().statements(0)

    def test_statements_verify_against_headers(self):
        ledger = SpitzLedger()
        for i in range(5):
            ledger.append_block(
                {f"k{i}".encode(): b"v"}, statements=(f"stmt-{i}",)
            )
        assert verify_statements(ledger) == []

    def test_tampered_statements_detected(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v"}, statements=("honest",))
        ledger._statements[0] = ("rewritten",)
        assert verify_statements(ledger) == [0]


class TestProvenance:
    def _ledger(self):
        ledger = SpitzLedger()
        ledger.append_block({b"k": b"v1"}, statements=("INSERT k",))
        ledger.append_block({b"other": b"x"}, statements=("INSERT other",))
        ledger.append_block({b"k": b"v2"}, statements=("UPDATE k",))
        ledger.append_block({b"k": DELETE}, statements=("DELETE k",))
        return ledger

    def test_blocks_touching(self):
        assert blocks_touching(self._ledger(), b"k") == [0, 2, 3]

    def test_blocks_touching_untouched_key(self):
        assert blocks_touching(self._ledger(), b"ghost") == []

    def test_key_provenance_values_and_statements(self):
        lineage = key_provenance(self._ledger(), b"k")
        assert [entry.value for entry in lineage] == [b"v1", b"v2", None]
        assert [entry.statements for entry in lineage] == [
            ("INSERT k",), ("UPDATE k",), ("DELETE k",),
        ]

    def test_provenance_through_database_sql(self):
        db = SpitzDatabase()
        db.sql("CREATE TABLE t (id INT, v STR, PRIMARY KEY (id))")
        db.sql("INSERT INTO t (id, v) VALUES (1, 'a')")
        db.sql("UPDATE t SET v = 'b' WHERE id = 1")
        schema = db.table("t")
        key = schema.logical_key("v", schema.pk_bytes(1))
        lineage = key_provenance(db.ledger, key)
        assert len(lineage) == 2
        assert "INSERT INTO t" in lineage[0].statements[0]
        assert "UPDATE t" in lineage[1].statements[0]

    def test_provenance_entry_is_value_object(self):
        entry = ProvenanceEntry(height=1, value=b"v", statements=("s",))
        assert entry == ProvenanceEntry(
            height=1, value=b"v", statements=("s",)
        )
