"""Sharded proofs across the service plane.

The wire codec must frame sharded digests and proofs so a remote
client decodes objects that still verify; the cluster/request-handler
path must serve them; and the full HTTP loop must round-trip a
verified sharded read end to end.
"""

import json

import pytest

from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.core.verifier import ClientVerifier
from repro.serve.codec import (
    WireCodecError,
    decode_response,
    decode_value,
    encode_response,
    encode_value,
)
from repro.shard import ShardedDatabase, ShardedDigest, ShardedProof


def _loaded(num_shards=4, writes=24):
    db = ShardedDatabase(num_shards=num_shards)
    for i in range(writes):
        db.put(b"wk%02d" % i, b"wv%02d" % i)
    return db


def _json_roundtrip(frame):
    """Force a real serialization: whatever survives json does."""
    return json.loads(json.dumps(frame))


class TestShardedCodec:
    def test_sharded_digest_roundtrip(self):
        digest = _loaded().digest()
        decoded = decode_value(_json_roundtrip(encode_value(digest)))
        assert isinstance(decoded, ShardedDigest)
        assert decoded == digest

    def test_point_proof_roundtrip_still_verifies(self):
        db = _loaded()
        value, proof = db.get_verified(b"wk05")
        decoded = decode_value(_json_roundtrip(encode_value(proof)))
        assert isinstance(decoded, ShardedProof)
        assert decoded.value == value
        assert decoded.digest == proof.digest
        assert decoded.size_bytes == proof.size_bytes
        verifier = ClientVerifier()
        verifier.trust(decoded.digest)
        assert verifier.verify(decoded)

    def test_multi_proof_roundtrip_still_verifies(self):
        db = _loaded()
        keys = [b"wk02", b"missing", b"wk19"]
        values, proof = db.get_many_verified(keys)
        decoded = decode_value(_json_roundtrip(encode_value(proof)))
        assert [v for _, v in decoded.entries()] == values
        verifier = ClientVerifier()
        verifier.trust(decoded.digest)
        assert verifier.verify(decoded)

    def test_response_envelope_carries_sharded_digest(self):
        db = _loaded()
        value, proof = db.get_verified(b"wk05")
        from repro.core.request_handler import Response

        frame = _json_roundtrip(
            encode_response(
                Response(
                    ok=True, result=value, proof=proof, digest=proof.digest
                )
            )
        )
        response = decode_response(frame)
        assert isinstance(response.digest, ShardedDigest)
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        assert verifier.verify(response.proof)

    def test_tampered_wire_value_fails_verification(self):
        db = _loaded()
        _value, proof = db.get_verified(b"wk05")
        frame = encode_value(proof)
        # A man-in-the-middle swaps the served value bytes.
        import base64

        frame["$sharded_proof"]["inner"]["siri"]["value"] = (
            base64.b64encode(b"evil").decode()
        )
        decoded = decode_value(_json_roundtrip(frame))
        verifier = ClientVerifier()
        verifier.trust(decoded.digest)
        assert not verifier.verify(decoded)

    def test_malformed_frames_raise_codec_errors(self):
        with pytest.raises(WireCodecError):
            decode_value({"$sharded_digest": {"num_shards": 1}})
        with pytest.raises(WireCodecError):
            decode_value({"$sharded_proof": {"inner": {}}})
        with pytest.raises(WireCodecError):
            decode_value(
                {"$sharded_digest": {
                    "num_shards": 2, "height": 3, "root": "zz"
                }}
            )


class TestShardedCluster:
    def test_cluster_serves_verified_sharded_reads(self):
        cluster = SpitzCluster(nodes=2, shards=4)
        cluster.start()
        try:
            for i in range(16):
                response = cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": b"ck%02d" % i, "value": b"cv%02d" % i},
                    )
                )
                assert response.ok, response.error
            response = cluster.submit(
                Request(
                    RequestKind.GET, {"key": b"ck09"}, verify=True
                )
            )
            assert response.ok
            assert isinstance(response.digest, ShardedDigest)
            verifier = ClientVerifier()
            verifier.trust(response.digest)
            assert verifier.verify(response.proof)
            assert response.proof.value == b"cv09"
        finally:
            cluster.stop()

    def test_served_proof_and_digest_stay_in_sync(self):
        """The handler serves the digest the proof was built against,
        not a re-derived one that a concurrent write could tear."""
        cluster = SpitzCluster(nodes=1, shards=2)
        cluster.start()
        try:
            cluster.submit(
                Request(RequestKind.PUT, {"key": b"sync", "value": b"v"})
            )
            response = cluster.submit(
                Request(RequestKind.GET, {"key": b"sync"}, verify=True)
            )
            assert response.digest == response.proof.digest
        finally:
            cluster.stop()


class TestShardedHttp:
    def test_http_end_to_end_verified_read(self):
        from repro.serve.client import HttpClusterClient
        from repro.serve.server import serve_cluster

        service = serve_cluster(nodes=2, port=0, shards=4)
        try:
            host, port = service.address.rsplit(":", 1)
            with HttpClusterClient(host, int(port)) as client:
                for i in range(12):
                    client.put(b"hk%d" % i, b"hv%d" % i)
                response = client.get(b"hk7", verify=True)
                assert response.ok, response.error
                verifier = ClientVerifier()
                verifier.trust(response.digest)
                assert verifier.verify(response.proof)
                assert response.proof.value == b"hv7"
                batch = client.get_many(
                    [b"hk1", b"hk5", b"gone"], verify=True
                )
                assert batch.ok, batch.error
                verifier.observe(batch.digest)
                verifier.verify_or_raise(batch.proof)
                assert [v for _, v in batch.proof.entries()] == [
                    b"hv1", b"hv5", None,
                ]
        finally:
            service.stop()
