"""Unit tests for the per-client token bucket (``repro.serve.ratelimit``).

The clock is injected everywhere, so refill is driven explicitly —
no sleeps, no flakiness — and the concurrency property is checked
*exactly*: with the clock frozen, N threads hammering one bucket can
admit precisely ``burst`` requests, never one more.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_admits_exactly_burst_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        outcomes = [bucket.try_acquire()[0] for _ in range(5)]
        assert outcomes == [True, True, True, False, False]

    def test_retry_after_is_the_exact_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == (True, 0.0)
        admitted, retry_after = bucket.try_acquire()
        assert not admitted
        # One token short, refilling at 4/s: exactly 0.25s away.
        assert retry_after == pytest.approx(0.25)
        # And the suggestion is honest: advancing exactly that far
        # makes the next acquire succeed.
        clock.advance(retry_after)
        assert bucket.try_acquire() == (True, 0.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(60.0)  # an hour of idle refill changes nothing
        admitted = [bucket.try_acquire()[0] for _ in range(3)]
        assert admitted == [True, True, False]

    def test_partial_refill_accumulates(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()[0]
        clock.advance(0.25)  # half a token: still short
        assert not bucket.try_acquire()[0]
        clock.advance(0.25)  # the other half
        assert bucket.try_acquire()[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)

    def test_no_over_admission_under_concurrency(self):
        # The satellite property: with the clock frozen there is no
        # refill, so across any interleaving of 16 threads x 50
        # attempts, exactly `burst` acquires may succeed.  A lost
        # update in the lazy-refill path would show up here as > burst.
        clock = FakeClock()
        burst = 25
        bucket = TokenBucket(rate=1.0, burst=float(burst), clock=clock)
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def hammer():
            barrier.wait()
            local = 0
            for _ in range(50):
                if bucket.try_acquire()[0]:
                    local += 1
            with lock:
                admitted.append(local)

        threads = [threading.Thread(target=hammer) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(admitted) == burst
        assert bucket.tokens == 0.0

    def test_concurrent_refill_never_exceeds_budget(self):
        # With the clock advanced mid-flight the exact-once bound
        # becomes burst + elapsed * rate; admission must never pass it.
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def hammer(worker: int):
            barrier.wait()
            local = 0
            for i in range(40):
                if worker == 0 and i == 20:
                    clock.advance(1.0)  # 10 more tokens, once
                if bucket.try_acquire()[0]:
                    local += 1
            with lock:
                admitted.append(local)

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(admitted) <= 5 + 10


class TestRateLimiter:
    def test_disabled_limiter_admits_everything(self):
        limiter = RateLimiter(rate=None)
        for _ in range(100):
            assert limiter.try_acquire("anyone") == (True, 0.0)
        assert limiter.client_count() == 0

    def test_buckets_are_per_client(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]
        # Bob's bucket is untouched by Alice's spending.
        assert limiter.try_acquire("bob")[0]

    def test_lru_eviction_bounds_client_count(self):
        clock = FakeClock()
        limiter = RateLimiter(
            rate=1.0, burst=1.0, max_clients=2, clock=clock
        )
        assert limiter.try_acquire("a")[0]
        assert limiter.try_acquire("b")[0]
        assert limiter.try_acquire("c")[0]  # evicts "a"
        assert limiter.client_count() == 2
        # "a" returns with a fresh (full) bucket: eviction errs toward
        # admitting, never toward starving.
        assert limiter.try_acquire("a")[0]

    def test_metrics_counters_track_outcomes(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        limiter = RateLimiter(
            rate=1.0, burst=2.0, clock=clock, metrics=registry
        )
        for _ in range(5):
            limiter.try_acquire("alice")
        counters = registry.snapshot()["counters"]
        assert counters["serve.ratelimit.admitted"] == 2
        assert counters["serve.ratelimit.limited"] == 3

    def test_default_burst_follows_rate(self):
        limiter = RateLimiter(rate=50.0, clock=FakeClock())
        assert limiter.burst == 50.0
        assert RateLimiter(rate=0.5, clock=FakeClock()).burst == 1.0
