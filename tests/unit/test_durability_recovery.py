"""Crash-recovery suite: checkpoint + replay + audit, fault injection,
the durable CLI surface and the durable cluster mode."""

import pytest

from repro import cli
from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind
from repro.durability import (
    DurableDatabase,
    latest_checkpoint,
    list_checkpoints,
    recover,
)
from repro.durability.crashsim import (
    CrashyIO,
    flip_byte,
    truncate_wal_stream,
    wal_stream_length,
)
from repro.durability.wal import list_segments
from repro.errors import SpitzError, TamperDetectedError


def _populate(ddb):
    ddb.put(b"alpha", b"1")
    ddb.put(b"beta", b"2")
    ddb.sql("CREATE TABLE t (id INT, v STR, PRIMARY KEY (id))")
    ddb.sql("INSERT INTO t (id, v) VALUES (1, 'one')")
    with ddb.transaction() as txn:
        txn.put(b"gamma", b"3")
    ddb.delete(b"beta")


class TestRecoveryRoundTrip:
    def test_digest_identical_after_replay(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
            digest = ddb.digest()
        with DurableDatabase.open(tmp_path) as restored:
            assert restored.digest() == digest
            assert restored.get(b"alpha") == b"1"
            assert restored.get(b"beta") is None
            assert restored.get(b"gamma") == b"3"
            assert restored.sql("SELECT v FROM t WHERE id = 1") == [
                {"v": "one"}
            ]
            assert restored.verify_chain()

    def test_recovered_db_accepts_fresh_writes(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
        with DurableDatabase.open(tmp_path) as restored:
            restored.put(b"delta", b"4")
            with restored.transaction() as txn:
                txn.put(b"epsilon", b"5")
        with DurableDatabase.open(tmp_path) as again:
            assert again.get(b"delta") == b"4"
            assert again.get(b"epsilon") == b"5"
            assert again.verify_chain()

    def test_timestamps_advance_past_replayed(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
            before = ddb.oracle.current()
        with DurableDatabase.open(tmp_path) as restored:
            assert restored.oracle.current() >= before
            restored.put(b"new", b"x")  # must not collide
            assert restored.history(b"new")

    def test_report_describes_replay(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            ddb.put(b"k", b"v")
        report = recover(tmp_path)
        assert report.replayed == 1
        assert report.checkpoint_path is None
        assert "replayed 1 record" in report.describe()


class TestCheckpoints:
    def test_checkpoint_bounds_replay_and_truncates(self, tmp_path):
        with DurableDatabase.open(tmp_path, segment_bytes=512) as ddb:
            for i in range(40):
                ddb.put(b"k%d" % i, b"v%d" % i)
            segments_before = len(list_segments(tmp_path))
            lsn, path = ddb.checkpoint()
            assert path.exists()
            assert len(list_segments(tmp_path)) < segments_before
            ddb.put(b"after", b"ckpt")
        report = recover(tmp_path)
        assert report.checkpoint_lsn == lsn
        assert report.replayed == 1  # only the post-checkpoint put
        assert report.db.get(b"after") == b"ckpt"
        assert report.db.get(b"k7") == b"v7"

    def test_checkpoint_every_commits(self, tmp_path):
        with DurableDatabase.open(tmp_path, checkpoint_every=5) as ddb:
            for i in range(12):
                ddb.put(b"c%d" % i, b"x")
            assert len(list_checkpoints(tmp_path)) >= 2
        report = recover(tmp_path)
        assert report.checkpoint_lsn > 0
        assert report.replayed <= 5

    def test_old_checkpoints_pruned(self, tmp_path):
        with DurableDatabase.open(tmp_path, checkpoint_keep=2) as ddb:
            for i in range(4):
                ddb.put(b"k%d" % i, b"v")
                ddb.checkpoint()
            assert len(list_checkpoints(tmp_path)) <= 3

    def test_tampered_checkpoint_detected(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
            ddb.checkpoint()
        lsn, path = latest_checkpoint(tmp_path)
        flip_byte(path, path.stat().st_size // 2)
        with pytest.raises(TamperDetectedError):
            recover(tmp_path)

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        with DurableDatabase.open(tmp_path, checkpoint_keep=2) as ddb:
            ddb.put(b"a", b"1")
            lsn1, _path1 = ddb.checkpoint()
            ddb.put(b"b", b"2")
            lsn2, path2 = ddb.checkpoint()
            ddb.put(b"c", b"3")
        flip_byte(path2, path2.stat().st_size // 2)
        report = recover(tmp_path)
        # Fell back to the older checkpoint; the WAL it needs for
        # replay was retained, so no committed write is lost.
        assert report.checkpoint_lsn == lsn1
        assert report.skipped_checkpoints == [path2]
        assert "fell back past 1 corrupt checkpoint(s)" in report.describe()
        assert report.db.get(b"a") == b"1"
        assert report.db.get(b"b") == b"2"
        assert report.db.get(b"c") == b"3"
        assert report.db.verify_chain()

    def test_keep_retains_older_checkpoints(self, tmp_path):
        with DurableDatabase.open(tmp_path, checkpoint_keep=2) as ddb:
            for i in range(5):
                ddb.put(b"k%d" % i, b"v")
                ddb.checkpoint()
            # The newest plus `keep` older fallbacks survive pruning.
            assert len(list_checkpoints(tmp_path)) == 3


class TestCrashInjection:
    def test_drop_writes_after_k_recovers_prefix(self, tmp_path):
        io = CrashyIO(drop_after=600)
        ddb = DurableDatabase.open(tmp_path, io=io)
        for i in range(50):
            ddb.put(b"k%02d" % i, b"v%d" % i)
        io.simulate_crash()
        with DurableDatabase.open(tmp_path) as restored:
            state = dict(restored.scan(b"", b"\xff"))
            count = len(state)
            assert 0 < count < 50
            # The surviving keys are exactly the first `count` puts.
            assert state == {
                b"k%02d" % i: b"v%d" % i for i in range(count)
            }
            assert restored.verify_chain()

    def test_skip_fsync_loses_group_commit_window(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            ddb.put(b"durable", b"yes")
        io = CrashyIO(skip_fsync=True)
        ddb = DurableDatabase.open(tmp_path, sync_every=64, io=io)
        for i in range(10):
            ddb.put(b"lost%d" % i, b"v")
        io.simulate_crash()
        with DurableDatabase.open(tmp_path) as restored:
            assert restored.get(b"durable") == b"yes"
            assert restored.get(b"lost3") is None
            assert restored.verify_chain()

    def test_synced_writes_survive_skip_fsync_crash(self, tmp_path):
        io = CrashyIO(skip_fsync=False)
        ddb = DurableDatabase.open(tmp_path, sync_every=1, io=io)
        ddb.put(b"a", b"1")
        ddb.put(b"b", b"2")
        io.simulate_crash()
        with DurableDatabase.open(tmp_path) as restored:
            assert restored.get(b"a") == b"1"
            assert restored.get(b"b") == b"2"

    def test_torn_tail_mid_record(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            for i in range(10):
                ddb.put(b"k%d" % i, b"v")
        truncate_wal_stream(tmp_path, wal_stream_length(tmp_path) - 3)
        with DurableDatabase.open(tmp_path) as restored:
            assert restored.last_recovery.torn_tail_dropped
            assert restored.get(b"k8") == b"v"
            assert restored.get(b"k9") is None
            assert restored.verify_chain()

    def test_wiped_wal_after_checkpoint_detected(self, tmp_path):
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
            ddb.checkpoint()
            ddb.put(b"post", b"1")
        for _index, path in list_segments(tmp_path):
            path.unlink()
        # Deleting the whole WAL must not recover "clean" at the
        # checkpoint — committed post-checkpoint writes existed — and
        # must not let a fresh log restart LSNs below the checkpoint.
        with pytest.raises(TamperDetectedError):
            recover(tmp_path)
        with pytest.raises(TamperDetectedError):
            DurableDatabase.open(tmp_path)

    def test_deleted_leading_wal_segment_detected(self, tmp_path):
        with DurableDatabase.open(tmp_path, segment_bytes=256) as ddb:
            for i in range(10):
                ddb.put(b"a%d" % i, b"v")
            ddb.checkpoint()
            for i in range(30):
                ddb.put(b"b%d" % i, b"v")
        segments = list_segments(tmp_path)
        assert len(segments) >= 2
        # Remove the first post-checkpoint segment: a middle chunk of
        # committed history vanishes, which replay alone cannot see
        # (re-created blocks chain onto the current tip).
        segments[0][1].unlink()
        with pytest.raises(TamperDetectedError):
            recover(tmp_path)

    def test_untruncated_wal_below_checkpoint_tolerated(self, tmp_path):
        from repro.core.persistence import save_database
        from repro.durability.checkpoint import checkpoint_path

        # Simulate a crash between writing a checkpoint and truncating
        # the WAL: the checkpoint exists, the full log remains.
        with DurableDatabase.open(tmp_path) as ddb:
            _populate(ddb)
            ddb.sync()
            lsn = ddb.wal.last_lsn
            save_database(ddb.db, checkpoint_path(tmp_path, lsn))
            ddb.put(b"post", b"1")
        report = recover(tmp_path)
        assert report.checkpoint_lsn == lsn
        assert report.replayed == 1  # pre-checkpoint records skipped
        assert report.db.get(b"post") == b"1"
        assert report.db.verify_chain()

    def test_mid_log_corruption_never_loads_silently(self, tmp_path):
        from repro.durability.wal import SEGMENT_HEADER_SIZE

        with DurableDatabase.open(tmp_path) as ddb:
            for i in range(20):
                ddb.put(b"k%d" % i, b"v%d" % i)
        index, path = list_segments(tmp_path)[0]
        # Corrupt the *payload* of the third record: a checksum
        # failure with valid records after it is tampering, not a
        # torn tail.
        blob = path.read_bytes()
        offset = SEGMENT_HEADER_SIZE
        for _skip in range(2):
            length = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 8 + length
        flip_byte(path, offset + 8 + 2)
        with pytest.raises(TamperDetectedError):
            DurableDatabase.open(tmp_path)


class TestDurableCli:
    def test_init_put_get_checkpoint_recover(self, tmp_path, capsys):
        root = str(tmp_path / "db.d")
        assert cli.main(["init", root, "--durable"]) == 0
        assert cli.main(["put", root, "account:alice", "100"]) == 0
        assert cli.main(["get", root, "account:alice", "--verify"]) == 0
        assert "VERIFIED" in capsys.readouterr().out
        assert cli.main(["checkpoint", root]) == 0
        assert "checkpoint at lsn" in capsys.readouterr().out
        assert cli.main(["put", root, "account:bob", "7"]) == 0
        assert cli.main(["recover", root]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 record" in out and "chain audit clean" in out
        assert cli.main(["audit", root]) == 0

    def test_durable_sql_and_history(self, tmp_path, capsys):
        root = str(tmp_path / "db.d")
        cli.main(["init", root, "--durable"])
        assert cli.main([
            "sql", root, "CREATE TABLE t (id INT, PRIMARY KEY (id))"
        ]) == 0
        assert cli.main(["sql", root, "INSERT INTO t (id) VALUES (7)"]) == 0
        assert cli.main(["sql", root, "SELECT * FROM t"]) == 0
        assert "{'id': 7}" in capsys.readouterr().out

    def test_init_refuses_nonempty_dir(self, tmp_path, capsys):
        root = str(tmp_path / "db.d")
        cli.main(["init", root, "--durable"])
        assert cli.main(["init", root, "--durable"]) == 1
        assert cli.main(["init", root, "--durable", "--force"]) == 0

    def test_checkpoint_requires_durable(self, tmp_path, capsys):
        snap = str(tmp_path / "db.spitz")
        cli.main(["init", snap])
        assert cli.main(["checkpoint", snap]) == 1

    def test_tampered_wal_exits_3(self, tmp_path, capsys):
        root = tmp_path / "db.d"
        cli.main(["init", str(root), "--durable"])
        for i in range(10):
            cli.main(["put", str(root), f"k{i}", "v"])
        index, path = list_segments(root)[0]
        flip_byte(path, path.stat().st_size // 2)
        assert cli.main(["get", str(root), "k1"]) == cli.EXIT_TAMPERED
        assert "TAMPER DETECTED" in capsys.readouterr().err


class TestDurableCluster:
    def test_cluster_commits_survive_restart(self, tmp_path):
        root = str(tmp_path / "cluster.d")
        cluster = SpitzCluster(nodes=2, durable_root=root)
        cluster.start()
        try:
            for i in range(8):
                response = cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": b"ck%d" % i, "value": b"v%d" % i},
                    )
                )
                assert response.ok, response.error
        finally:
            cluster.close()
        revived = SpitzCluster(nodes=1, durable_root=root)
        try:
            assert revived.db.get(b"ck3") == b"v3"
            assert revived.db.verify_chain()
            lsn, _path = revived.checkpoint()
            assert lsn > 0
        finally:
            revived.close()

    def test_stop_alone_releases_wal_for_reopen(self, tmp_path):
        root = str(tmp_path / "cluster.d")
        cluster = SpitzCluster(nodes=1, durable_root=root)
        cluster.start()
        response = cluster.submit(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        assert response.ok, response.error
        cluster.stop()  # stop (without close) must release the handle
        assert cluster.durable.wal._handle is None
        revived = SpitzCluster(nodes=1, durable_root=root)
        try:
            assert revived.db.get(b"k") == b"v"
        finally:
            revived.stop()

    def test_non_durable_cluster_has_no_checkpoint(self):
        cluster = SpitzCluster(nodes=1)
        with pytest.raises(RuntimeError):
            cluster.checkpoint()
        cluster.close()
