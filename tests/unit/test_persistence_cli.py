"""Unit tests for snapshot persistence and the CLI."""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.persistence import load_database, save_database
from repro.core.verifier import ClientVerifier
from repro.errors import StorageError, TamperDetectedError
from repro import cli


@pytest.fixture
def snapshot_path(tmp_path):
    return tmp_path / "db.spitz"


class TestPersistence:
    def _db(self):
        db = SpitzDatabase()
        for i in range(50):
            db.put(f"k{i:02d}".encode(), f"v{i}".encode())
        db.sql("CREATE TABLE t (id INT, v STR, PRIMARY KEY (id))")
        db.sql("INSERT INTO t (id, v) VALUES (1, 'one')")
        return db

    def test_round_trip_preserves_digest(self, snapshot_path):
        db = self._db()
        digest = db.digest()
        save_database(db, snapshot_path)
        restored = load_database(snapshot_path)
        assert restored.digest() == digest

    def test_round_trip_preserves_data_paths(self, snapshot_path):
        db = self._db()
        save_database(db, snapshot_path)
        restored = load_database(snapshot_path)
        assert restored.get(b"k25") == b"v25"
        assert restored.sql("SELECT v FROM t WHERE id = 1") == [{"v": "one"}]
        assert [v for _, v in restored.history(b"k25")] == [b"v25"]

    def test_restored_db_still_verifiable(self, snapshot_path):
        db = self._db()
        save_database(db, snapshot_path)
        restored = load_database(snapshot_path)
        verifier = ClientVerifier()
        verifier.trust(restored.digest())
        value, proof = restored.get_verified(b"k10")
        assert value == b"v10"
        assert verifier.verify(proof)
        assert restored.verify_chain()

    def test_restored_db_accepts_writes(self, snapshot_path):
        db = self._db()
        save_database(db, snapshot_path)
        restored = load_database(snapshot_path)
        restored.put(b"new", b"write")
        with restored.transaction() as txn:
            txn.put(b"txn", b"write")
        assert restored.get(b"txn") == b"write"
        assert restored.verify_chain()

    def test_pending_writes_flushed_by_save(self, snapshot_path):
        db = SpitzDatabase(block_batch=100)
        db.put(b"pending", b"v")
        save_database(db, snapshot_path)
        restored = load_database(snapshot_path)
        assert restored.ledger.height == 1

    def test_bitflip_detected(self, snapshot_path):
        save_database(self._db(), snapshot_path)
        blob = bytearray(snapshot_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        snapshot_path.write_bytes(bytes(blob))
        with pytest.raises(TamperDetectedError):
            load_database(snapshot_path)

    def test_wrong_magic_rejected(self, snapshot_path):
        snapshot_path.write_bytes(b"NOTSPITZ" + b"x" * 64)
        with pytest.raises(StorageError):
            load_database(snapshot_path)


class TestCli:
    def test_init_put_get_verify(self, snapshot_path, capsys):
        path = str(snapshot_path)
        assert cli.main(["init", path]) == 0
        assert cli.main(["put", path, "account:alice", "100"]) == 0
        assert cli.main(["get", path, "account:alice", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out and "100" in out

    def test_init_refuses_overwrite(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        assert cli.main(["init", path]) == 1
        assert cli.main(["init", path, "--force"]) == 0

    def test_get_absent(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        assert cli.main(["get", path, "ghost"]) == 0
        assert "(absent)" in capsys.readouterr().out

    def test_sql_and_scan(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        assert cli.main([
            "sql", path, "CREATE TABLE t (id INT, PRIMARY KEY (id))"
        ]) == 0
        assert cli.main(["sql", path, "INSERT INTO t (id) VALUES (7)"]) == 0
        assert cli.main(["sql", path, "SELECT * FROM t"]) == 0
        out = capsys.readouterr().out
        assert "{'id': 7}" in out and "(1 rows)" in out

    def test_history_and_delete(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        cli.main(["put", path, "k", "v1"])
        cli.main(["put", path, "k", "v2"])
        cli.main(["delete", path, "k"])
        assert cli.main(["get", path, "k"]) == 0
        assert cli.main(["history", path, "k"]) == 0
        out = capsys.readouterr().out
        assert "(absent)" in out
        assert "v1" in out and "v2" in out

    def test_audit_and_digest(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        cli.main(["put", path, "a", "1"])
        assert cli.main(["audit", path]) == 0
        assert cli.main(["digest", path]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "height: 1" in out

    def test_missing_db_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.spitz")
        assert cli.main(["get", missing, "k"]) == 1
        assert "error" in capsys.readouterr().err

    def test_verification_failure_exit_code(self, snapshot_path, capsys):
        # A key that is absent still verifies (absence proof), so to
        # exercise the failure path we check the exit code contract on
        # a healthy read instead and rely on tamper tests elsewhere.
        path = str(snapshot_path)
        cli.main(["init", path])
        cli.main(["put", path, "k", "v"])
        assert cli.main(["get", path, "k", "--verify"]) == 0


class TestCliExitCodes:
    """Tampering is distinguishable from operational failure by exit
    code alone: 1 for ordinary errors, 3 for detected tampering."""

    def test_operational_error_exits_1(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.spitz")
        assert cli.main(["get", missing, "k"]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "TAMPER" not in err

    def test_tampered_snapshot_exits_3(self, snapshot_path, capsys):
        path = str(snapshot_path)
        cli.main(["init", path])
        for i in range(20):
            cli.main(["put", path, f"k{i}", "v"])
        blob = bytearray(snapshot_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        snapshot_path.write_bytes(bytes(blob))
        assert cli.main(["get", path, "k1"]) == cli.EXIT_TAMPERED
        assert "TAMPER DETECTED" in capsys.readouterr().err

    def test_exit_codes_are_distinct(self):
        assert cli.EXIT_TAMPERED == 3
        assert cli.EXIT_TAMPERED != 1
