"""Unit tests for the sharded ledger plane.

Router determinism, the digest-of-digests commitment, the facade's
read/write paths (direct and 2PC), and the tamper matrix: every way a
sharded proof or digest can lie must be caught client-side.
"""

import dataclasses

import pytest

from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.errors import QueryError, TamperDetectedError
from repro.shard import (
    ShardRouter,
    ShardedDatabase,
    digest_of_digests,
    shard_for_key,
)
from repro.shard.digest import memberships_for


def _seed_digests(count, writes=3):
    """Independent single-ledger digests to fold under one root."""
    digests = []
    for shard_id in range(count):
        db = SpitzDatabase()
        for i in range(writes):
            db.put(b"s%d-k%d" % (shard_id, i), b"v%d" % i)
        digests.append(db.digest())
    return digests


class TestRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(4)
        for i in range(200):
            key = b"key-%d" % i
            shard = router.shard_of(key)
            assert 0 <= shard < 4
            assert shard == router.shard_of(key)
            assert shard == shard_for_key(key, 4)

    def test_covers_every_shard(self):
        router = ShardRouter(4)
        hit = {router.shard_of(b"key-%d" % i) for i in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_single_shard_shortcut(self):
        assert all(
            shard_for_key(b"k%d" % i, 1) == 0 for i in range(50)
        )

    def test_split_keys_keeps_positions(self):
        router = ShardRouter(3)
        keys = [b"a", b"b", b"c", b"d"]
        split = router.split_keys(keys)
        flat = sorted(
            (pos, key) for entries in split.values()
            for pos, key in entries
        )
        assert flat == list(enumerate(keys))


class TestDigestOfDigests:
    def test_height_is_sum_and_root_binds_every_shard(self):
        digests = _seed_digests(4)
        top = digest_of_digests(digests)
        assert top.num_shards == 4
        assert top.height == sum(d.height for d in digests)
        # Advancing any single shard changes the root.
        moved = SpitzDatabase()
        moved.put(b"x", b"y")
        swapped = list(digests)
        swapped[2] = moved.digest()
        assert digest_of_digests(swapped).root != top.root

    def test_digest_views_are_the_root(self):
        top = digest_of_digests(_seed_digests(2))
        assert top.chain_digest == top.root
        assert top.tree_root == top.root

    def test_membership_verifies_and_forgeries_fail(self):
        digests = _seed_digests(4)
        top = digest_of_digests(digests)
        (membership,) = memberships_for(digests, [2])
        assert membership.verify(top.root)
        # Claiming the branch proves a different shard id fails.
        relabeled = dataclasses.replace(membership, shard_id=1)
        assert not relabeled.verify(top.root)
        # A forged shard digest under a real branch fails.
        forged = dataclasses.replace(
            membership, shard_digest=_seed_digests(1)[0]
        )
        assert not forged.verify(top.root)


class TestShardedFacade:
    def test_put_get_delete_roundtrip(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(40):
            db.put(b"k%02d" % i, b"v%02d" % i)
        assert db.get(b"k07") == b"v07"
        assert db.get(b"missing") is None
        db.delete(b"k07")
        assert db.get(b"k07") is None
        # Same semantics as the single ledger: history lists live
        # versions, not the tombstone.
        assert [v for _, v in db.history(b"k07")] == [b"v07"]

    def test_single_shard_batch_stays_direct(self):
        db = ShardedDatabase(num_shards=4)
        key = b"solo"
        sibling = b"solo-2"
        # Find a second key on the same shard so the batch is single-
        # shard without being a single-item special case.
        shard = db.shard_of(key)
        i = 0
        while db.shard_of(sibling) != shard:
            i += 1
            sibling = b"solo-%d" % i
        db.put_batch({key: b"1", sibling: b"2"})
        counters = db.metrics_snapshot()["counters"]
        assert counters.get("shard.writes_direct", 0) >= 1
        assert counters.get("shard.writes_2pc", 0) == 0
        assert db.get(key) == b"1"

    def test_cross_shard_batch_commits_atomically_via_2pc(self):
        db = ShardedDatabase(num_shards=4)
        items = {b"batch-%d" % i: b"val-%d" % i for i in range(16)}
        assert len({db.shard_of(k) for k in items}) > 1
        db.put_batch(items)
        for key, value in items.items():
            assert db.get(key) == value
        counters = db.metrics_snapshot()["counters"]
        assert counters.get("shard.writes_2pc", 0) >= 1
        # No stranded prepared branches after a clean commit.
        assert db.recover_participants() == 0

    def test_digest_height_is_monotone(self):
        db = ShardedDatabase(num_shards=2)
        heights = []
        for i in range(10):
            db.put(b"m%d" % i, b"v")
            heights.append(db.digest().height)
        assert heights == sorted(heights)
        assert heights[-1] == 10

    def test_verified_point_read_against_top_digest(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(30):
            db.put(b"p%02d" % i, b"val%02d" % i)
        value, proof = db.get_verified(b"p11")
        assert value == b"val11"
        verifier = ClientVerifier()
        verifier.trust(proof.digest)
        assert verifier.verify(proof)
        # Proven absence rides the same path (no writes in between, so
        # the same pinned digest anchors it).
        none_value, absence = db.get_verified(b"nope")
        assert none_value is None
        assert absence.digest == proof.digest
        assert verifier.verify(absence)

    def test_verified_multi_read_spans_shards_in_order(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(30):
            db.put(b"mm%02d" % i, b"val%02d" % i)
        keys = [b"mm03", b"absent", b"mm17", b"mm28"]
        values, proof = db.get_many_verified(keys)
        assert values == [b"val03", None, b"val17", b"val28"]
        assert len(proof.parts) >= 2
        verifier = ClientVerifier()
        verifier.trust(proof.digest)
        assert verifier.verify(proof)
        assert [v for _, v in proof.entries()] == values

    def test_tampered_value_fails_verification(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(20):
            db.put(b"t%02d" % i, b"v%02d" % i)
        _value, proof = db.get_verified(b"t05")
        verifier = ClientVerifier()
        verifier.trust(proof.digest)
        forged_inner = dataclasses.replace(
            proof.inner,
            siri=dataclasses.replace(proof.inner.siri, value=b"evil"),
        )
        forged = dataclasses.replace(proof, inner=forged_inner)
        with pytest.raises(TamperDetectedError):
            verifier.verify_or_raise(forged)

    def test_membership_swap_fails_verification(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(20):
            db.put(b"s%02d" % i, b"v%02d" % i)
        _value, proof = db.get_verified(b"s05")
        relabeled = dataclasses.replace(
            proof,
            membership=dataclasses.replace(
                proof.membership,
                shard_id=(proof.membership.shard_id + 1) % 4,
            ),
        )
        verifier = ClientVerifier()
        verifier.trust(proof.digest)
        assert not verifier.verify(relabeled)

    def test_fork_detection_rejects_backwards_and_kind_swap(self):
        db = ShardedDatabase(num_shards=2)
        db.put(b"f1", b"v1")
        early = db.digest()
        db.put(b"f2", b"v2")
        late = db.digest()
        verifier = ClientVerifier()
        verifier.trust(early)
        verifier.observe(late)
        with pytest.raises(TamperDetectedError):
            verifier.observe(early)  # rollback
        # Swapping in a single-ledger digest (height could be made to
        # match) is a fork attempt, not an upgrade.
        plain = SpitzDatabase()
        plain.put(b"x", b"y")
        plain.put(b"z", b"w")
        with pytest.raises(TamperDetectedError):
            verifier.observe(plain.digest())

    def test_scan_fans_out_sorted(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(30):
            db.put(b"scan%02d" % i, b"v%02d" % i)
        entries = db.scan(b"scan05", b"scan15")
        assert [k for k, _ in entries] == [
            b"scan%02d" % i for i in range(5, 16)
        ]
        with pytest.raises(QueryError):
            db.scan_verified(b"a", b"z")
        with pytest.raises(QueryError):
            db.sql("SELECT 1")

    def test_metrics_snapshot_sums_shards(self):
        db = ShardedDatabase(num_shards=4)
        for i in range(12):
            db.put(b"c%d" % i, b"v")
            db.get(b"c%d" % i)
        snapshot = db.metrics_snapshot()
        assert snapshot["gauges"]["shard.count"] == 4
        assert snapshot["counters"]["shard.writes_direct"] == 12
        assert snapshot["counters"]["shard.reads"] == 12
        # Per-shard ledger counters are summed under the shared names.
        assert snapshot["counters"]["db.commits"] == 12

    def test_verify_chain_covers_every_shard(self):
        db = ShardedDatabase(num_shards=3)
        for i in range(9):
            db.put(b"vc%d" % i, b"v")
        assert db.verify_chain()


class TestDurableShards:
    def test_reopen_recovers_every_shard(self, tmp_path):
        root = tmp_path / "fleet"
        db = ShardedDatabase(num_shards=2, durable_root=str(root))
        try:
            for i in range(8):
                db.put(b"d%d" % i, b"v%d" % i)
            before = db.digest()
        finally:
            db.close()
        reopened = ShardedDatabase(num_shards=2, durable_root=str(root))
        try:
            for i in range(8):
                assert reopened.get(b"d%d" % i) == b"v%d" % i
            after = reopened.digest()
            assert after.root == before.root
            assert after.height == before.height
            # Writes keep flowing after recovery (oracle advanced past
            # every replayed commit timestamp).
            reopened.put(b"post", b"recovery")
            assert reopened.get(b"post") == b"recovery"
        finally:
            reopened.close()
