"""Unit tests for the inverted index."""

import pytest

from repro.errors import QueryError
from repro.indexes.inverted import InvertedIndex


class TestInvertedIndex:
    def test_numeric_lookup(self):
        index = InvertedIndex()
        index.add("price", 10, b"uk1")
        index.add("price", 10, b"uk2")
        index.add("price", 20, b"uk3")
        assert index.lookup("price", 10) == [b"uk1", b"uk2"]
        assert index.lookup("price", 99) == []

    def test_numeric_range(self):
        index = InvertedIndex()
        for value, ukey in [(5, b"a"), (10, b"b"), (15, b"c"), (20, b"d")]:
            index.add("qty", value, ukey)
        assert index.range("qty", 8, 16) == [b"b", b"c"]

    def test_string_lookup(self):
        index = InvertedIndex()
        index.add("name", "alice", b"u1")
        index.add("name", "bob", b"u2")
        assert index.lookup("name", "alice") == [b"u1"]

    def test_string_prefix(self):
        index = InvertedIndex()
        index.add("name", "alice", b"u1")
        index.add("name", "alicia", b"u2")
        index.add("name", "bob", b"u3")
        assert index.prefix("name", "ali") == [b"u1", b"u2"]

    def test_string_range(self):
        index = InvertedIndex()
        for name, ukey in [("ann", b"1"), ("ben", b"2"), ("cat", b"3")]:
            index.add("name", name, ukey)
        assert index.range("name", "aa", "bz") == [b"1", b"2"]

    def test_remove(self):
        index = InvertedIndex()
        index.add("price", 10, b"u1")
        index.add("price", 10, b"u2")
        index.remove("price", 10, b"u1")
        assert index.lookup("price", 10) == [b"u2"]
        index.remove("price", 10, b"u2")
        assert index.lookup("price", 10) == []

    def test_remove_unknown_is_noop(self):
        index = InvertedIndex()
        index.remove("ghost", 1, b"u")
        index.add("price", 5, b"u")
        index.remove("price", 99, b"u")
        assert index.lookup("price", 5) == [b"u"]

    def test_mixing_types_raises(self):
        index = InvertedIndex()
        index.add("col", 1, b"u1")
        with pytest.raises(QueryError):
            index.add("col", "text", b"u2")

    def test_unindexable_type_raises(self):
        index = InvertedIndex()
        with pytest.raises(QueryError):
            index.add("col", [1, 2], b"u")
        with pytest.raises(QueryError):
            index.add("col", True, b"u")

    def test_prefix_on_numeric_column_raises(self):
        index = InvertedIndex()
        index.add("qty", 5, b"u")
        with pytest.raises(QueryError):
            index.prefix("qty", "5")

    def test_unknown_column_empty_results(self):
        index = InvertedIndex()
        assert index.lookup("missing", 1) == []
        assert index.range("missing", 0, 10) == []
        assert index.prefix("missing", "x") == []

    def test_columns_listing(self):
        index = InvertedIndex()
        index.add("b", 1, b"u")
        index.add("a", "s", b"u")
        assert index.columns() == ["a", "b"]

    def test_float_and_int_share_skiplist(self):
        index = InvertedIndex()
        index.add("score", 1, b"u1")
        index.add("score", 1.5, b"u2")
        assert index.range("score", 0, 2) == [b"u1", b"u2"]
