"""Queue admission control, deadline shedding, and client retry.

The tentpole invariant under test: the queue is the cluster's single
admission point — sustained overload is rejected *fast* with a
retryable error, expired envelopes are shed instead of processed, and
every accepted envelope is still completed exactly once.
"""

import time

import pytest

from repro.core.client import ClientStats, ClusterClient
from repro.core.database import SpitzDatabase
from repro.core.node import MessageQueue, ProcessorNode, SpitzCluster
from repro.core.request_handler import Request, RequestKind, Response
from repro.errors import ClusterOverloadedError
from repro.obs import MetricsRegistry


def _put_request(i: int = 0) -> Request:
    return Request(RequestKind.PUT, {"key": f"k{i}".encode(), "value": b"v"})


class TestQueueAdmission:
    def test_sustained_overload_rejects_fast(self):
        mq = MessageQueue(
            metrics=MetricsRegistry(), capacity=4, overload_window=0.0
        )
        for i in range(4):
            mq.submit(_put_request(i))
        start = time.perf_counter()
        with pytest.raises(ClusterOverloadedError) as excinfo:
            mq.submit(_put_request(99))
        elapsed = time.perf_counter() - start
        assert elapsed < 0.05, "rejection must not block"
        error = excinfo.value
        assert error.retryable
        assert error.retry_after > 0
        assert error.capacity == 4 and error.depth >= 4
        assert mq.submitted == 4
        assert mq.rejected_overload == 1
        snap = mq.metrics.snapshot()
        assert snap["counters"]["queue.rejected_overload"] == 1
        assert snap["gauges"]["queue.capacity"] == 4

    def test_burst_grace_window_admits_momentary_overload(self):
        mq = MessageQueue(capacity=2, overload_window=10.0)
        for i in range(6):  # depth passes capacity but window is open
            mq.submit(_put_request(i))
        assert mq.submitted == 6
        assert mq.rejected_overload == 0

    def test_rejection_clears_once_depth_drops(self):
        mq = MessageQueue(capacity=2, overload_window=0.0)
        mq.submit(_put_request(0))
        mq.submit(_put_request(1))
        with pytest.raises(ClusterOverloadedError):
            mq.submit(_put_request(2))
        assert mq.take(timeout=0.1) is not None  # drain below capacity
        mq.submit(_put_request(3))  # admitted again
        assert mq.submitted == 3

    def test_unbounded_queue_never_rejects_overload(self):
        mq = MessageQueue(metrics=MetricsRegistry())  # no capacity
        for i in range(100):
            mq.submit(_put_request(i))
        assert mq.rejected_overload == 0
        assert mq.metrics.snapshot()["gauges"]["queue.capacity"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MessageQueue(capacity=0)


class TestDeadlineShedding:
    def test_expired_envelope_is_shed_not_processed(self):
        """Regression (wasted work): a request whose client had already
        timed out used to be processed anyway, its response dropped.
        The node now completes it unprocessed with a retryable error."""
        db = SpitzDatabase()
        mq = MessageQueue(metrics=db.metrics)
        node = ProcessorNode("p0", db, mq)
        envelope = mq.submit(
            _put_request(0), deadline=time.perf_counter() - 1.0
        )
        assert node.serve_one(timeout=0.1)
        assert envelope.done.is_set()
        assert not envelope.response.ok
        assert envelope.response.retryable
        assert "shed" in envelope.response.error
        # The write was NOT applied and the wait histogram not skewed.
        assert db.get(b"k0") is None
        assert node.processed == 0
        snap = db.metrics.snapshot()
        assert snap["counters"]["queue.shed"] == 1
        assert mq.shed == 1
        assert snap["histograms"]["queue.wait_seconds"]["count"] == 0

    def test_unexpired_envelope_is_processed_normally(self):
        db = SpitzDatabase()
        mq = MessageQueue(metrics=db.metrics)
        node = ProcessorNode("p0", db, mq)
        envelope = mq.submit(
            _put_request(1), deadline=time.perf_counter() + 30.0
        )
        assert node.serve_one(timeout=0.1)
        assert envelope.response.ok
        assert db.get(b"k1") == b"v"
        assert mq.shed == 0

    def test_timed_out_cluster_submit_is_shed_by_late_node(self):
        """End-to-end wasted-work regression: SpitzCluster.submit times
        out, the node comes up later, and the envelope is shed — the
        database never does the work."""
        cluster = SpitzCluster(nodes=1)  # not started yet
        with pytest.raises(TimeoutError):
            cluster.submit(_put_request(7), timeout=0.05)
        cluster.start()
        try:
            deadline = time.time() + 5.0
            while cluster.queue.shed == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert cluster.queue.shed == 1
            assert cluster.nodes[0].processed == 0
            assert cluster.db.get(b"k7") is None
        finally:
            cluster.stop()

    def test_accounting_balances_after_stop(self):
        """processed + shed + failed-on-stop == submitted, even with a
        mix of live, expired and stranded envelopes."""
        cluster = SpitzCluster(nodes=1)
        # One already-expired, two live, and the cluster never starts,
        # so stop() strands all three.
        cluster.queue.submit(_put_request(0), deadline=time.perf_counter() - 1)
        cluster.queue.submit(_put_request(1))
        cluster.queue.submit(_put_request(2))
        cluster.stop()
        snap = cluster.stats()
        counters = snap["counters"]
        assert counters["queue.submitted"] == 3
        assert (
            counters.get("node.processed", 0)
            + counters.get("queue.shed", 0)
            + counters.get("cluster.failed_on_stop", 0)
            == 3
        )


class _ScriptedCluster:
    """Stub duck-typing SpitzCluster.submit with a scripted outcome
    sequence: each item is a Response to return or an exception to
    raise."""

    def __init__(self, outcomes):
        self._outcomes = list(outcomes)
        self.submits = 0

    def submit(self, request, timeout=10.0):
        self.submits += 1
        outcome = self._outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _overloaded(retry_after=0.1):
    return ClusterOverloadedError(depth=9, capacity=8, retry_after=retry_after)


def _shed_response():
    return Response(ok=False, error="request shed", retryable=True)


class TestClusterClient:
    def test_retries_overload_then_succeeds(self):
        cluster = _ScriptedCluster(
            [_overloaded(0.1), _overloaded(0.1), Response(ok=True, result=1)]
        )
        slept = []
        client = ClusterClient(
            cluster, attempts=4, backoff=0.02, sleep=slept.append
        )
        response = client.call(_put_request())
        assert response.ok and response.result == 1
        assert cluster.submits == 3
        stats = client.stats
        assert stats.retries == 2
        assert stats.rejected_overload == 2
        # Deterministic schedule: max(0.02 * 2**attempt, retry_after).
        assert slept == [
            pytest.approx(0.1),  # max(0.02, 0.1)
            pytest.approx(0.1),  # max(0.04, 0.1)
        ]
        assert stats.backoff_seconds == pytest.approx(0.2)

    def test_retries_shed_response(self):
        cluster = _ScriptedCluster(
            [_shed_response(), Response(ok=True, result=2)]
        )
        client = ClusterClient(cluster, attempts=3, backoff=0.5, sleep=None)
        response = client.call(_put_request())
        assert response.ok
        assert client.stats.shed_responses == 1
        assert client.stats.backoff_seconds == pytest.approx(0.5)

    def test_exhausted_overload_raises_last_error(self):
        cluster = _ScriptedCluster([_overloaded(), _overloaded()])
        client = ClusterClient(cluster, attempts=2, sleep=None)
        with pytest.raises(ClusterOverloadedError):
            client.call(_put_request())
        assert client.stats.exhausted == 1
        assert cluster.submits == 2

    def test_exhausted_shed_returns_last_response(self):
        cluster = _ScriptedCluster([_shed_response(), _shed_response()])
        client = ClusterClient(cluster, attempts=2, sleep=None)
        response = client.call(_put_request())
        assert not response.ok and response.retryable
        assert client.stats.exhausted == 1

    def test_non_retryable_error_response_not_retried(self):
        cluster = _ScriptedCluster(
            [Response(ok=False, error="boom", retryable=False)]
        )
        client = ClusterClient(cluster, attempts=5, sleep=None)
        response = client.call(_put_request())
        assert not response.ok
        assert cluster.submits == 1
        assert client.stats.retries == 0

    def test_backoff_schedule_matches_simnet_shape(self):
        """Same deterministic doubling as Channel.call_with_retry."""
        cluster = _ScriptedCluster(
            [_shed_response()] * 3 + [Response(ok=True)]
        )
        client = ClusterClient(cluster, attempts=4, backoff=1.0, sleep=None)
        assert client.call(_put_request()).ok
        assert client.stats.backoff_seconds == pytest.approx(1 + 2 + 4)

    def test_stats_dataclass_defaults(self):
        stats = ClientStats()
        assert stats.calls == 0 and stats.backoff_seconds == 0.0

    def test_live_cluster_round_trip_with_retries_configured(self):
        cluster = SpitzCluster(nodes=1, queue_capacity=64)
        cluster.start()
        try:
            client = ClusterClient(cluster, attempts=3, timeout=5.0)
            assert client.put(b"alice", b"100").ok
            got = client.get(b"alice", verify=True)
            assert got.ok and got.result == b"100"
            assert got.digest is not None
        finally:
            cluster.stop()

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterClient(_ScriptedCluster([]), attempts=0)
