"""Batched multiproofs: dedup, the tamper matrix, and K=1 equivalence.

The multiproof is a new trust surface, so the tests attack it the way
a malicious server would: mutate a node, swap a claimed value, bind
the wrong block, truncate the node set.  Every attack must be caught
at *verification* (``verify`` returns False), never by decoding —
and every honest proof must keep verifying after the attack attempts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.database import SpitzDatabase
from repro.core.proofs import (
    BLOCK_WITNESS_BYTES,
    BlockWitness,
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.verifier import ClientVerifier
from repro.crypto.hashing import hash_bytes
from repro.errors import TamperDetectedError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.pos_tree import PosMultiProof, PosTree


# ---------------------------------------------------------------------------
# index layer
# ---------------------------------------------------------------------------

def _tree(n: int = 64, mask_bits: int = 3) -> PosTree:
    items = [
        (f"key{i:04d}".encode(), f"value{i}".encode()) for i in range(n)
    ]
    return PosTree.from_items(ChunkStore(), items, mask_bits=mask_bits)


class TestPosMultiProof:
    def test_values_in_request_order_with_absences(self):
        tree = _tree()
        keys = [b"key0050", b"nope", b"key0001", b"key0001"]
        values, proof = tree.get_many_with_proof(keys)
        assert values == [b"value50", None, b"value1", b"value1"]
        assert proof.entries == tuple(zip(keys, values))
        assert proof.verify(tree.root)

    def test_nodes_are_deduplicated_across_keys(self):
        tree = _tree()
        keys = [f"key{i:04d}".encode() for i in range(0, 64, 4)]
        _values, proof = tree.get_many_with_proof(keys)
        # Every key's path shares the root (and likely more); K walks
        # of `height` nodes each must collapse well below K * height.
        assert len(proof.nodes) < len(keys) * tree.height
        assert len(set(proof.nodes)) == len(proof.nodes)
        # And the multiproof beats the summed point proofs on bytes.
        point_total = 0
        for key in keys:
            _value, point = tree.get_with_proof(key)
            point_total += point.size_bytes
        assert proof.size_bytes < point_total

    def test_wrong_root_fails(self):
        tree = _tree()
        _values, proof = tree.get_many_with_proof([b"key0001"])
        assert not proof.verify(hash_bytes(b"other-root"))

    def test_verify_never_raises_on_garbage_nodes(self):
        tree = _tree()
        _values, proof = tree.get_many_with_proof([b"key0001"])
        garbage = PosMultiProof(
            entries=proof.entries,
            nodes=(b"\x00garbage",) + proof.nodes[1:],
            root=proof.root,
        )
        assert garbage.verify(tree.root) is False


# ---------------------------------------------------------------------------
# ledger layer: the tamper matrix
# ---------------------------------------------------------------------------

def _loaded_db(n: int = 100) -> SpitzDatabase:
    db = SpitzDatabase(block_batch=16)
    for i in range(n):
        db.put(f"key{i:04d}".encode(), f"value{i}".encode())
    db.flush_ledger()
    return db


def _verifier_for(db: SpitzDatabase) -> ClientVerifier:
    verifier = ClientVerifier()
    verifier.trust(db.digest())
    return verifier


KEYS = [b"key0003", b"key0017", b"key0042", b"key0099", b"absent"]


class TestTamperMatrix:
    def test_honest_multiproof_verifies(self):
        db = _loaded_db()
        values, proof = db.get_many_verified(KEYS)
        assert values[-1] is None and None not in values[:-1]
        _verifier_for(db).verify_or_raise(proof)

    def test_mutated_node_detected(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        verifier = _verifier_for(db)
        for index in range(len(proof.multi.nodes)):
            nodes = list(proof.multi.nodes)
            nodes[index] = nodes[index] + b"\x00"
            tampered = LedgerMultiProof(
                multi=PosMultiProof(
                    entries=proof.multi.entries,
                    nodes=tuple(nodes),
                    root=proof.multi.root,
                ),
                block=proof.block,
            )
            assert not verifier.verify(tampered), (
                f"mutating node {index} went undetected"
            )

    def test_swapped_leaf_value_detected(self):
        # Claim key A carries key B's value; both values are genuinely
        # in the tree, so only the path replay can catch the swap.
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        entries = list(proof.multi.entries)
        entries[0] = (entries[0][0], entries[1][1])
        swapped = LedgerMultiProof(
            multi=PosMultiProof(
                entries=tuple(entries),
                nodes=proof.multi.nodes,
                root=proof.multi.root,
            ),
            block=proof.block,
        )
        assert not _verifier_for(db).verify(swapped)

    def test_fabricated_absence_detected(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        entries = list(proof.multi.entries)
        entries[0] = (entries[0][0], None)  # deny a present key
        denying = LedgerMultiProof(
            multi=PosMultiProof(
                entries=tuple(entries),
                nodes=proof.multi.nodes,
                root=proof.multi.root,
            ),
            block=proof.block,
        )
        assert not _verifier_for(db).verify(denying)

    def test_wrong_block_witness_detected(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        block = proof.block
        forged = LedgerMultiProof(
            multi=proof.multi,
            block=BlockWitness(
                height=block.height,
                previous_chain_digest=block.previous_chain_digest,
                tree_root=hash_bytes(b"other-tree"),
                writes_digest=block.writes_digest,
                statements_digest=block.statements_digest,
                chain_digest=block.chain_digest,
            ),
        )
        assert not _verifier_for(db).verify(forged)

    def test_stale_block_witness_detected(self):
        # A proof against an older (honest!) block must fail once the
        # client trusts a newer digest: chain digests differ.
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        db.put(b"newer", b"entry")
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert not verifier.verify(proof)

    def test_truncated_node_set_detected(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        verifier = _verifier_for(db)
        for index in range(len(proof.multi.nodes)):
            nodes = list(proof.multi.nodes)
            del nodes[index]
            truncated = LedgerMultiProof(
                multi=PosMultiProof(
                    entries=proof.multi.entries,
                    nodes=tuple(nodes),
                    root=proof.multi.root,
                ),
                block=proof.block,
            )
            assert not verifier.verify(truncated), (
                f"dropping node {index} went undetected"
            )

    def test_tamper_raises_via_verify_or_raise(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified(KEYS)
        entries = list(proof.multi.entries)
        entries[0] = (entries[0][0], b"evil")
        forged = LedgerMultiProof(
            multi=PosMultiProof(
                entries=tuple(entries),
                nodes=proof.multi.nodes,
                root=proof.multi.root,
            ),
            block=proof.block,
        )
        verifier = _verifier_for(db)
        with pytest.raises(TamperDetectedError):
            verifier.verify_or_raise(forged)
        assert verifier.detections == 1


# ---------------------------------------------------------------------------
# size accounting + K=1 equivalence
# ---------------------------------------------------------------------------

class TestSizeAccounting:
    def test_block_witness_weight_is_five_digests_plus_height(self):
        # Regression: proofs used to charge 6 * 32 for a witness that
        # holds 5 digests + a height, inflating ledger.proof_bytes.
        assert BLOCK_WITNESS_BYTES == 5 * 32 + 8

    def test_all_proof_kinds_use_the_same_witness_weight(self):
        db = _loaded_db(20)
        _value, point = db.get_verified(b"key0001")
        _entries, ranged = db.scan_verified(b"key0001", b"key0005")
        _values, multi = db.get_many_verified([b"key0001"])
        assert point.size_bytes == point.siri.size_bytes + BLOCK_WITNESS_BYTES
        assert (
            ranged.size_bytes
            == ranged.range_proof.size_bytes + BLOCK_WITNESS_BYTES
        )
        assert (
            multi.size_bytes
            == multi.multi.size_bytes + BLOCK_WITNESS_BYTES
        )


# One shared database for the property: building per-example would
# dominate the run time without adding coverage.
_PROP_DB = _loaded_db(60)
_PROP_DIGEST = _PROP_DB.digest()


@given(
    index=st.integers(min_value=0, max_value=79),
    forged_value=st.one_of(st.none(), st.binary(max_size=6)),
)
@settings(max_examples=60, deadline=None)
def test_k1_multiproof_verifies_iff_point_proof_does(index, forged_value):
    """A K=1 multiproof and the equivalent point proof agree — on
    honest claims (both True) and on forged ones (both False)."""
    key = f"key{index:04d}".encode()  # indexes 60..79 are absent
    _value, point = _PROP_DB.get_verified(key)
    values, multi = _PROP_DB.get_many_verified([key])
    assert multi.multi.entries[0][1] == point.siri.value
    assert values == [point.siri.value]

    point_verifier = ClientVerifier()
    point_verifier.trust(_PROP_DIGEST)
    multi_verifier = ClientVerifier()
    multi_verifier.trust(_PROP_DIGEST)
    assert point_verifier.verify(point)
    assert multi_verifier.verify(multi)

    if forged_value == point.siri.value:
        return  # not a forgery
    from repro.indexes.siri import SiriProof

    forged_point = LedgerProof(
        siri=SiriProof(
            key=point.siri.key,
            value=forged_value,
            nodes=point.siri.nodes,
        ),
        block=point.block,
    )
    forged_multi = LedgerMultiProof(
        multi=PosMultiProof(
            entries=((multi.multi.entries[0][0], forged_value),),
            nodes=multi.multi.nodes,
            root=multi.multi.root,
        ),
        block=multi.block,
    )
    assert point_verifier.verify(forged_point) is False
    assert multi_verifier.verify(forged_multi) is False
