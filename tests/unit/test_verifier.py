"""Unit tests for the client verifier and the deferred writer."""

import pytest

from repro.errors import TamperDetectedError, VerificationError
from repro.core.database import SpitzDatabase
from repro.core.proofs import LedgerProof
from repro.core.verifier import ClientVerifier, VerifiedWriter
from repro.indexes.siri import SiriProof


class TestClientVerifier:
    def test_requires_trusted_digest(self, loaded_db):
        verifier = ClientVerifier()
        _value, proof = loaded_db.get_verified(b"key0001")
        with pytest.raises(VerificationError):
            verifier.verify(proof)

    def test_accepts_honest_proof(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        value, proof = loaded_db.get_verified(b"key0001")
        assert value == b"value1"
        assert verifier.verify(proof)
        verifier.verify_or_raise(proof)

    def test_rejects_forged_value(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        assert not verifier.verify(forged)
        assert verifier.detections == 1
        with pytest.raises(TamperDetectedError):
            verifier.verify_or_raise(forged)

    def test_rejects_stale_proof_after_observe(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        loaded_db.put(b"new", b"entry")
        verifier.observe(loaded_db.digest())
        assert not verifier.verify(proof)

    def test_observe_refuses_rollback(self, loaded_db):
        verifier = ClientVerifier()
        old = loaded_db.digest()
        loaded_db.put(b"x", b"y")
        verifier.observe(loaded_db.digest())
        with pytest.raises(TamperDetectedError):
            verifier.observe(old)

    def test_observe_rejects_equal_height_fork(self, loaded_db):
        """Regression: a same-height digest with a different chain
        digest or index root was adopted silently."""
        from repro.core.ledger import LedgerDigest
        from repro.crypto.hashing import hash_bytes

        verifier = ClientVerifier()
        digest = loaded_db.digest()
        verifier.trust(digest)
        forked = LedgerDigest(
            height=digest.height,
            chain_digest=hash_bytes(b"forked-chain"),
            tree_root=digest.tree_root,
        )
        with pytest.raises(TamperDetectedError):
            verifier.observe(forked)
        assert verifier.detections == 1
        assert verifier.trusted_digest == digest
        forged_root = LedgerDigest(
            height=digest.height,
            chain_digest=digest.chain_digest,
            tree_root=hash_bytes(b"forged-root"),
        )
        with pytest.raises(TamperDetectedError):
            verifier.observe(forged_root)
        # Re-observing the identical digest is still fine.
        verifier.observe(digest)

    def test_advance_rejects_forged_root_with_empty_extension(
        self, loaded_db
    ):
        """Regression: advance() only compared ``tree_root`` when the
        extension was non-empty, so a same-height digest with the
        right chain digest but a forged index root was adopted."""
        from repro.core.ledger import LedgerDigest
        from repro.crypto.hashing import hash_bytes

        verifier = ClientVerifier()
        digest = loaded_db.digest()
        verifier.trust(digest)
        forged = LedgerDigest(
            height=digest.height,
            chain_digest=digest.chain_digest,
            tree_root=hash_bytes(b"forged-root"),
        )
        with pytest.raises(TamperDetectedError):
            verifier.advance(forged, [])
        assert verifier.detections == 1
        assert verifier.trusted_digest == digest
        # The honest same-height digest still advances (a no-op).
        verifier.advance(digest, [])

    def test_multi_proof_verification(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        keys = [b"key0003", b"key0042", b"missing"]
        values, proof = loaded_db.get_many_verified(keys)
        assert values == [b"value3", b"value42", None]
        assert verifier.verify(proof)
        # Every deduped node is attributed to exactly one of hit/miss.
        assert (
            verifier.cache_hits + verifier.cache_misses
            == len(proof.multi.nodes)
        )

    def test_caching_keeps_soundness(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        # Warm the cache with honest proofs...
        for i in range(10):
            _value, proof = loaded_db.get_verified(f"key{i:04d}".encode())
            assert verifier.verify(proof)
        # ...then a forged proof must still fail.
        _value, proof = loaded_db.get_verified(b"key0011")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        assert not verifier.verify(forged)

    def test_range_proof_verification(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        _entries, proof = loaded_db.scan_verified(b"key0010", b"key0019")
        assert verifier.verify(proof)


class TestDeferredMode:
    def test_deferred_queues_then_flushes(self, loaded_db):
        verifier = ClientVerifier(deferred=True, batch_size=100)
        verifier.trust(loaded_db.digest())
        for i in range(5):
            _value, proof = loaded_db.get_verified(f"key{i:04d}".encode())
            assert verifier.verify(proof)  # optimistic True
        assert verifier.pending == 5
        verifier.flush()
        assert verifier.pending == 0

    def test_deferred_detects_on_flush(self, loaded_db):
        verifier = ClientVerifier(deferred=True, batch_size=100)
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        assert verifier.verify(forged)  # deferred: optimistic
        with pytest.raises(TamperDetectedError):
            verifier.flush()

    def test_deferred_flush_failure_counts_detection(self, loaded_db):
        """Regression: ``detections`` was never incremented when a
        deferred batch failed inside flush()."""
        verifier = ClientVerifier(deferred=True, batch_size=100)
        verifier.trust(loaded_db.digest())
        for i in range(3):
            _value, proof = loaded_db.get_verified(f"key{i:04d}".encode())
            verifier.verify(proof)
        _value, proof = loaded_db.get_verified(b"key0005")
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        verifier.verify(forged)
        assert verifier.detections == 0  # nothing has actually run yet
        with pytest.raises(TamperDetectedError):
            verifier.flush()
        assert verifier.detections == 1
        # 3 honest checks passed + 1 forged check ran and failed.
        assert verifier.checks == 4

    def test_deferred_autoflush_failure_counts_detection(self, loaded_db):
        """The batch-full auto-flush inside verify() accounts the same
        way as an explicit flush()."""
        verifier = ClientVerifier(deferred=True, batch_size=2)
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        verifier.verify(proof)
        forged = LedgerProof(
            siri=SiriProof(
                key=proof.siri.key, value=b"evil", nodes=proof.siri.nodes
            ),
            block=proof.block,
        )
        with pytest.raises(TamperDetectedError):
            verifier.verify(forged)  # fills the batch -> auto-flush
        assert verifier.detections == 1
        assert verifier.checks == 2

    def test_deferred_clean_flush_counts_checks(self, loaded_db):
        verifier = ClientVerifier(deferred=True, batch_size=100)
        verifier.trust(loaded_db.digest())
        for i in range(5):
            _value, proof = loaded_db.get_verified(f"key{i:04d}".encode())
            verifier.verify(proof)
        assert verifier.checks == 0
        verifier.flush()
        assert verifier.checks == 5
        assert verifier.detections == 0

    def test_counters_mirror_into_metrics_registry(self, loaded_db):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        verifier = ClientVerifier(metrics=registry)
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        assert verifier.verify(proof)
        snap = registry.snapshot()
        assert snap["counters"]["verifier.checks"] == 1
        assert snap["counters"]["verifier.detections"] == 0
        # Every proof node is attributed to exactly one of hit/miss.
        assert (
            snap["counters"]["verifier.cache_hits"]
            + snap["counters"]["verifier.cache_misses"]
            == len(proof.siri.nodes)
        )

    def test_cache_hits_grow_on_repeat_verification(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        _value, proof = loaded_db.get_verified(b"key0001")
        verifier.verify(proof)
        first_misses = verifier.cache_misses
        assert first_misses > 0
        verifier.verify(proof)
        # Second pass over the same proof hits the node cache.
        assert verifier.cache_misses == first_misses
        assert verifier.cache_hits >= len(proof.siri.nodes)


class TestVerifiedWriter:
    def test_batched_write_verification(self):
        db = SpitzDatabase(block_batch=8)
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        writer = VerifiedWriter(db, verifier, batch_size=8)
        for i in range(20):
            writer.put(f"k{i}".encode(), f"v{i}".encode())
        writer.flush()
        assert writer.writes == 20
        assert writer.batches >= 3
        assert db.get(b"k7") == b"v7"

    def test_invalid_batch_size(self):
        db = SpitzDatabase()
        with pytest.raises(ValueError):
            VerifiedWriter(db, ClientVerifier(), batch_size=0)

    def test_flush_empty_is_noop(self):
        db = SpitzDatabase()
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        VerifiedWriter(db, verifier).flush()
