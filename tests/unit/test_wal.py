"""Unit tests for the write-ahead log: framing, group commit,
torn-tail tolerance, tamper detection, segments and truncation."""

import pytest

from repro.durability.crashsim import (
    CrashyIO,
    flip_byte,
    truncate_wal_stream,
    wal_stream_length,
)
from repro.durability.wal import (
    SEGMENT_HEADER_SIZE,
    WalRecord,
    WriteAheadLog,
    list_segments,
    scan_wal,
    scan_wal_segment,
    segment_path,
)
from repro.errors import TamperDetectedError


def _fill(wal, count, start=0):
    for i in range(start, start + count):
        wal.append("commit", ([(b"k%d" % i, b"v%d" % i)], (), i + 1))


class TestFramingAndReplay:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 5)
        wal.close()
        scan = scan_wal(tmp_path)
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4, 5]
        assert scan.records[2].kind == "commit"
        assert scan.records[2].data[0] == [(b"k2", b"v2")]
        assert not scan.torn_tail

    def test_lsns_continue_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        wal.close()
        wal = WriteAheadLog(tmp_path)
        assert wal.last_lsn == 3
        record = wal.append("commit", ([], (), 99))
        assert record.lsn == 4
        wal.close()
        assert scan_wal(tmp_path).last_lsn == 4

    def test_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        scan = scan_wal(tmp_path)
        assert scan.records == [] and scan.last_lsn == 0


class TestGroupCommit:
    def test_sync_every_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=8)
        _fill(wal, 16)
        # Two windows of 8 records -> two fsyncs.
        assert wal.fsync_count == 2
        assert wal.pending_records == 0
        _fill(wal, 3, start=16)
        assert wal.pending_records == 3
        wal.sync()
        assert wal.pending_records == 0
        wal.close()
        assert len(scan_wal(tmp_path).records) == 19

    def test_per_record_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=1)
        _fill(wal, 4)
        assert wal.fsync_count == 4  # one per record
        wal.close()


class TestTornTail:
    def test_every_truncation_offset_is_torn_or_prefix(self, tmp_path):
        """Cutting the stream at *any* byte yields a clean prefix."""
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 6)
        wal.close()
        blob = segment_path(tmp_path, 0).read_bytes()
        boundaries = {
            record_end
            for record_end in _record_boundaries(blob)
        }
        for offset in range(SEGMENT_HEADER_SIZE, len(blob)):
            segment_path(tmp_path, 0).write_bytes(blob[:offset])
            scan = scan_wal(tmp_path)
            # Never an error; always a prefix of the records.
            lsns = [r.lsn for r in scan.records]
            assert lsns == list(range(1, len(lsns) + 1))
            assert len(lsns) <= 6
            if len(lsns) < 6 and offset not in boundaries:
                # A cut exactly at a record boundary is a clean
                # (shorter) log; anything else must be flagged torn.
                assert scan.torn_tail

    def test_reopen_after_torn_tail_trims_and_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        wal.close()
        truncate_wal_stream(tmp_path, wal_stream_length(tmp_path) - 2)
        wal = WriteAheadLog(tmp_path)
        assert wal.last_lsn == 2  # record 3 torn away
        _fill(wal, 1, start=10)
        wal.close()
        scan = scan_wal(tmp_path)
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert not scan.torn_tail

    def test_header_only_torn(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 2)
        wal.close()
        truncate_wal_stream(tmp_path, 5)  # inside the segment header
        scan = scan_wal(tmp_path)
        assert scan.records == [] and scan.torn_tail
        wal = WriteAheadLog(tmp_path)  # reopen repairs the header
        _fill(wal, 1)
        wal.close()
        assert len(scan_wal(tmp_path).records) == 1


class TestTamperDetection:
    def test_flip_mid_log_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 6)
        wal.close()
        path = segment_path(tmp_path, 0)
        flip_byte(path, path.stat().st_size // 2)
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path)

    def test_bad_magic_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 1)
        wal.close()
        flip_byte(segment_path(tmp_path, 0), 0)
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path)

    def test_missing_middle_segment_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 40)
        wal.close()
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        segments[1][1].unlink()
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path)

    def test_lsn_gap_detected(self, tmp_path):
        # Two segments; rewrite the second with skipped LSNs.
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 40)
        wal.close()
        segments = list_segments(tmp_path)
        index, path = segments[-1]
        blob = path.read_bytes()[:SEGMENT_HEADER_SIZE]
        blob += WalRecord(9999, "commit", ([], (), 1)).encode()
        path.write_bytes(blob)
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path)

    def test_expected_first_lsn_flags_missing_prefix(self, tmp_path):
        # A log whose first segment starts past the anchor lost its
        # leading segment(s).
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 40)
        wal.truncate_through(20)
        wal.close()
        first_base = scan_wal(tmp_path).records[0].lsn
        assert first_base > 1
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path, expected_first_lsn=1)
        # Anchored exactly at (or above) its own start, the scan is fine.
        scan = scan_wal(tmp_path, expected_first_lsn=first_base)
        assert scan.records[0].lsn == first_base

    def test_expected_first_lsn_flags_wiped_log(self, tmp_path):
        # An empty directory is fine for a fresh log (anchor 1) but
        # tampering when an anchor says records existed.
        assert scan_wal(tmp_path, expected_first_lsn=1).records == []
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path, expected_first_lsn=5)

    def test_expected_first_lsn_flags_short_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        wal.close()
        with pytest.raises(TamperDetectedError):
            scan_wal(tmp_path, expected_first_lsn=10)

    def test_expected_first_lsn_tolerates_lower_start(self, tmp_path):
        # Records below the anchor are legitimate (a crash between a
        # checkpoint write and its WAL truncation leaves them behind).
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 5)
        wal.close()
        scan = scan_wal(tmp_path, expected_first_lsn=4)
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4, 5]


class TestSegmentsAndTruncation:
    def test_rotation_by_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 30)
        wal.close()
        assert len(list_segments(tmp_path)) > 1
        assert [r.lsn for r in scan_wal(tmp_path).records] == list(
            range(1, 31)
        )

    def test_truncate_through_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 30)
        last = wal.last_lsn
        removed = wal.truncate_through(last)
        assert removed, "sealed segments should have been deleted"
        _fill(wal, 2, start=100)
        wal.close()
        # Only the post-truncation records remain on disk.
        assert [r.lsn for r in scan_wal(tmp_path).records] == [
            last + 1, last + 2,
        ]

    def test_truncate_through_keeps_uncovered(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 30)
        removed = wal.truncate_through(5)  # nothing fully covered...
        wal.close()
        survivors = [r.lsn for r in scan_wal(tmp_path).records]
        # Every record above the truncation point survived.
        assert set(range(6, 31)) <= set(survivors)

    def test_reopen_tracks_only_active_segment_span(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        _fill(wal, 30)
        wal.close()
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        last_index, last_path = list_segments(tmp_path)[-1]
        records = scan_wal_segment(last_path, last_index)
        # The span covers the last segment's records only — not every
        # record in the log.
        assert wal._segment_first_lsn == records[0].lsn
        assert wal._segment_last_lsn == records[-1].lsn
        wal.rotate()
        assert wal._sealed[last_index] == (
            records[0].lsn, records[-1].lsn,
        )
        # A truncation based on those spans deletes exactly the sealed
        # segments and keeps appends consistent.
        wal.truncate_through(wal.last_lsn)
        _fill(wal, 1, start=100)
        wal.close()
        assert [r.lsn for r in scan_wal(tmp_path).records] == [31]


class TestCrashyIO:
    def test_drop_after_loses_suffix_only(self, tmp_path):
        io = CrashyIO(drop_after=wal_header_plus(200))
        wal = WriteAheadLog(tmp_path, io=io)
        _fill(wal, 50)
        io.simulate_crash()
        scan = scan_wal(tmp_path)
        lsns = [r.lsn for r in scan.records]
        assert lsns == list(range(1, len(lsns) + 1))
        assert len(lsns) < 50
        assert io.dropped_bytes > 0

    def test_skip_fsync_loses_unsynced_window(self, tmp_path):
        wal = WriteAheadLog(tmp_path)  # real IO: header + 4 records
        _fill(wal, 4)
        wal.close()
        io = CrashyIO(skip_fsync=True)
        wal = WriteAheadLog(tmp_path, sync_every=100, io=io)
        _fill(wal, 10, start=4)
        assert wal.pending_records == 10
        io.simulate_crash()
        scan = scan_wal(tmp_path)
        # The entire unsynced window vanished; the old prefix holds.
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4]


def wal_header_plus(extra: int) -> int:
    return SEGMENT_HEADER_SIZE + extra


def _record_boundaries(blob):
    """Byte offsets at which a record ends (clean cut points)."""
    offset = SEGMENT_HEADER_SIZE
    yield offset
    while offset < len(blob):
        length = int.from_bytes(blob[offset:offset + 4], "big")
        offset += 8 + length
        yield offset
