"""Unit tests for the skip list."""

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.indexes.skiplist import SkipList


class TestSkipList:
    def test_insert_get(self):
        sl = SkipList()
        sl.insert(3, "three")
        assert sl.get(3) == "three"

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            SkipList().get(1)

    def test_get_optional(self):
        assert SkipList().get_optional(1, "d") == "d"

    def test_overwrite(self):
        sl = SkipList()
        sl.insert(1, "a")
        sl.insert(1, "b")
        assert sl.get(1) == "b"
        assert len(sl) == 1

    def test_contains(self):
        sl = SkipList()
        sl.insert(7, None)
        assert 7 in sl
        assert 8 not in sl

    def test_sorted_iteration(self):
        sl = SkipList(seed=1)
        keys = list(range(1000))
        random.Random(1).shuffle(keys)
        for key in keys:
            sl.insert(key, key)
        assert [k for k, _ in sl.items()] == list(range(1000))

    def test_delete(self):
        sl = SkipList()
        sl.insert(1, "a")
        sl.delete(1)
        assert 1 not in sl
        assert len(sl) == 0

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            SkipList().delete(42)

    def test_range_inclusive(self):
        sl = SkipList(seed=2)
        for i in range(100):
            sl.insert(i, i)
        assert [k for k, _ in sl.range(10, 20)] == list(range(10, 21))

    def test_range_exclusive(self):
        sl = SkipList(seed=2)
        for i in range(30):
            sl.insert(i, i)
        result = [k for k, _ in sl.range(5, 8, inclusive=False)]
        assert result == [5, 6, 7]

    def test_range_with_float_keys(self):
        sl = SkipList()
        for value in (1.5, 2.5, 3.5, 0.5):
            sl.insert(value, str(value))
        assert [k for k, _ in sl.range(1.0, 3.0)] == [1.5, 2.5]

    def test_model_comparison(self):
        rng = random.Random(9)
        sl = SkipList(seed=9)
        model = {}
        for _ in range(3000):
            key = rng.randrange(500)
            if rng.random() < 0.35 and model:
                victim = rng.choice(list(model))
                sl.delete(victim)
                del model[victim]
            else:
                sl.insert(key, key)
                model[key] = key
        assert list(sl.items()) == sorted(model.items())

    def test_deterministic_with_same_seed(self):
        a, b = SkipList(seed=5), SkipList(seed=5)
        for i in range(50):
            a.insert(i, i)
            b.insert(i, i)
        assert list(a.items()) == list(b.items())
