"""Unit tests for universal keys."""

import pytest

from repro.core.universal_key import UniversalKey
from repro.crypto.hashing import hash_bytes


class TestUniversalKey:
    def test_for_cell_hashes_value(self):
        ukey = UniversalKey.for_cell("col", b"pk", 5, b"value")
        assert ukey.value_hash == hash_bytes(b"value")

    def test_encode_decode_round_trip(self):
        ukey = UniversalKey.for_cell("table.col", b"pk-1", 42, b"v")
        decoded = UniversalKey.decode(ukey.encode())
        assert decoded.column == "table.col"
        assert decoded.primary_key == b"pk-1"
        assert decoded.timestamp == 42

    def test_decode_with_nul_bytes_in_pk(self):
        ukey = UniversalKey.for_cell("c", b"a\x00b\x00", 7, b"v")
        decoded = UniversalKey.decode(ukey.encode())
        assert decoded.primary_key == b"a\x00b\x00"
        assert decoded.timestamp == 7

    def test_decode_empty_pk(self):
        ukey = UniversalKey.for_cell("c", b"", 1, b"v")
        assert UniversalKey.decode(ukey.encode()).primary_key == b""

    def test_timestamp_ordering_within_cell(self):
        keys = [
            UniversalKey.for_cell("c", b"pk", ts, b"v").encode()
            for ts in range(10)
        ]
        assert keys == sorted(keys)

    def test_prefix_covers_all_versions(self):
        low, high = UniversalKey.prefix("c", b"pk")
        for ts in (0, 1, 1000, 2**40):
            encoded = UniversalKey.for_cell("c", b"pk", ts, b"v").encode()
            assert low <= encoded <= high

    def test_prefix_excludes_other_cells(self):
        low, high = UniversalKey.prefix("c", b"pk")
        other = UniversalKey.for_cell("c", b"pk2", 1, b"v").encode()
        assert not (low <= other <= high)
        other_col = UniversalKey.for_cell("d", b"pk", 1, b"v").encode()
        assert not (low <= other_col <= high)

    def test_distinct_values_distinct_keys(self):
        a = UniversalKey.for_cell("c", b"pk", 1, b"v1")
        b = UniversalKey.for_cell("c", b"pk", 1, b"v2")
        assert a != b
        assert a.encode() != b.encode()

    def test_encode_is_memoized(self):
        ukey = UniversalKey.for_cell("c", b"pk", 1, b"v")
        assert ukey.encode() is ukey.encode()
