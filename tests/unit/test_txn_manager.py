"""Unit tests for the transaction manager and certifiers."""

import threading

import pytest

from repro.errors import (
    DeadlockError,
    TransactionAborted,
    TransactionStateError,
)
from repro.txn.manager import (
    IsolationLevel,
    TransactionManager,
    TxnState,
)
from repro.txn.mvcc import MVCCStore
from repro.txn.occ import OccCertifier
from repro.txn.oracle import TimestampOracle
from repro.txn.timestamp_ordering import TimestampOrderingCertifier
from repro.txn.two_pl import LockManager, TwoPhaseLockingCertifier


def _manager(certifier=None):
    store = MVCCStore()
    oracle = TimestampOracle()
    if certifier is None:
        certifier = OccCertifier(store)
    return TransactionManager(store, oracle, certifier)


class TestTransactionLifecycle:
    def test_commit_installs_writes(self):
        tm = _manager()
        txn = tm.begin()
        txn.write("k", "v")
        txn.commit()
        assert tm.begin().read("k") == "v"

    def test_read_your_writes(self):
        tm = _manager()
        txn = tm.begin()
        txn.write("k", "mine")
        assert txn.read("k") == "mine"

    def test_abort_discards(self):
        tm = _manager()
        txn = tm.begin()
        txn.write("k", "v")
        txn.abort()
        assert tm.begin().read("k") is None

    def test_operations_after_commit_raise(self):
        tm = _manager()
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.read("k")
        with pytest.raises(TransactionStateError):
            txn.write("k", 1)

    def test_delete_is_tombstone(self):
        tm = _manager()
        tm.run(lambda t: t.write("k", "v"))
        tm.run(lambda t: t.delete("k"))
        assert tm.begin().read("k") is None
        assert len(tm.store.history("k")) == 2

    def test_context_manager_commits(self):
        tm = _manager()
        with tm.begin() as txn:
            txn.write("k", "v")
        assert txn.state is TxnState.COMMITTED

    def test_context_manager_aborts_on_exception(self):
        tm = _manager()
        with pytest.raises(RuntimeError):
            with tm.begin() as txn:
                txn.write("k", "v")
                raise RuntimeError("boom")
        assert txn.state is TxnState.ABORTED
        assert tm.begin().read("k") is None

    def test_run_retries_until_success(self):
        tm = _manager()
        tm.run(lambda t: t.write("counter", 0))
        attempts = []

        def flaky(txn):
            attempts.append(1)
            value = txn.read("counter")
            if len(attempts) < 3:
                # Simulate a conflicting commit between read and commit.
                conflicting = tm.begin()
                conflicting.write("counter", value + 100)
                conflicting.commit()
            txn.write("counter", value + 1)

        tm.run(flaky, retries=10)
        assert len(attempts) == 3

    def test_run_raises_after_exhausted_retries(self):
        tm = _manager()
        tm.run(lambda t: t.write("k", 0))

        def always_conflicts(txn):
            value = txn.read("k")
            other = tm.begin()
            other.write("k", value)
            other.commit()
            txn.write("k", value)

        with pytest.raises(TransactionAborted):
            tm.run(always_conflicts, retries=3)


class TestIsolationLevels:
    def test_snapshot_does_not_see_later_commits(self):
        tm = _manager()
        tm.run(lambda t: t.write("k", "old"))
        reader = tm.begin(IsolationLevel.SNAPSHOT)
        tm.run(lambda t: t.write("k", "new"))
        assert reader.read("k") == "old"

    def test_read_committed_sees_latest(self):
        tm = _manager()
        tm.run(lambda t: t.write("k", "old"))
        reader = tm.begin(IsolationLevel.READ_COMMITTED)
        assert reader.read("k") == "old"
        tm.run(lambda t: t.write("k", "new"))
        assert reader.read("k") == "new"

    def test_serializable_rejects_stale_read_commit(self):
        tm = _manager()
        tm.run(lambda t: t.write("k", 1))
        txn = tm.begin(IsolationLevel.SERIALIZABLE)
        assert txn.read("k") == 1
        tm.run(lambda t: t.write("k", 2))
        txn.write("other", "x")
        with pytest.raises(TransactionAborted):
            txn.commit()


class TestOcc:
    def test_write_write_conflict(self):
        tm = _manager()
        a = tm.begin()
        b = tm.begin()
        a.write("k", "a")
        b.write("k", "b")
        a.commit()
        with pytest.raises(TransactionAborted):
            b.commit()

    def test_disjoint_writes_both_commit(self):
        tm = _manager()
        a = tm.begin()
        b = tm.begin()
        a.write("x", 1)
        b.write("y", 2)
        a.commit()
        b.commit()
        assert tm.committed == 2

    def test_lost_update_prevented_concurrently(self):
        tm = _manager()
        tm.run(lambda t: t.write("counter", 0))

        def increment():
            def work(txn):
                txn.write("counter", txn.read("counter") + 1)
            tm.run(work, retries=200)

        threads = [threading.Thread(target=increment) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tm.begin().read("counter") == 10

    def test_abort_rate_tracked(self):
        tm = _manager()
        a = tm.begin()
        a.write("k", 1)
        a.commit()
        b = tm.begin()
        b.read("k")
        tm.run(lambda t: t.write("k", 2))
        b.write("k", 3)
        with pytest.raises(TransactionAborted):
            b.commit()
        assert 0 < tm.abort_rate < 1


class TestTwoPhaseLocking:
    def test_serializes_increments(self):
        lm = LockManager()
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(), TwoPhaseLockingCertifier(lm)
        )
        tm.run(lambda t: t.write("n", 0))

        def increment():
            def work(txn):
                txn.write("n", txn.read("n") + 1)
            tm.run(work, retries=500)

        threads = [threading.Thread(target=increment) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tm.begin().read("n") == 8

    def test_wait_die_aborts_younger(self):
        lm = LockManager()
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(), TwoPhaseLockingCertifier(lm)
        )
        older = tm.begin()
        younger = tm.begin()
        older.write("k", "old")  # older holds the exclusive lock
        with pytest.raises(DeadlockError):
            younger.write("k", "young")
        older.commit()

    def test_locks_released_after_commit(self):
        lm = LockManager()
        store = MVCCStore()
        tm = TransactionManager(
            store, TimestampOracle(), TwoPhaseLockingCertifier(lm)
        )
        txn = tm.begin()
        txn.write("k", 1)
        txn.commit()
        assert lm.held_keys(txn.txn_id) == set()
        # A later transaction can lock the same key immediately.
        follow = tm.begin()
        follow.write("k", 2)
        follow.commit()


class TestTimestampOrdering:
    def test_late_write_after_younger_read_aborts(self):
        tm = _manager(TimestampOrderingCertifier())
        old = tm.begin()
        young = tm.begin()
        young.read("k")
        with pytest.raises(TransactionAborted):
            old.write("k", "late")

    def test_late_read_after_younger_write_aborts(self):
        certifier = TimestampOrderingCertifier()
        tm = _manager(certifier)
        old = tm.begin()
        young = tm.begin()
        young.write("k", "v")
        young.commit()
        with pytest.raises(TransactionAborted):
            old.read("k")
        assert certifier.early_aborts == 1

    def test_in_order_operations_succeed(self):
        tm = _manager(TimestampOrderingCertifier())
        first = tm.begin()
        first.write("k", 1)
        first.commit()
        second = tm.begin()
        assert second.read("k") == 1
        second.write("k", 2)
        second.commit()
        assert tm.begin().read("k") == 2
