"""Unit tests for the Merkle Patricia Trie."""

import random

import pytest

from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.siri import DELETE, SiriProof


def _items(n):
    return [(f"user:{i:05d}".encode(), f"v{i}".encode()) for i in range(n)]


class TestMptBasics:
    def test_empty(self, store):
        trie = MerklePatriciaTrie.empty(store)
        assert trie.get(b"x") is None

    def test_set_get(self, store):
        trie = MerklePatriciaTrie.empty(store).set(b"key", b"value")
        assert trie.get(b"key") == b"value"

    def test_overwrite(self, store):
        trie = MerklePatriciaTrie.empty(store).set(b"k", b"1").set(b"k", b"2")
        assert trie.get(b"k") == b"2"

    def test_prefix_keys_coexist(self, store):
        trie = MerklePatriciaTrie.from_items(
            store, [(b"do", b"1"), (b"dog", b"2"), (b"doge", b"3")]
        )
        assert trie.get(b"do") == b"1"
        assert trie.get(b"dog") == b"2"
        assert trie.get(b"doge") == b"3"
        assert trie.get(b"d") is None

    def test_items_sorted(self, store):
        items = _items(200)
        shuffled = list(items)
        random.Random(2).shuffle(shuffled)
        trie = MerklePatriciaTrie.from_items(store, shuffled)
        assert sorted(trie.items()) == sorted(items)

    def test_persistence(self, store):
        base = MerklePatriciaTrie.from_items(store, _items(50))
        modified = base.set(b"user:00001", b"changed")
        assert base.get(b"user:00001") == b"v1"
        assert modified.get(b"user:00001") == b"changed"


class TestMptInvariance:
    def test_order_independence(self, store):
        items = _items(300)
        bulk = MerklePatriciaTrie.from_items(store, items)
        shuffled = list(items)
        random.Random(7).shuffle(shuffled)
        incremental = MerklePatriciaTrie.empty(store)
        for key, value in shuffled:
            incremental = incremental.set(key, value)
        assert incremental.root == bulk.root

    def test_delete_restores_structure(self, store):
        items = _items(100)
        without = MerklePatriciaTrie.from_items(store, items[:-1])
        trie = MerklePatriciaTrie.from_items(store, items)
        dropped = trie.delete(items[-1][0])
        assert dropped.root == without.root

    def test_delete_all_restores_empty_root(self, store):
        items = _items(60)
        trie = MerklePatriciaTrie.from_items(store, items)
        emptied = trie.apply({key: DELETE for key, _ in items})
        assert emptied.root == MerklePatriciaTrie.empty(store).root

    def test_delete_absent_key_is_noop(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(20))
        assert trie.delete(b"ghost").root == trie.root

    def test_branch_collapse_after_delete(self, store):
        # Two keys diverging at one nibble; deleting one must collapse
        # the branch back into a leaf/extension chain.
        trie = MerklePatriciaTrie.from_items(
            store, [(b"aa", b"1"), (b"ab", b"2")]
        )
        only_aa = MerklePatriciaTrie.from_items(store, [(b"aa", b"1")])
        assert trie.delete(b"ab").root == only_aa.root


class TestMptProofs:
    def test_presence_proof(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(200))
        value, proof = trie.get_with_proof(b"user:00123")
        assert value == b"v123"
        assert MerklePatriciaTrie.verify_proof(proof, trie.root)

    def test_absence_proof(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(200))
        value, proof = trie.get_with_proof(b"user:99999")
        assert value is None
        assert MerklePatriciaTrie.verify_proof(proof, trie.root)

    def test_forged_value_rejected(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(50))
        _value, proof = trie.get_with_proof(b"user:00001")
        forged = SiriProof(key=proof.key, value=b"evil", nodes=proof.nodes)
        assert not MerklePatriciaTrie.verify_proof(forged, trie.root)

    def test_wrong_root_rejected(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(50))
        other = trie.set(b"user:00001", b"x")
        _value, proof = trie.get_with_proof(b"user:00002")
        assert not MerklePatriciaTrie.verify_proof(
            proof, other.root
        ) or other.get(b"user:00002") == b"v2"

    def test_empty_proof_rejected(self, store):
        trie = MerklePatriciaTrie.from_items(store, _items(5))
        forged = SiriProof(key=b"k", value=None, nodes=())
        assert not MerklePatriciaTrie.verify_proof(forged, trie.root)

    def test_empty_trie_absence_proof(self, store):
        trie = MerklePatriciaTrie.empty(store)
        value, proof = trie.get_with_proof(b"anything")
        assert value is None
        assert MerklePatriciaTrie.verify_proof(proof, trie.root)
