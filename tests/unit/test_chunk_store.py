"""Unit tests for the content-addressed chunk store."""

import pytest

from repro.errors import ChunkNotFoundError
from repro.forkbase.chunk_store import ChunkStore


class TestChunkStore:
    def test_put_get_round_trip(self, store):
        address = store.put(b"hello")
        assert store.get(address) == b"hello"

    def test_content_addressing_deduplicates(self, store):
        first = store.put(b"same")
        second = store.put(b"same")
        assert first == second
        assert len(store) == 1
        assert store.stats.physical_bytes == 4
        assert store.stats.logical_bytes == 8

    def test_distinct_content_distinct_addresses(self, store):
        assert store.put(b"a") != store.put(b"b")

    def test_missing_chunk_raises(self, store):
        from repro.crypto.hashing import hash_bytes

        with pytest.raises(ChunkNotFoundError):
            store.get(hash_bytes(b"never stored"))

    def test_get_optional_returns_none(self, store):
        from repro.crypto.hashing import hash_bytes

        assert store.get_optional(hash_bytes(b"nope")) is None

    def test_refcounts(self, store):
        address = store.put(b"x")
        store.put(b"x")
        assert store.refcount(address) == 2
        assert store.release(address) == 1
        assert store.release(address) == 0

    def test_release_unknown_raises(self, store):
        from repro.crypto.hashing import hash_bytes

        with pytest.raises(ChunkNotFoundError):
            store.release(hash_bytes(b"ghost"))

    def test_release_keeps_data_until_compact(self, store):
        address = store.put(b"keep me")
        store.release(address)
        assert store.get(address) == b"keep me"
        assert store.reclaimable_bytes() == 7

    def test_compact_frees_zero_ref_chunks(self, store):
        address = store.put(b"dead")
        keep = store.put(b"alive")
        store.release(address)
        freed = store.compact()
        assert freed == 4
        assert address not in store
        assert store.get(keep) == b"alive"

    def test_dedup_ratio(self, store):
        for _ in range(4):
            store.put(b"0123456789")
        assert store.stats.dedup_ratio == pytest.approx(4.0)

    def test_empty_store_ratio_is_one(self, store):
        assert store.stats.dedup_ratio == 1.0

    def test_addresses_iteration(self, store):
        a = store.put(b"1")
        b = store.put(b"2")
        assert {a, b} == set(store.addresses())


class TestChunkStoreThreadSafety:
    """Regression: put() was a lockless check-then-act on the entry
    dict, so two nodes putting the same new content concurrently could
    double-insert — double-counting unique_chunks/physical_bytes and
    losing a refcount.  release()/compact() raced the same way.  The
    store now stripes locks by address prefix; these hammers assert
    the accounting is *exact*, not merely close."""

    @pytest.mark.stress
    def test_concurrent_puts_of_same_content_count_exactly(self):
        import threading

        store = ChunkStore()
        threads_n, rounds = 8, 200
        # Every thread puts the same `rounds` distinct payloads, racing
        # the first-insert of each address `threads_n` ways.
        payloads = [f"chunk-{i:04d}".encode() for i in range(rounds)]
        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for payload in payloads:
                store.put(payload)

        threads = [
            threading.Thread(target=worker) for _ in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        expected_bytes = sum(len(p) for p in payloads)
        assert len(store) == rounds
        assert store.stats.unique_chunks == rounds
        assert store.stats.physical_bytes == expected_bytes
        assert store.stats.puts == threads_n * rounds
        assert store.stats.logical_bytes == threads_n * expected_bytes
        for payload in payloads:
            from repro.crypto.hashing import hash_bytes

            assert store.refcount(hash_bytes(payload)) == threads_n

    @pytest.mark.stress
    def test_concurrent_release_and_compact_keep_refcounts_exact(self):
        import threading

        store = ChunkStore()
        payloads = [f"gc-{i:03d}".encode() for i in range(100)]
        refs_per_chunk = 8
        addresses = [store.put(p) for p in payloads]
        for _ in range(refs_per_chunk - 1):
            for p in payloads:
                store.put(p)

        barrier = threading.Barrier(refs_per_chunk)

        def releaser():
            barrier.wait()
            for address in addresses:
                store.release(address)

        threads = [
            threading.Thread(target=releaser)
            for _ in range(refs_per_chunk)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Exactly refs_per_chunk releases hit each chunk: all zero now.
        assert all(store.refcount(a) == 0 for a in addresses)
        freed = store.compact()
        assert freed == sum(len(p) for p in payloads)
        assert len(store) == 0
        assert store.stats.unique_chunks == 0
        assert store.stats.physical_bytes == 0
