"""Unit tests for the content-addressed chunk store."""

import pytest

from repro.errors import ChunkNotFoundError
from repro.forkbase.chunk_store import ChunkStore


class TestChunkStore:
    def test_put_get_round_trip(self, store):
        address = store.put(b"hello")
        assert store.get(address) == b"hello"

    def test_content_addressing_deduplicates(self, store):
        first = store.put(b"same")
        second = store.put(b"same")
        assert first == second
        assert len(store) == 1
        assert store.stats.physical_bytes == 4
        assert store.stats.logical_bytes == 8

    def test_distinct_content_distinct_addresses(self, store):
        assert store.put(b"a") != store.put(b"b")

    def test_missing_chunk_raises(self, store):
        from repro.crypto.hashing import hash_bytes

        with pytest.raises(ChunkNotFoundError):
            store.get(hash_bytes(b"never stored"))

    def test_get_optional_returns_none(self, store):
        from repro.crypto.hashing import hash_bytes

        assert store.get_optional(hash_bytes(b"nope")) is None

    def test_refcounts(self, store):
        address = store.put(b"x")
        store.put(b"x")
        assert store.refcount(address) == 2
        assert store.release(address) == 1
        assert store.release(address) == 0

    def test_release_unknown_raises(self, store):
        from repro.crypto.hashing import hash_bytes

        with pytest.raises(ChunkNotFoundError):
            store.release(hash_bytes(b"ghost"))

    def test_release_keeps_data_until_compact(self, store):
        address = store.put(b"keep me")
        store.release(address)
        assert store.get(address) == b"keep me"
        assert store.reclaimable_bytes() == 7

    def test_compact_frees_zero_ref_chunks(self, store):
        address = store.put(b"dead")
        keep = store.put(b"alive")
        store.release(address)
        freed = store.compact()
        assert freed == 4
        assert address not in store
        assert store.get(keep) == b"alive"

    def test_dedup_ratio(self, store):
        for _ in range(4):
            store.put(b"0123456789")
        assert store.stats.dedup_ratio == pytest.approx(4.0)

    def test_empty_store_ratio_is_one(self, store):
        assert store.stats.dedup_ratio == 1.0

    def test_addresses_iteration(self, store):
        a = store.put(b"1")
        b = store.put(b"2")
        assert {a, b} == set(store.addresses())
