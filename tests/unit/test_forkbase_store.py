"""Unit tests for the ForkBase facade."""

import pytest

from repro.forkbase.store import ForkBase


class TestForkBase:
    def test_put_get(self):
        fb = ForkBase()
        fb.put("doc", b"content")
        assert fb.get("doc") == b"content"

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            ForkBase().get("ghost")

    def test_historical_read(self):
        fb = ForkBase()
        fb.put("doc", b"v1 content")
        first = fb.commit("v1")
        fb.put("doc", b"v2 content")
        fb.commit("v2")
        assert fb.get("doc") == b"v2 content"
        assert fb.get_at("doc", first) == b"v1 content"

    def test_delete_preserves_history(self):
        fb = ForkBase()
        fb.put("doc", b"data")
        first = fb.commit("v1")
        fb.delete("doc")
        fb.commit("v2")
        with pytest.raises(KeyError):
            fb.get("doc")
        assert fb.get_at("doc", first) == b"data"

    def test_keys_sorted(self):
        fb = ForkBase()
        for name in ("zebra", "apple", "mango"):
            fb.put(name, b"x")
        assert list(fb.keys()) == ["apple", "mango", "zebra"]

    def test_branches_isolated(self):
        fb = ForkBase()
        fb.put("k", b"main")
        fb.commit("m1")
        fb.versions.create_branch("fork")
        fb.put("k", b"forked", branch="fork")
        fb.commit("f1", branch="fork")
        assert fb.get("k") == b"main"
        assert fb.get("k", branch="fork") == b"forked"

    def test_identical_values_deduplicate(self):
        fb = ForkBase()
        payload = b"redundant " * 500
        fb.put("a", payload)
        before = fb.stats.physical_bytes
        fb.put("b", payload)
        # The 5000-byte payload is fully deduplicated; only the small
        # map-node delta for the new key is stored.
        assert fb.stats.physical_bytes - before < 500

    def test_storage_report_fields(self):
        fb = ForkBase()
        fb.put("k", b"some data here")
        report = fb.storage_report()
        assert set(report) == {
            "logical_bytes", "physical_bytes", "dedup_ratio",
            "unique_chunks",
        }
        assert report["physical_bytes"] > 0

    def test_checkout_returns_snapshot_map(self):
        fb = ForkBase()
        fb.put("a", b"1")
        commit = fb.commit("v1")
        fb.put("a", b"2")
        snapshot = fb.checkout(commit)
        assert "a" in snapshot
