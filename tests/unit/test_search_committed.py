"""Unit tests for the Merkle-committed search index (repro.search.committed).

Covers the canonical codecs (search values, posting lists, column
manifests), their strict-decode guarantees, and the
CommittedSearchIndex lifecycle: two-phase note_change/seal
maintenance, bulk loading, and rebuild-from-authoritative-state
equivalence.
"""

import pytest

from repro.crypto.hashing import Digest
from repro.errors import QueryError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.inverted import InvertedIndex
from repro.search.committed import (
    SEARCH_ROOT_KEY,
    CommittedSearchIndex,
    decode_manifest,
    decode_postings,
    decode_search_value,
    encode_manifest,
    encode_postings,
    encode_search_value,
    index_root_of,
)


# -- search value codec -----------------------------------------------------


class TestSearchValueCodec:
    def test_round_trip_strings(self):
        for text in ["", "alice", "wiki/page-07", "naïve", "ffff"]:
            assert decode_search_value(encode_search_value(text)) == text

    def test_round_trip_numbers(self):
        for num in [0, 1, -1, 10.5, -273.15, 2**52, float("inf")]:
            encoded = encode_search_value(num)
            assert decode_search_value(encoded) == float(num)

    def test_numeric_encoding_preserves_order(self):
        values = [float("-inf"), -1e9, -2.5, -1, 0, 0.5, 3, 1e18, float("inf")]
        encodings = [encode_search_value(v) for v in values]
        assert encodings == sorted(encodings)

    def test_string_encoding_preserves_order(self):
        values = ["", "a", "ab", "b", "ba", "z"]
        encodings = [encode_search_value(v) for v in values]
        assert encodings == sorted(encodings)

    def test_numbers_sort_before_strings(self):
        assert encode_search_value(1e300) < encode_search_value("")

    def test_nan_rejected(self):
        with pytest.raises(QueryError):
            encode_search_value(float("nan"))

    def test_bool_and_composite_rejected(self):
        for bad in [True, [1], {"a": 1}, None, b"bytes"]:
            with pytest.raises(QueryError):
                encode_search_value(bad)

    def test_int_and_equal_float_encode_identically(self):
        assert encode_search_value(7) == encode_search_value(7.0)


# -- postings codec ---------------------------------------------------------


class TestPostingsCodec:
    def test_round_trip(self):
        postings = [b"u1", b"u2", b"longer-universal-key"]
        assert decode_postings(encode_postings(postings)) == tuple(
            sorted(postings)
        )

    def test_canonical_sorted_deduped(self):
        a = encode_postings([b"b", b"a", b"a", b"c"])
        b = encode_postings([b"c", b"b", b"a"])
        assert a == b
        assert decode_postings(a) == (b"a", b"b", b"c")

    def test_empty_list(self):
        assert decode_postings(encode_postings([])) == ()

    def test_strict_decode_rejects_trailing_bytes(self):
        blob = encode_postings([b"x"]) + b"\x00"
        with pytest.raises(ValueError):
            decode_postings(blob)

    def test_strict_decode_rejects_truncation(self):
        blob = encode_postings([b"abcdef"])
        with pytest.raises(ValueError):
            decode_postings(blob[:-2])

    def test_strict_decode_rejects_unsorted(self):
        # Hand-build count=2 with entries out of order.
        blob = (
            (2).to_bytes(4, "big")
            + (1).to_bytes(2, "big") + b"b"
            + (1).to_bytes(2, "big") + b"a"
        )
        with pytest.raises(ValueError):
            decode_postings(blob)

    def test_strict_decode_rejects_duplicates(self):
        blob = (
            (2).to_bytes(4, "big")
            + (1).to_bytes(2, "big") + b"a"
            + (1).to_bytes(2, "big") + b"a"
        )
        with pytest.raises(ValueError):
            decode_postings(blob)


# -- manifest codec ---------------------------------------------------------


class TestManifestCodec:
    def test_round_trip_and_canonical_order(self):
        roots = {
            "b.col": Digest(b"\x02" * 32),
            "a.col": Digest(b"\x01" * 32),
        }
        blob = encode_manifest(roots)
        assert decode_manifest(blob) == roots
        # Same mapping in a different insertion order is byte-identical.
        assert blob == encode_manifest(dict(reversed(list(roots.items()))))

    def test_index_root_is_deterministic(self):
        one = encode_manifest({"c": Digest(b"\x07" * 32)})
        other = encode_manifest({"c": Digest(b"\x08" * 32)})
        assert index_root_of(one) == index_root_of(bytes(one))
        assert index_root_of(one) != index_root_of(other)

    def test_decode_garbage_raises(self):
        for blob in [b"not-a-manifest", b"", b"SIDX1"]:
            with pytest.raises(ValueError):
                decode_manifest(blob)
        blob = encode_manifest({"a.b": Digest(b"\x01" * 32)})
        with pytest.raises(ValueError):
            decode_manifest(blob + b"\x00")


# -- committed index lifecycle ----------------------------------------------


def _populated_inverted():
    inverted = InvertedIndex()
    inverted.add("t.term", "alpha", b"u1")
    inverted.add("t.term", "alpha", b"u2")
    inverted.add("t.term", "beta", b"u3")
    inverted.add("t.score", 10, b"u1")
    inverted.add("t.score", 20, b"u2")
    return inverted


class TestCommittedSearchIndex:
    def test_seal_commits_noted_changes(self):
        index = CommittedSearchIndex(ChunkStore(), ["t.term", "t.score"])
        inverted = _populated_inverted()
        for column, value in [
            ("t.term", "alpha"), ("t.term", "beta"),
            ("t.score", 10), ("t.score", 20),
        ]:
            index.note_change(column, value)
        manifest = index.seal(inverted)
        assert index.pending_changes == 0
        roots = decode_manifest(manifest)
        assert set(roots) == {"t.term", "t.score"}
        assert index.index_root == index_root_of(manifest)

    def test_unindexed_column_notes_are_ignored(self):
        index = CommittedSearchIndex(ChunkStore(), ["t.term"])
        index.note_change("t.other", "x")
        assert index.pending_changes == 0

    def test_seal_reflects_removal(self):
        index = CommittedSearchIndex(ChunkStore(), ["t.term"])
        inverted = InvertedIndex()
        inverted.add("t.term", "alpha", b"u1")
        index.note_change("t.term", "alpha")
        first = index.seal(inverted)
        inverted.remove("t.term", "alpha", b"u1")
        index.note_change("t.term", "alpha")
        second = index.seal(inverted)
        assert first != second
        # Empty postings delete the leaf: resealing an empty index
        # equals a never-populated one.
        fresh = CommittedSearchIndex(ChunkStore(), ["t.term"])
        assert second == fresh.seal(InvertedIndex())

    def test_bulk_load_equals_incremental(self):
        inverted = _populated_inverted()
        incremental = CommittedSearchIndex(
            ChunkStore(), ["t.score", "t.term"]
        )
        incremental.rebuild_from(inverted)
        bulk = CommittedSearchIndex(ChunkStore(), ["t.term", "t.score"])
        bulk.bulk_load("t.term", {"alpha": [b"u2", b"u1"], "beta": [b"u3"]})
        bulk.bulk_load("t.score", {10: [b"u1"], 20: [b"u2"]})
        assert incremental.manifest_bytes() == bulk.manifest_bytes()
        assert incremental.index_root == bulk.index_root

    def test_manifest_cached_until_next_seal(self):
        index = CommittedSearchIndex(ChunkStore(), ["t.term"])
        index.seal(InvertedIndex())
        assert index.manifest_bytes() is index.manifest_bytes()

    def test_columns_sorted_and_covers(self):
        index = CommittedSearchIndex(ChunkStore(), ["z.b", "a.a"])
        assert index.columns == ("a.a", "z.b")
        assert index.covers("z.b")
        assert not index.covers("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(QueryError):
            CommittedSearchIndex(ChunkStore(), ["a", "a"])

    def test_search_root_key_never_parses_as_cell(self):
        # The manifest anchor must stay outside the logical keyspace:
        # prefix byte "s" + NUL cannot collide with table cells.
        assert SEARCH_ROOT_KEY.startswith(b"s\x00")
