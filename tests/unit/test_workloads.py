"""Unit tests for workload generators and distributions."""

import pytest

from repro.workloads.distributions import UniformChooser, ZipfChooser
from repro.workloads.generator import (
    KEY_MAX_LEN,
    KEY_MIN_LEN,
    OpKind,
    VALUE_LEN,
    WorkloadGenerator,
)
from repro.workloads.wiki import WikiWorkload, naive_storage_bytes


class TestDistributions:
    def test_uniform_covers_population(self):
        chooser = UniformChooser(10, seed=1)
        seen = {chooser.next() for _ in range(1000)}
        assert seen == set(range(10))

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformChooser(0)

    def test_zipf_skews_to_low_ranks(self):
        chooser = ZipfChooser(1000, theta=0.99, seed=1)
        draws = [chooser.next() for _ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        assert head / len(draws) > 0.2  # top-1% gets >20% of traffic

    def test_zipf_bounds(self):
        chooser = ZipfChooser(50, seed=2)
        assert all(0 <= chooser.next() < 50 for _ in range(500))

    def test_zipf_invalid_theta(self):
        with pytest.raises(ValueError):
            ZipfChooser(10, theta=1.5)


class TestWorkloadGenerator:
    def test_paper_key_value_dimensions(self):
        gen = WorkloadGenerator(500, seed=1)
        for key, value in gen.records():
            assert KEY_MIN_LEN <= len(key) <= KEY_MAX_LEN
            assert len(value) == VALUE_LEN

    def test_keys_distinct(self):
        gen = WorkloadGenerator(2000, seed=1)
        assert len(set(gen.keys)) == 2000

    def test_deterministic(self):
        a = WorkloadGenerator(100, seed=7)
        b = WorkloadGenerator(100, seed=7)
        assert a.keys == b.keys

    def test_reads_target_existing_keys(self):
        gen = WorkloadGenerator(100, seed=1)
        keyset = set(gen.keys)
        for op in gen.reads(200):
            assert op.kind is OpKind.READ
            assert op.key in keyset

    def test_writes_have_values(self):
        gen = WorkloadGenerator(100, seed=1)
        for op in gen.writes(50):
            assert op.kind is OpKind.WRITE
            assert len(op.value) == VALUE_LEN

    def test_mixed_fraction(self):
        gen = WorkloadGenerator(100, seed=1)
        ops = list(gen.mixed(1000, read_fraction=0.8))
        reads = sum(1 for op in ops if op.kind is OpKind.READ)
        assert 700 < reads < 900

    def test_mixed_invalid_fraction(self):
        gen = WorkloadGenerator(10, seed=1)
        with pytest.raises(ValueError):
            list(gen.mixed(10, read_fraction=2.0))

    def test_range_scans_selectivity(self):
        gen = WorkloadGenerator(5000, seed=1)
        for op in gen.range_scans(20, selectivity=0.001):
            assert op.kind is OpKind.SCAN
            span = [
                k for k in gen.sorted_keys if op.key <= k <= op.high
            ]
            assert len(span) == gen.scan_span == 5

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(0)


class TestWikiWorkload:
    def test_paper_dimensions(self):
        wiki = WikiWorkload()
        pages = wiki.initial_pages()
        assert len(pages) == 10
        assert all(len(content) == 16 * 1024 for _, content in pages)

    def test_edits_are_localized(self):
        wiki = WikiWorkload(seed=3)
        before = dict(wiki.initial_pages())
        edits = wiki.edits(versions=5)
        assert len(edits) == 4  # versions 2..5
        for edit in edits:
            assert len(edit.content) == 16 * 1024

    def test_edit_changes_tracked_page(self):
        wiki = WikiWorkload(seed=3)
        wiki.initial_pages()
        edit = wiki.edits(versions=2)[0]
        assert wiki.pages[edit.page] == edit.content

    def test_naive_storage_grows_per_version(self):
        wiki = WikiWorkload(seed=1)
        initial = wiki.initial_pages()
        edits = wiki.edits(versions=20)
        total = naive_storage_bytes(initial, edits)
        assert total == (10 + 19) * 16 * 1024

    def test_deterministic(self):
        a = WikiWorkload(seed=5)
        b = WikiWorkload(seed=5)
        assert a.initial_pages() == b.initial_pages()
        assert a.edits(10) == b.edits(10)
