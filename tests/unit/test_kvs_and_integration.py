"""Unit tests for the immutable KVS and the integration designs."""

import pytest

from repro.core.verifier import ClientVerifier
from repro.errors import IntegrationError, NetworkError
from repro.integration.intrusive import IntrusiveVDB, migrate_kvs_to_spitz
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.integration.simnet import Channel
from repro.kvstore.kvs import ImmutableKVS


class TestImmutableKVS:
    def test_put_get(self):
        kvs = ImmutableKVS()
        kvs.put(b"k", b"v")
        assert kvs.get(b"k") == b"v"
        assert kvs.get(b"ghost") is None

    def test_versions_kept(self):
        kvs = ImmutableKVS()
        kvs.put(b"k", b"v1")
        kvs.put(b"k", b"v2")
        assert kvs.get(b"k") == b"v2"
        assert [v for _, v in kvs.history(b"k")] == [b"v1", b"v2"]

    def test_delete_preserves_history(self):
        kvs = ImmutableKVS()
        kvs.put(b"k", b"v")
        kvs.delete(b"k")
        assert kvs.get(b"k") is None
        assert len(kvs.history(b"k")) == 1

    def test_scan(self):
        kvs = ImmutableKVS()
        for i in range(10):
            kvs.put(f"k{i}".encode(), str(i).encode())
        assert len(kvs.scan(b"k2", b"k5")) == 4

    def test_values_deduplicated(self):
        kvs = ImmutableKVS()
        kvs.put(b"a", b"same-payload")
        before = kvs.chunks.stats.physical_bytes
        kvs.put(b"b", b"same-payload")
        assert kvs.chunks.stats.physical_bytes == before

    def test_storage_report(self):
        kvs = ImmutableKVS()
        kvs.put(b"k", b"v")
        assert kvs.storage_report()["physical_bytes"] > 0


class TestChannel:
    def test_round_trip_decodes(self):
        channel = Channel(lambda req: {"echo": req})
        assert channel.call([1, "two"]) == {"echo": [1, "two"]}

    def test_stats_accumulate(self):
        channel = Channel(lambda req: req)
        channel.call("x")
        channel.call("y")
        assert channel.stats.round_trips == 2
        assert channel.stats.messages == 4
        assert channel.stats.bytes_sent > 0

    def test_loss_injection(self):
        channel = Channel(lambda req: req, loss_every=3)
        # Each call sends two messages; with loss_every=3 the first
        # call survives and the second call's request (message 3) is
        # the lost one.
        channel.call("ok")
        with pytest.raises(NetworkError):
            channel.call("request-lost")


class TestCallWithRetry:
    def test_request_leg_loss_retried(self):
        channel = Channel(lambda req: req, loss_every=3)
        channel.call("warmup")  # messages 1, 2
        # Message 3 (the next request) is lost; the retry succeeds.
        assert channel.call_with_retry("x") == "x"
        assert channel.stats.retries == 1
        assert channel.stats.backoff_units == 1.0

    def test_response_leg_loss_retried(self):
        served = []

        def handler(req):
            served.append(req)
            return req

        channel = Channel(handler, loss_every=4)
        channel.call("warmup")  # messages 1, 2
        # Message 4 is the *response* of the next call: the server ran
        # but the client never heard back. The retry re-executes it.
        assert channel.call_with_retry("x") == "x"
        assert served == ["warmup", "x", "x"]
        assert channel.stats.retries == 1

    def test_attempts_exhausted_reraises(self):
        channel = Channel(lambda req: req, loss_every=1)  # lose all
        with pytest.raises(NetworkError):
            channel.call_with_retry("x", attempts=3, backoff=2.0)
        assert channel.stats.retries == 2
        # Exponential accounting: 2*2**0 + 2*2**1 units, no sleeping.
        assert channel.stats.backoff_units == 6.0

    def test_nonintrusive_reads_survive_lossy_network(self):
        vdb = NonIntrusiveVDB(loss_every=5)
        vdb.put(b"k", b"v")
        for _ in range(10):
            value, proof, digest = vdb.get_verified(b"k")
            assert value == b"v"
            verifier = ClientVerifier()
            verifier.trust(digest)
            assert verifier.verify(proof)
        assert (
            vdb.kvs_channel.stats.retries
            + vdb.ledger_channel.stats.retries
        ) > 0

    def test_nonintrusive_writes_not_retried(self):
        vdb = NonIntrusiveVDB(loss_every=2)  # every call's response lost
        with pytest.raises(NetworkError):
            vdb.put(b"k", b"v")


class TestNonIntrusive:
    def test_put_get(self):
        vdb = NonIntrusiveVDB()
        vdb.put(b"k", b"v")
        assert vdb.get(b"k") == b"v"

    def test_verified_read(self):
        vdb = NonIntrusiveVDB()
        vdb.put(b"k", b"v")
        value, proof, digest = vdb.get_verified(b"k")
        verifier = ClientVerifier()
        verifier.trust(digest)
        assert value == b"v"
        assert verifier.verify(proof)

    def test_tampered_underlying_db_detected(self):
        vdb = NonIntrusiveVDB()
        vdb.put(b"k", b"honest")
        # An insider rewrites the underlying KVS directly, bypassing
        # the ledger (the attack the design exists to catch).
        vdb._kvs_server.kvs.put(b"k", b"tampered")
        with pytest.raises(IntegrationError):
            vdb.get_verified(b"k")

    def test_scan_verified(self):
        vdb = NonIntrusiveVDB()
        for i in range(10):
            vdb.put(f"k{i}".encode(), str(i).encode())
        entries, proof, digest = vdb.scan_verified(b"k2", b"k5")
        assert len(entries) == 4
        verifier = ClientVerifier()
        verifier.trust(digest)
        assert verifier.verify(proof)

    def test_write_costs_three_round_trips(self):
        vdb = NonIntrusiveVDB()
        before = vdb.round_trips
        vdb.put(b"k", b"v")
        assert vdb.round_trips - before == 3

    def test_read_costs_one_round_trip(self):
        vdb = NonIntrusiveVDB()
        vdb.put(b"k", b"v")
        before = vdb.round_trips
        vdb.get(b"k")
        assert vdb.round_trips - before == 1


class TestIntrusive:
    def test_adapter_round_trip(self):
        vdb = IntrusiveVDB()
        vdb.put(b"k", b"v")
        value, proof, digest = vdb.get_verified(b"k")
        verifier = ClientVerifier()
        verifier.trust(digest)
        assert value == b"v"
        assert verifier.verify(proof)

    def test_scan(self):
        vdb = IntrusiveVDB()
        for i in range(5):
            vdb.put(f"k{i}".encode(), str(i).encode())
        assert len(vdb.scan(b"k1", b"k3")) == 3


class TestMigration:
    def _loaded_kvs(self):
        kvs = ImmutableKVS()
        for i in range(30):
            kvs.put(f"k{i:02d}".encode(), f"v{i}".encode())
        kvs.put(b"k00", b"v0-updated")
        return kvs

    def test_migrates_current_state(self):
        spitz = migrate_kvs_to_spitz(self._loaded_kvs())
        assert spitz.get(b"k00") == b"v0-updated"
        assert spitz.get(b"k29") == b"v29"

    def test_migrates_history(self):
        spitz = migrate_kvs_to_spitz(self._loaded_kvs())
        assert [v for _, v in spitz.history(b"k00")] == [
            b"v0", b"v0-updated",
        ]

    def test_current_only_migration_drops_history(self):
        spitz = migrate_kvs_to_spitz(
            self._loaded_kvs(), include_history=False
        )
        assert spitz.get(b"k00") == b"v0-updated"
        assert len(spitz.history(b"k00")) == 1

    def test_migrated_data_is_verifiable(self):
        spitz = migrate_kvs_to_spitz(self._loaded_kvs())
        verifier = ClientVerifier()
        verifier.trust(spitz.digest())
        value, proof = spitz.get_verified(b"k15")
        assert value == b"v15"
        assert verifier.verify(proof)
