"""Unit tests for the control layer: auditor, request handler, nodes."""

import pytest

from repro.core.auditor import Auditor
from repro.core.database import SpitzDatabase
from repro.core.node import MessageQueue, ProcessorNode, SpitzCluster
from repro.core.request_handler import (
    Request,
    RequestHandler,
    RequestKind,
    Response,
)
from repro.core.verifier import ClientVerifier
from repro.errors import ClusterStoppedError, VerificationError
from repro.indexes.siri import DELETE


class TestAuditor:
    def test_record_returns_block_and_proof(self, db):
        auditor = Auditor(db.ledger)
        block, proof = auditor.record({b"k": b"v"}, statements=("PUT",))
        assert block.height == 0
        assert proof.verify(db.ledger.digest().chain_digest)
        assert auditor.writes_recorded == 1

    def test_rejects_invalid_keys(self, db):
        auditor = Auditor(db.ledger)
        with pytest.raises(VerificationError):
            auditor.record({b"": b"v"})
        with pytest.raises(VerificationError):
            auditor.record({"not-bytes": b"v"})

    def test_prove(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"k": b"v"})
        value, proof = auditor.prove(b"k")
        assert value == b"v"
        assert auditor.proofs_issued == 2

    def test_prove_range(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"a": b"1", b"b": b"2", b"c": b"3"})
        entries, proof = auditor.prove_range(b"a", b"b")
        assert len(entries) == 2
        assert proof.verify(auditor.digest().chain_digest)

    def test_audit_chain(self, db):
        auditor = Auditor(db.ledger)
        for i in range(5):
            auditor.record({f"k{i}".encode(): b"v"})
        assert auditor.audit_chain()

    def test_record_delete(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"k": b"v"})
        auditor.record({b"k": DELETE})
        assert db.ledger.get(b"k") is None


class TestRequestHandler:
    def test_put_then_get(self, db):
        handler = RequestHandler(db)
        put = handler.handle(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        assert put.ok
        got = handler.handle(Request(RequestKind.GET, {"key": b"k"}))
        assert got.result == b"v"

    def test_verified_get_carries_proof_and_digest(self, db):
        handler = RequestHandler(db)
        handler.handle(Request(RequestKind.PUT, {"key": b"k", "value": b"v"}))
        response = handler.handle(
            Request(RequestKind.GET, {"key": b"k"}, verify=True)
        )
        assert response.proof is not None
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        assert verifier.verify(response.proof)

    def test_scan(self, loaded_db):
        handler = RequestHandler(loaded_db)
        response = handler.handle(
            Request(
                RequestKind.SCAN,
                {"low": b"key0000", "high": b"key0004"},
            )
        )
        assert len(response.result) == 5

    def test_sql_request(self, db):
        handler = RequestHandler(db)
        response = handler.handle(
            Request(
                RequestKind.SQL,
                {"text": "CREATE TABLE t (id INT, PRIMARY KEY (id))"},
            )
        )
        assert response.ok

    def test_history_request(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        handler = RequestHandler(db)
        response = handler.handle(
            Request(RequestKind.HISTORY, {"key": b"k"})
        )
        assert [v for _, v in response.result] == [b"v1", b"v2"]

    def test_errors_become_responses(self, db):
        handler = RequestHandler(db)
        response = handler.handle(
            Request(RequestKind.SQL, {"text": "NOT SQL AT ALL"})
        )
        assert not response.ok
        assert response.error

    def test_delete_request(self, db):
        handler = RequestHandler(db)
        handler.handle(Request(RequestKind.PUT, {"key": b"k", "value": b"v"}))
        handler.handle(Request(RequestKind.DELETE, {"key": b"k"}))
        assert db.get(b"k") is None

    def test_digest_request(self, db):
        handler = RequestHandler(db)
        response = handler.handle(Request(RequestKind.DIGEST))
        assert response.ok

    def test_malformed_payload_becomes_error_response(self, db):
        """Regression: a missing payload field used to raise KeyError
        out of handle(), killing the serve loop."""
        handler = RequestHandler(db)
        response = handler.handle(Request(RequestKind.GET, {}))
        assert not response.ok
        assert "KeyError" in response.error
        snap = db.metrics.snapshot()
        assert snap["counters"]["requests.unexpected_errors"] == 1
        assert snap["counters"]["requests.errors"] == 1

    def test_expected_errors_are_not_counted_unexpected(self, db):
        handler = RequestHandler(db)
        response = handler.handle(
            Request(RequestKind.SQL, {"text": "NOT SQL AT ALL"})
        )
        assert not response.ok
        snap = db.metrics.snapshot()
        assert snap["counters"]["requests.unexpected_errors"] == 0
        assert snap["counters"]["requests.errors"] == 1

    def test_stats_request_returns_registry_snapshot(self, db):
        handler = RequestHandler(db)
        handler.handle(Request(RequestKind.PUT, {"key": b"k", "value": b"v"}))
        response = handler.handle(Request(RequestKind.STATS))
        assert response.ok
        snap = response.result
        assert snap["counters"]["db.commits"] == 1
        assert snap["counters"]["requests.kind.put"] == 1
        assert snap["gauges"]["ledger.height"] == db.ledger.height

    def test_request_latency_histogram_fills(self, db):
        handler = RequestHandler(db)
        for i in range(5):
            handler.handle(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )
        assert db.metrics.histogram("request.latency_seconds").count == 5


class TestProcessorNodes:
    def test_serve_one(self, db):
        mq = MessageQueue()
        node = ProcessorNode("p0", db, mq)
        envelope = mq.submit(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        assert node.serve_one()
        assert envelope.response.ok
        assert node.processed == 1

    def test_serve_one_times_out_quietly(self, db):
        node = ProcessorNode("p0", db, MessageQueue())
        assert not node.serve_one(timeout=0.01)

    def test_cluster_round_trip(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            put = cluster.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )
            assert put.ok
            got = cluster.submit(
                Request(RequestKind.GET, {"key": b"k"}, verify=True)
            )
            assert got.result == b"v"
            verifier = ClientVerifier()
            verifier.trust(got.digest)
            assert verifier.verify(got.proof)
        finally:
            cluster.stop()

    def test_cluster_requires_nodes(self):
        with pytest.raises(ValueError):
            SpitzCluster(nodes=0)

    def test_many_requests_distributed(self):
        cluster = SpitzCluster(nodes=3)
        cluster.start()
        try:
            for i in range(30):
                response = cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"k{i}".encode(), "value": b"v"},
                    )
                )
                assert response.ok
            processed = sum(node.processed for node in cluster.nodes)
            assert processed == 30
        finally:
            cluster.stop()

    def test_malformed_request_does_not_kill_node(self):
        """Regression: the serve loop survives a payload that raises
        a non-Spitz exception, and keeps answering afterwards."""
        cluster = SpitzCluster(nodes=1)
        cluster.start()
        try:
            bad = cluster.submit(Request(RequestKind.PUT, {}), timeout=2.0)
            assert not bad.ok
            assert "KeyError" in bad.error
            good = cluster.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"}),
                timeout=2.0,
            )
            assert good.ok
        finally:
            cluster.stop()


class TestShutdownDiscipline:
    def test_stop_fails_queued_requests_instead_of_stranding(self):
        """Regression: stop() used to leave queued envelopes pending
        forever; their clients blocked out their full submit timeout."""
        cluster = SpitzCluster(nodes=2)  # never started
        envelopes = [
            cluster.queue.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )
            for _ in range(5)
        ]
        cluster.stop()
        for envelope in envelopes:
            assert envelope.done.is_set()
            assert not envelope.response.ok
            assert "cluster stopped" in envelope.response.error
        snap = cluster.stats()
        assert snap["counters"]["cluster.failed_on_stop"] == 5

    def test_submit_after_stop_raises(self):
        cluster = SpitzCluster(nodes=1)
        cluster.start()
        cluster.stop()
        with pytest.raises(ClusterStoppedError):
            cluster.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )
        assert cluster.queue.rejected == 1

    def test_accepted_work_finishes_before_shutdown(self):
        """Envelopes accepted before stop() are processed, not failed:
        poison lands behind them in the queue."""
        cluster = SpitzCluster(nodes=1)
        envelopes = [
            cluster.queue.submit(
                Request(
                    RequestKind.PUT,
                    {"key": f"k{i}".encode(), "value": b"v"},
                )
            )
            for i in range(3)
        ]
        cluster.start()  # drains the backlog, then sees poison
        cluster.stop()
        for envelope in envelopes:
            assert envelope.done.is_set()
            assert envelope.response.ok

    def test_stop_is_idempotent(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        cluster.stop()
        cluster.stop()
        cluster.close()

    def test_drain_skips_poison(self):
        mq = MessageQueue()
        envelope = mq.submit(Request(RequestKind.DIGEST))
        mq.close()
        mq.poison(3)
        stranded = mq.drain()
        assert stranded == [envelope]


class TestPoisonPillDiscipline:
    def test_serve_one_requeues_poison_instead_of_swallowing(self, db):
        """Regression: serve_one() used to take a poison pill, return
        False and drop it — a concurrently running serve loop then
        missed its shutdown marker (or, for a never-started node, the
        pill was simply lost)."""
        from repro.core.node import _Poison

        mq = MessageQueue()
        node = ProcessorNode("p0", db, mq)
        mq.poison(1)
        assert not node.serve_one(timeout=0.1)
        # The pill is still there for the loop it belongs to.
        assert isinstance(mq.take(timeout=0.1), _Poison)

    def test_serve_loop_still_gets_its_pill_after_serve_one(self, db):
        """A direct serve_one() racing shutdown must not starve the
        threaded loop of its poison: stop() then joins promptly."""
        cluster = SpitzCluster(nodes=1)
        cluster.queue.poison(1)  # what stop() would enqueue
        assert not cluster.nodes[0].serve_one(timeout=0.2)
        cluster.start()
        cluster.stop()  # joins within its 2s bound; pill was available
        assert cluster.nodes[0]._thread is None


class TestTornProofDigest:
    def test_commit_between_proof_and_digest_cannot_tear(self, db):
        """Regression: handle() computed db.digest() after _dispatch
        returned, so a commit from another node in that window paired
        an old-block proof with a new-block digest and verification
        failed spuriously.  Proof and digest are now captured under
        the commit lock; the interleaved commit waits."""
        import threading
        import time

        db.put(b"k", b"v")
        handler = RequestHandler(db)
        release_writer = threading.Event()
        writer_done = threading.Event()

        original = handler._dispatch

        def stalling_dispatch(request):
            result, proof = original(request)
            # Proof exists; invite a concurrent commit before the
            # digest is captured.  With the fix the writer blocks on
            # the commit lock until handle() finishes.
            release_writer.set()
            time.sleep(0.15)
            return result, proof

        handler._dispatch = stalling_dispatch

        def writer():
            release_writer.wait(timeout=2.0)
            db.put(b"other", b"w")  # would reseal the ledger head
            writer_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        response = handler.handle(
            Request(RequestKind.GET, {"key": b"k"}, verify=True)
        )
        thread.join(timeout=5.0)
        assert writer_done.is_set()
        assert response.ok
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        assert verifier.verify(response.proof), (
            "proof and digest describe different ledger states"
        )
