"""Unit tests for the control layer: auditor, request handler, nodes."""

import pytest

from repro.core.auditor import Auditor
from repro.core.database import SpitzDatabase
from repro.core.node import MessageQueue, ProcessorNode, SpitzCluster
from repro.core.request_handler import (
    Request,
    RequestHandler,
    RequestKind,
    Response,
)
from repro.core.verifier import ClientVerifier
from repro.errors import VerificationError
from repro.indexes.siri import DELETE


class TestAuditor:
    def test_record_returns_block_and_proof(self, db):
        auditor = Auditor(db.ledger)
        block, proof = auditor.record({b"k": b"v"}, statements=("PUT",))
        assert block.height == 0
        assert proof.verify(db.ledger.digest().chain_digest)
        assert auditor.writes_recorded == 1

    def test_rejects_invalid_keys(self, db):
        auditor = Auditor(db.ledger)
        with pytest.raises(VerificationError):
            auditor.record({b"": b"v"})
        with pytest.raises(VerificationError):
            auditor.record({"not-bytes": b"v"})

    def test_prove(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"k": b"v"})
        value, proof = auditor.prove(b"k")
        assert value == b"v"
        assert auditor.proofs_issued == 2

    def test_prove_range(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"a": b"1", b"b": b"2", b"c": b"3"})
        entries, proof = auditor.prove_range(b"a", b"b")
        assert len(entries) == 2
        assert proof.verify(auditor.digest().chain_digest)

    def test_audit_chain(self, db):
        auditor = Auditor(db.ledger)
        for i in range(5):
            auditor.record({f"k{i}".encode(): b"v"})
        assert auditor.audit_chain()

    def test_record_delete(self, db):
        auditor = Auditor(db.ledger)
        auditor.record({b"k": b"v"})
        auditor.record({b"k": DELETE})
        assert db.ledger.get(b"k") is None


class TestRequestHandler:
    def test_put_then_get(self, db):
        handler = RequestHandler(db)
        put = handler.handle(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        assert put.ok
        got = handler.handle(Request(RequestKind.GET, {"key": b"k"}))
        assert got.result == b"v"

    def test_verified_get_carries_proof_and_digest(self, db):
        handler = RequestHandler(db)
        handler.handle(Request(RequestKind.PUT, {"key": b"k", "value": b"v"}))
        response = handler.handle(
            Request(RequestKind.GET, {"key": b"k"}, verify=True)
        )
        assert response.proof is not None
        verifier = ClientVerifier()
        verifier.trust(response.digest)
        assert verifier.verify(response.proof)

    def test_scan(self, loaded_db):
        handler = RequestHandler(loaded_db)
        response = handler.handle(
            Request(
                RequestKind.SCAN,
                {"low": b"key0000", "high": b"key0004"},
            )
        )
        assert len(response.result) == 5

    def test_sql_request(self, db):
        handler = RequestHandler(db)
        response = handler.handle(
            Request(
                RequestKind.SQL,
                {"text": "CREATE TABLE t (id INT, PRIMARY KEY (id))"},
            )
        )
        assert response.ok

    def test_history_request(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        handler = RequestHandler(db)
        response = handler.handle(
            Request(RequestKind.HISTORY, {"key": b"k"})
        )
        assert [v for _, v in response.result] == [b"v1", b"v2"]

    def test_errors_become_responses(self, db):
        handler = RequestHandler(db)
        response = handler.handle(
            Request(RequestKind.SQL, {"text": "NOT SQL AT ALL"})
        )
        assert not response.ok
        assert response.error

    def test_delete_request(self, db):
        handler = RequestHandler(db)
        handler.handle(Request(RequestKind.PUT, {"key": b"k", "value": b"v"}))
        handler.handle(Request(RequestKind.DELETE, {"key": b"k"}))
        assert db.get(b"k") is None

    def test_digest_request(self, db):
        handler = RequestHandler(db)
        response = handler.handle(Request(RequestKind.DIGEST))
        assert response.ok


class TestProcessorNodes:
    def test_serve_one(self, db):
        mq = MessageQueue()
        node = ProcessorNode("p0", db, mq)
        envelope = mq.submit(
            Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
        )
        assert node.serve_one()
        assert envelope.response.ok
        assert node.processed == 1

    def test_serve_one_times_out_quietly(self, db):
        node = ProcessorNode("p0", db, MessageQueue())
        assert not node.serve_one(timeout=0.01)

    def test_cluster_round_trip(self):
        cluster = SpitzCluster(nodes=2)
        cluster.start()
        try:
            put = cluster.submit(
                Request(RequestKind.PUT, {"key": b"k", "value": b"v"})
            )
            assert put.ok
            got = cluster.submit(
                Request(RequestKind.GET, {"key": b"k"}, verify=True)
            )
            assert got.result == b"v"
            verifier = ClientVerifier()
            verifier.trust(got.digest)
            assert verifier.verify(got.proof)
        finally:
            cluster.stop()

    def test_cluster_requires_nodes(self):
        with pytest.raises(ValueError):
            SpitzCluster(nodes=0)

    def test_many_requests_distributed(self):
        cluster = SpitzCluster(nodes=3)
        cluster.start()
        try:
            for i in range(30):
                response = cluster.submit(
                    Request(
                        RequestKind.PUT,
                        {"key": f"k{i}".encode(), "value": b"v"},
                    )
                )
                assert response.ok
            processed = sum(node.processed for node in cluster.nodes)
            assert processed == 30
        finally:
            cluster.stop()
