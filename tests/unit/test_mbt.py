"""Unit tests for the Merkle Bucket Tree."""

import random

import pytest

from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.siri import DELETE, SiriProof


def _items(n):
    return [(f"item-{i:05d}".encode(), f"v{i}".encode()) for i in range(n)]


class TestMbtBasics:
    def test_bucket_count_must_be_power_of_two(self, store):
        with pytest.raises(ValueError):
            MerkleBucketTree.empty(store, buckets=100)

    def test_empty_get(self, store):
        tree = MerkleBucketTree.empty(store, buckets=16)
        assert tree.get(b"x") is None

    def test_set_get(self, store):
        tree = MerkleBucketTree.empty(store, buckets=16).set(b"k", b"v")
        assert tree.get(b"k") == b"v"

    def test_overwrite(self, store):
        tree = MerkleBucketTree.empty(store, buckets=16)
        tree = tree.set(b"k", b"1").set(b"k", b"2")
        assert tree.get(b"k") == b"2"

    def test_delete(self, store):
        tree = MerkleBucketTree.from_items(store, _items(30), buckets=16)
        dropped = tree.apply({b"item-00005": DELETE})
        assert dropped.get(b"item-00005") is None
        assert tree.get(b"item-00005") == b"v5"

    def test_items_sorted(self, store):
        items = _items(120)
        tree = MerkleBucketTree.from_items(store, items, buckets=32)
        assert list(tree.items()) == sorted(items)

    def test_empty_batch_returns_self(self, store):
        tree = MerkleBucketTree.empty(store, buckets=8)
        assert tree.apply({}) is tree


class TestMbtInvariance:
    def test_order_independence(self, store):
        items = _items(200)
        bulk = MerkleBucketTree.from_items(store, items, buckets=64)
        shuffled = list(items)
        random.Random(5).shuffle(shuffled)
        incremental = MerkleBucketTree.empty(store, buckets=64)
        for start in range(0, len(shuffled), 11):
            incremental = incremental.apply(
                dict(shuffled[start:start + 11])
            )
        assert incremental.root == bulk.root

    def test_delete_matches_fresh_build(self, store):
        items = _items(80)
        full = MerkleBucketTree.from_items(store, items, buckets=32)
        dropped = full.apply({items[3][0]: DELETE})
        rebuilt = MerkleBucketTree.from_items(
            store, items[:3] + items[4:], buckets=32
        )
        assert dropped.root == rebuilt.root

    def test_different_bucket_counts_different_roots(self, store):
        items = _items(50)
        a = MerkleBucketTree.from_items(store, items, buckets=16)
        b = MerkleBucketTree.from_items(store, items, buckets=32)
        assert a.root != b.root


class TestMbtProofs:
    def test_presence_proof(self, store):
        tree = MerkleBucketTree.from_items(store, _items(150), buckets=64)
        value, proof = tree.get_with_proof(b"item-00042")
        assert value == b"v42"
        assert MerkleBucketTree.verify_proof(proof, tree.root, buckets=64)

    def test_absence_proof(self, store):
        tree = MerkleBucketTree.from_items(store, _items(150), buckets=64)
        value, proof = tree.get_with_proof(b"missing")
        assert value is None
        assert MerkleBucketTree.verify_proof(proof, tree.root, buckets=64)

    def test_forged_value_rejected(self, store):
        tree = MerkleBucketTree.from_items(store, _items(50), buckets=32)
        _value, proof = tree.get_with_proof(b"item-00001")
        forged = SiriProof(key=proof.key, value=b"evil", nodes=proof.nodes)
        assert not MerkleBucketTree.verify_proof(
            forged, tree.root, buckets=32
        )

    def test_wrong_bucket_count_rejected(self, store):
        tree = MerkleBucketTree.from_items(store, _items(50), buckets=32)
        _value, proof = tree.get_with_proof(b"item-00001")
        assert not MerkleBucketTree.verify_proof(
            proof, tree.root, buckets=64
        )

    def test_truncated_proof_rejected(self, store):
        tree = MerkleBucketTree.from_items(store, _items(50), buckets=32)
        _value, proof = tree.get_with_proof(b"item-00001")
        forged = SiriProof(
            key=proof.key, value=proof.value, nodes=proof.nodes[:-1]
        )
        assert not MerkleBucketTree.verify_proof(
            forged, tree.root, buckets=32
        )

    def test_proof_path_length_is_fixed(self, store):
        tree = MerkleBucketTree.from_items(store, _items(50), buckets=32)
        _value, proof = tree.get_with_proof(b"item-00001")
        # log2(32) interior nodes + 1 bucket node
        assert len(proof.nodes) == 6
