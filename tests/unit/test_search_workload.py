"""Unit tests for the streaming search workload (repro.workloads.search).

The load-bearing claims: draws are seeded/deterministic and zipf-
skewed, the row stream is a true generator, and peak memory while
streaming is bounded by the vocabulary — never by the row count (the
ISSUE's memory-guard satellite).
"""

import itertools
import tracemalloc

import pytest

from repro.workloads.search import (
    KEYWORD_COLUMN,
    NUMERIC_COLUMN,
    SearchRow,
    SearchWorkload,
    StreamingZipf,
)


class TestStreamingZipf:
    def test_deterministic_under_seed(self):
        a = StreamingZipf(1000, seed=7)
        b = StreamingZipf(1000, seed=7)
        assert [a.next() for _ in range(200)] == [
            b.next() for _ in range(200)
        ]

    def test_draws_stay_in_range(self):
        chooser = StreamingZipf(50, seed=3)
        draws = [chooser.next() for _ in range(2000)]
        assert all(0 <= rank < 50 for rank in draws)

    def test_rank_zero_is_hottest(self):
        chooser = StreamingZipf(1000, theta=0.99, seed=1)
        draws = [chooser.next() for _ in range(5000)]
        head = sum(1 for rank in draws if rank == 0)
        tail = sum(1 for rank in draws if rank >= 500)
        assert head > tail  # strong skew: one hot key beats 500 cold ones
        assert head / len(draws) > 0.05

    def test_degenerate_population(self):
        chooser = StreamingZipf(1, seed=0)
        assert [chooser.next() for _ in range(10)] == [0] * 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamingZipf(0)
        with pytest.raises(ValueError):
            StreamingZipf(10, theta=1.0)


class TestSearchWorkload:
    def test_rows_are_deterministic_and_streamed(self):
        workload = SearchWorkload(rows=100, seed=5)
        again = SearchWorkload(rows=100, seed=5)
        first = list(workload.rows())
        assert first == list(again.rows())
        assert len(first) == 100
        assert all(isinstance(row, SearchRow) for row in first)
        # rows() is a generator, not a materialized list.
        stream = SearchWorkload(rows=10**9, seed=5).rows()
        assert len(list(itertools.islice(stream, 5))) == 5

    def test_terms_mix_wiki_head_with_synthetic_tail(self):
        workload = SearchWorkload(rows=10, vocabulary=50, seed=0)
        assert workload.term_of(0).startswith("wiki/page-")
        assert workload.term_of(49).startswith("term-")

    def test_scores_are_quantized(self):
        workload = SearchWorkload(rows=200, score_levels=10, seed=2)
        scores = {row.score for row in workload.rows()}
        assert scores <= {float(level) for level in range(10)}

    def test_postings_cover_every_row_once(self):
        workload = SearchWorkload(rows=300, seed=4)
        terms, scores = workload.postings()
        assert sum(len(v) for v in terms.values()) == 300
        assert sum(len(v) for v in scores.values()) == 300
        every = sorted(
            entry for postings in terms.values() for entry in postings
        )
        assert every == [SearchWorkload.pk_bytes(pk) for pk in range(300)]

    def test_column_names_are_table_cells(self):
        assert "." in KEYWORD_COLUMN and "." in NUMERIC_COLUMN

    def test_streaming_memory_is_bounded_by_vocabulary(self):
        """Memory guard: iterating 200k rows must not materialize them.

        The budget (256 KB) holds the chooser, the vocabulary list and
        per-row garbage — it is ~50x smaller than what a materialized
        list of 200k SearchRow objects would need.
        """
        workload = SearchWorkload(rows=200_000, vocabulary=500, seed=9)
        count = 0
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            for _row in workload.rows():
                count += 1
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert count == 200_000
        assert peak < 256 * 1024, f"streaming peak {peak} bytes"
