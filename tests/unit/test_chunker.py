"""Unit tests for content-defined and fixed-size chunking."""

import random

import pytest

from repro.forkbase.chunker import FixedSizeChunker, RollingChunker


def _random_bytes(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestFixedSizeChunker:
    def test_reassembles(self):
        data = _random_bytes(10_000)
        chunks = FixedSizeChunker(1024).split(data)
        assert b"".join(chunks) == data

    def test_chunk_sizes(self):
        chunks = FixedSizeChunker(100).split(b"x" * 350)
        assert [len(c) for c in chunks] == [100, 100, 100, 50]

    def test_empty_input(self):
        assert FixedSizeChunker(10).split(b"") == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_insert_shifts_all_later_chunks(self):
        data = _random_bytes(8000)
        shifted = b"!" + data
        chunker = FixedSizeChunker(512)
        original = set(chunker.split(data))
        after = set(chunker.split(shifted))
        # Fixed-size chunking shares almost nothing after a 1-byte insert.
        assert len(original & after) <= 1


class TestRollingChunker:
    def test_reassembles(self):
        data = _random_bytes(50_000)
        chunks = RollingChunker().split(data)
        assert b"".join(chunks) == data

    def test_deterministic(self):
        data = _random_bytes(20_000, seed=3)
        assert RollingChunker().split(data) == RollingChunker().split(data)

    def test_empty_input(self):
        assert RollingChunker().split(b"") == []

    def test_respects_min_and_max(self):
        chunker = RollingChunker(mask_bits=6, min_size=256, max_size=1024)
        chunks = chunker.split(_random_bytes(30_000))
        for chunk in chunks[:-1]:
            assert 256 <= len(chunk) <= 1024
        assert len(chunks[-1]) <= 1024

    def test_expected_chunk_size_order_of_magnitude(self):
        chunker = RollingChunker(mask_bits=9, min_size=64, max_size=65536)
        chunks = chunker.split(_random_bytes(200_000, seed=1))
        mean = sum(len(c) for c in chunks) / len(chunks)
        # Expected size ~ 2**9 + min_size; allow a wide band.
        assert 128 < mean < 4096

    def test_localized_edit_preserves_most_chunks(self):
        data = bytearray(_random_bytes(64_000, seed=5))
        chunker = RollingChunker()
        original = set(chunker.split(bytes(data)))
        data[30_000:30_100] = b"Z" * 100  # same-length localized edit
        edited = set(chunker.split(bytes(data)))
        shared = len(original & edited)
        assert shared / len(original) > 0.6

    def test_insertion_resynchronizes(self):
        # The content-defined property: after an insertion, chunking
        # resynchronizes and most chunks stay identical.
        data = _random_bytes(64_000, seed=6)
        edited = data[:10_000] + b"INSERTED" + data[10_000:]
        chunker = RollingChunker()
        original = set(chunker.split(data))
        after = set(chunker.split(edited))
        assert len(original & after) / len(original) > 0.6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RollingChunker(mask_bits=0)
        with pytest.raises(ValueError):
            RollingChunker(min_size=10, window=48)
        with pytest.raises(ValueError):
            RollingChunker(min_size=512, max_size=256)

    def test_small_input_single_chunk(self):
        chunker = RollingChunker(min_size=256)
        assert chunker.split(b"tiny") == [b"tiny"]
