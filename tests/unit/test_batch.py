"""Unit tests for deferred batch verification."""

import pytest

from repro.errors import TamperDetectedError
from repro.txn.batch import DeferredVerifier


class TestDeferredVerifier:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeferredVerifier(batch_size=0)
        with pytest.raises(ValueError):
            DeferredVerifier(on_failure="explode")

    def test_auto_flush_at_batch_size(self):
        verifier = DeferredVerifier(batch_size=3)
        ran = []
        for i in range(3):
            verifier.submit(f"c{i}", lambda i=i: ran.append(i) or True)
        assert ran == [0, 1, 2]
        assert verifier.pending == 0
        assert verifier.flushes == 1

    def test_checks_deferred_until_flush(self):
        verifier = DeferredVerifier(batch_size=10)
        ran = []
        verifier.submit("c", lambda: ran.append(1) or True)
        assert ran == []
        verifier.flush()
        assert ran == [1]

    def test_failure_raises_by_default(self):
        verifier = DeferredVerifier(batch_size=10)
        verifier.submit("good", lambda: True)
        verifier.submit("bad", lambda: False)
        with pytest.raises(TamperDetectedError, match="bad"):
            verifier.flush()

    def test_failed_check_remains_inspectable(self):
        verifier = DeferredVerifier(batch_size=10)
        verifier.submit("bad", lambda: False)
        verifier.submit("after", lambda: True)
        with pytest.raises(TamperDetectedError):
            verifier.flush()
        # The failing check and everything after stay queued for audit.
        assert verifier.pending == 2

    def test_collect_mode_gathers_failures(self):
        verifier = DeferredVerifier(batch_size=10, on_failure="collect")
        verifier.submit("ok", lambda: True)
        verifier.submit("bad1", lambda: False)
        verifier.submit("bad2", lambda: False)
        failed = verifier.flush()
        assert failed == ["bad1", "bad2"]
        assert verifier.failures == ["bad1", "bad2"]
        assert verifier.verified == 3

    def test_flush_empty_queue(self):
        verifier = DeferredVerifier()
        assert verifier.flush() == []
