"""Unit tests for the JSON document interface."""

import pytest

from repro.core.documents import Collection, DocumentStore
from repro.errors import QueryError, SchemaError


@pytest.fixture
def docs():
    return DocumentStore()


@pytest.fixture
def patients(docs):
    collection = docs.collection(
        "patients",
        schema={"required": ["name"], "types": {"name": "str", "age": "int"}},
    )
    collection.put("p1", {"name": "alice", "age": 34, "city": "oslo"})
    collection.put("p2", {"name": "bob", "age": 58, "city": "oslo"})
    collection.put("p3", {"name": "carol", "age": 41, "city": "turin"})
    return collection


class TestCrud:
    def test_put_get(self, docs):
        c = docs.collection("c")
        c.put("d1", {"x": 1})
        assert c.get("d1") == {"x": 1}

    def test_get_missing(self, docs):
        assert docs.collection("c").get("ghost") is None

    def test_replace(self, patients):
        patients.put("p1", {"name": "alice", "age": 35})
        assert patients.get("p1")["age"] == 35

    def test_delete(self, patients):
        assert patients.delete("p1")
        assert patients.get("p1") is None
        assert not patients.delete("p1")

    def test_ids_sorted(self, patients):
        assert patients.ids() == ["p1", "p2", "p3"]

    def test_nested_documents(self, docs):
        c = docs.collection("c")
        document = {"meta": {"tags": ["a", "b"], "depth": {"x": 1}}}
        c.put("d", document)
        assert c.get("d") == document

    def test_invalid_collection_name(self, docs):
        with pytest.raises(SchemaError):
            docs.collection("")

    def test_invalid_doc_id(self, docs):
        with pytest.raises(SchemaError):
            docs.collection("c").put("", {"x": 1})

    def test_collections_isolated(self, docs):
        docs.collection("a").put("d", {"v": 1})
        docs.collection("b").put("d", {"v": 2})
        assert docs.collection("a").get("d") == {"v": 1}
        assert docs.collection("b").get("d") == {"v": 2}


class TestSchema:
    def test_required_enforced(self, patients):
        with pytest.raises(SchemaError, match="required"):
            patients.put("p9", {"age": 1})

    def test_types_enforced(self, patients):
        with pytest.raises(SchemaError):
            patients.put("p9", {"name": "x", "age": "not-int"})

    def test_bool_is_not_int(self, patients):
        with pytest.raises(SchemaError):
            patients.put("p9", {"name": "x", "age": True})

    def test_unknown_schema_type(self, docs):
        c = docs.collection("c", schema={"types": {"x": "widget"}})
        with pytest.raises(SchemaError):
            c.put("d", {"x": 1})

    def test_extra_fields_allowed(self, patients):
        patients.put("p9", {"name": "dora", "anything": [1, 2]})
        assert patients.get("p9")["anything"] == [1, 2]

    def test_conflicting_schema_rejected(self, docs):
        docs.collection("c", schema={"required": ["a"]})
        with pytest.raises(SchemaError):
            docs.collection("c", schema={"required": ["b"]})

    def test_non_object_rejected(self, docs):
        with pytest.raises(SchemaError):
            docs.collection("c").put("d", [1, 2, 3])


class TestQueries:
    def test_find_equality(self, patients):
        found = patients.find("city", value="oslo")
        assert [doc_id for doc_id, _ in found] == ["p1", "p2"]

    def test_find_range(self, patients):
        found = patients.find("age", low=40, high=60)
        assert sorted(doc_id for doc_id, _ in found) == ["p2", "p3"]

    def test_find_requires_arguments(self, patients):
        with pytest.raises(QueryError):
            patients.find("age")

    def test_find_reflects_updates(self, patients):
        patients.put("p1", {"name": "alice", "age": 34, "city": "turin"})
        assert [d for d, _ in patients.find("city", value="oslo")] == ["p2"]
        found = [d for d, _ in patients.find("city", value="turin")]
        assert found == ["p1", "p3"]

    def test_find_after_delete(self, patients):
        patients.delete("p2")
        assert [d for d, _ in patients.find("city", value="oslo")] == ["p1"]


class TestVerificationAndHistory:
    def test_verified_get(self, docs, patients):
        verifier = docs.verifier()
        document, proof = patients.get_verified("p1")
        assert document["name"] == "alice"
        assert verifier.verify(proof)

    def test_verified_absence(self, docs, patients):
        verifier = docs.verifier()
        document, proof = patients.get_verified("ghost")
        assert document is None
        assert verifier.verify(proof)

    def test_history(self, patients):
        patients.put("p1", {"name": "alice", "age": 35})
        patients.delete("p1")
        states = [state for _, state in patients.history("p1")]
        # p1 was written in the very first block, so history starts
        # with the document itself (no prior "absent" state exists).
        assert states[0]["age"] == 34
        assert states[1]["age"] == 35
        assert states[2] is None

    def test_get_at_block(self, docs, patients):
        height = docs.db.ledger.height - 1
        patients.put("p1", {"name": "alice", "age": 99})
        assert patients.get_at_block("p1", height)["age"] == 34
