"""Unit tests for the timestamp oracle and hybrid logical clocks."""

import threading

import pytest

from repro.txn.hlc import HLCTimestamp, HybridLogicalClock
from repro.txn.oracle import TimestampOracle


class TestTimestampOracle:
    def test_strictly_increasing(self):
        oracle = TimestampOracle()
        stamps = [oracle.next_timestamp() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_current_tracks_latest(self):
        oracle = TimestampOracle()
        assert oracle.current() == 0
        last = [oracle.next_timestamp() for _ in range(5)][-1]
        assert oracle.current() == last

    def test_lease_refills_are_batched(self):
        oracle = TimestampOracle(lease_size=100)
        for _ in range(250):
            oracle.next_timestamp()
        assert oracle.lease_refills == 3
        assert oracle.allocated == 250

    def test_invalid_lease_size(self):
        with pytest.raises(ValueError):
            TimestampOracle(lease_size=0)

    def test_thread_safety_uniqueness(self):
        oracle = TimestampOracle(lease_size=16)
        seen = []
        lock = threading.Lock()

        def worker():
            local = [oracle.next_timestamp() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 4000


class TestHlc:
    def test_ordering_is_total(self):
        a = HLCTimestamp(5, 0)
        b = HLCTimestamp(5, 1)
        c = HLCTimestamp(6, 0)
        assert a < b < c
        assert not (a < a)
        assert a == HLCTimestamp(5, 0)

    def test_as_int_preserves_order(self):
        a = HLCTimestamp(5, 900)
        b = HLCTimestamp(6, 0)
        assert a.as_int() < b.as_int()

    def test_local_events_monotonic_with_frozen_clock(self):
        clock = HybridLogicalClock(physical_clock=lambda: 100)
        stamps = [clock.now() for _ in range(10)]
        assert all(x < y for x, y in zip(stamps, stamps[1:]))
        assert all(s.wall == 100 for s in stamps)

    def test_receive_preserves_causality_despite_skew(self):
        ahead = HybridLogicalClock(physical_clock=lambda: 200)
        behind = HybridLogicalClock(physical_clock=lambda: 50)
        sent = ahead.now()
        received = behind.update(sent)
        assert received > sent
        assert received.wall == 200  # adopted the remote wall

    def test_advancing_physical_resets_logical(self):
        times = iter([10, 10, 20])
        clock = HybridLogicalClock(physical_clock=lambda: next(times))
        first = clock.now()
        second = clock.now()
        third = clock.now()
        assert second.logical == first.logical + 1
        assert third == HLCTimestamp(20, 0)

    def test_update_with_stale_remote(self):
        clock = HybridLogicalClock(physical_clock=lambda: 100)
        clock.now()
        stale = HLCTimestamp(10, 5)
        merged = clock.update(stale)
        assert merged.wall == 100

    def test_peek_does_not_advance(self):
        clock = HybridLogicalClock(physical_clock=lambda: 7)
        stamp = clock.now()
        assert clock.peek() == stamp
        assert clock.peek() == stamp


class TestHlcLogicalOverflow:
    """Regression: as_int() packs `logical` into 20 bits, but a frozen
    or slow physical clock used to grow `logical` without bound — past
    2^20 same-wall events the counter spilled into the wall bits and
    silently corrupted timestamp order.  The clock now carries the
    overflow into `wall` (one borrowed tick) instead."""

    def test_carry_keeps_as_int_monotonic_at_the_boundary(self):
        from repro.txn.hlc import MAX_LOGICAL

        clock = HybridLogicalClock(physical_clock=lambda: 100)
        clock.now()
        # White-box: park the counter just under the packed field's
        # bound, then allocate across it.
        clock._logical = MAX_LOGICAL - 4
        stamps = [clock.now() for _ in range(16)]
        ints = [stamp.as_int() for stamp in stamps]
        assert ints == sorted(set(ints)), "as_int order corrupted"
        assert all(b > a for a, b in zip(ints, ints[1:]))
        # The overflow borrowed a wall tick; logical restarted.
        assert stamps[-1].wall == 101
        assert stamps[-1].logical < MAX_LOGICAL

    def test_update_carries_overflow_from_remote(self):
        from repro.txn.hlc import MAX_LOGICAL

        clock = HybridLogicalClock(physical_clock=lambda: 100)
        clock.now()
        merged = clock.update(HLCTimestamp(wall=100, logical=MAX_LOGICAL))
        # max(local, remote) + 1 would overflow the field: carried.
        assert merged.wall == 101
        assert merged.logical == 0
        assert merged.as_int() > HLCTimestamp(100, MAX_LOGICAL).as_int()

    def test_hand_built_overflowing_timestamp_is_refused(self):
        from repro.txn.hlc import MAX_LOGICAL

        with pytest.raises(OverflowError):
            HLCTimestamp(wall=1, logical=MAX_LOGICAL + 1).as_int()

    @pytest.mark.stress
    def test_frozen_clock_monotonic_across_2_to_the_20_allocations(self):
        """The full property, no white-box shortcuts: >2^20 allocations
        under a frozen physical clock stay strictly as_int-monotonic."""
        clock = HybridLogicalClock(physical_clock=lambda: 7)
        previous = clock.now().as_int()
        wrapped = False
        for _ in range((1 << 20) + 64):
            stamp = clock.now()
            packed = stamp.as_int()
            assert packed > previous
            previous = packed
            if stamp.wall > 7:
                wrapped = True
        assert wrapped, "the logical counter never carried into wall"
