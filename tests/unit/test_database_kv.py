"""Unit tests for the SpitzDatabase key-value surface."""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.errors import TransactionAborted


class TestKvBasics:
    def test_put_get(self, db):
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"

    def test_get_missing(self, db):
        assert db.get(b"ghost") is None

    def test_overwrite(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"

    def test_delete(self, db):
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_put_batch_single_block(self, db):
        height = db.ledger.height
        db.put_batch({b"a": b"1", b"b": b"2", b"c": b"3"})
        assert db.ledger.height == height + 1
        assert db.get(b"b") == b"2"

    def test_scan(self, loaded_db):
        rows = loaded_db.scan(b"key0010", b"key0014")
        assert [k for k, _ in rows] == [
            f"key{i:04d}".encode() for i in range(10, 15)
        ]

    def test_history(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        history = db.history(b"k")
        assert [value for _, value in history] == [b"v1", b"v2"]
        stamps = [ts for ts, _ in history]
        assert stamps == sorted(stamps)

    def test_temporal_read(self, db):
        db.put(b"k", b"old")
        height = db.ledger.height - 1
        db.put(b"k", b"new")
        assert db.get_at_block(b"k", height) == b"old"
        assert db.get(b"k") == b"new"


class TestKvVerification:
    def test_verified_read(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        value, proof = loaded_db.get_verified(b"key0005")
        assert value == b"value5"
        assert verifier.verify(proof)

    def test_verified_absence(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        value, proof = loaded_db.get_verified(b"nope")
        assert value is None
        assert verifier.verify(proof)

    def test_put_with_proof(self, db):
        verifier = ClientVerifier()
        block, proof = db.put_with_proof(b"k", b"v")
        verifier.trust(db.digest())
        assert verifier.verify(proof)
        assert proof.value == b"v"

    def test_scan_verified(self, loaded_db):
        verifier = ClientVerifier()
        verifier.trust(loaded_db.digest())
        entries, proof = loaded_db.scan_verified(b"key0000", b"key0009")
        assert len(entries) == 10
        assert verifier.verify(proof)
        assert entries == loaded_db.scan(b"key0000", b"key0009")

    def test_chain_audit(self, loaded_db):
        assert loaded_db.verify_chain()

    def test_historical_verified_read(self, db):
        db.put(b"k", b"v1")
        height = db.ledger.height - 1
        db.put(b"k", b"v2")
        value, proof = db.get_at_block_verified(b"k", height)
        assert value == b"v1"
        assert proof.verify(db.ledger.block(height).chain_digest)


class TestBlockBatching:
    def test_batched_writes_seal_fewer_blocks(self):
        db = SpitzDatabase(block_batch=10)
        for i in range(25):
            db.put(f"k{i}".encode(), b"v")
        assert db.ledger.height == 2  # two full batches sealed
        db.flush_ledger()
        assert db.ledger.height == 3

    def test_reads_see_unsealed_writes(self):
        db = SpitzDatabase(block_batch=100)
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"  # storage layer is immediate

    def test_digest_flushes(self):
        db = SpitzDatabase(block_batch=100)
        db.put(b"k", b"v")
        digest = db.digest()
        assert digest.height == 1
        value, proof = db.get_verified(b"k")
        assert value == b"v"
        assert proof.verify(digest.chain_digest)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            SpitzDatabase(block_batch=0)


class TestKvTransactions:
    def test_commit_reaches_ledger(self, db):
        with db.transaction() as txn:
            txn.put(b"a", b"1")
            txn.put(b"b", b"2")
        assert db.get(b"a") == b"1"
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        value, proof = db.get_verified(b"b")
        assert value == b"2" and verifier.verify(proof)

    def test_abort_leaves_no_trace(self, db):
        height = db.ledger.height
        txn = db.transaction()
        txn.put(b"a", b"1")
        txn.abort()
        assert db.get(b"a") is None
        assert db.ledger.height == height

    def test_transactional_read_sees_autocommit_writes(self, db):
        db.put(b"k", b"auto")
        with db.transaction() as txn:
            assert txn.get(b"k") == b"auto"

    def test_transactional_delete(self, db):
        db.put(b"k", b"v")
        with db.transaction() as txn:
            txn.delete(b"k")
        assert db.get(b"k") is None

    def test_conflicting_transactions(self, db):
        db.put(b"k", b"0")
        a = db.transaction()
        b = db.transaction()
        assert a.get(b"k") == b"0"
        assert b.get(b"k") == b"0"
        a.put(b"k", b"a")
        b.put(b"k", b"b")
        a.commit()
        with pytest.raises(TransactionAborted):
            b.commit()
        assert db.get(b"k") == b"a"

    def test_autocommit_conflicts_with_transaction(self, db):
        db.put(b"k", b"0")
        txn = db.transaction()
        assert txn.get(b"k") == b"0"
        db.put(b"k", b"sneaky")  # auto-commit between read and commit
        txn.put(b"k", b"txn")
        with pytest.raises(TransactionAborted):
            txn.commit()
