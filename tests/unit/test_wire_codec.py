"""Unit tests for the JSON wire codec (``repro.serve.codec``).

The codec is the trust boundary of the service plane: everything a
remote client learns about the database crosses it.  The tests pin
three properties:

- **round trip**: every RequestKind, every Response shape, and both
  proof kinds decode back to objects the in-process path would have
  produced — including proofs that still *verify* after the trip;
- **strictness**: malformed frames (bad base64, truncated proofs,
  unknown kinds) raise :class:`WireCodecError`, never arbitrary
  exceptions, and never construct partial objects;
- **JSON safety**: every encoded frame survives ``json.dumps`` —
  there is no object that encodes but cannot be put on the wire.
"""

import json

import pytest

from repro.core.database import SpitzDatabase
from repro.core.ledger import LedgerDigest
from repro.core.proofs import (
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.request_handler import Request, RequestKind, Response
from repro.core.verifier import ClientVerifier
from repro.crypto.hashing import Digest
from repro.serve.codec import (
    WireCodecError,
    decode_request,
    decode_response,
    decode_value,
    encode_request,
    encode_response,
    encode_value,
    to_jsonable,
)


def _roundtrip_value(value):
    return decode_value(json.loads(json.dumps(encode_value(value))))


def _loaded_db(n: int = 8) -> SpitzDatabase:
    db = SpitzDatabase(block_batch=4)
    for i in range(n):
        db.put(b"key:%02d" % i, b"value-%d" % i)
    db.flush_ledger()
    return db


class TestValueFraming:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -3, 1.5, "text", ""):
            assert _roundtrip_value(value) == value

    def test_bytes_are_tagged_base64(self):
        frame = encode_value(b"\x00\xffbinary")
        assert set(frame) == {"$bytes"}
        assert decode_value(frame) == b"\x00\xffbinary"

    def test_nested_containers_roundtrip(self):
        value = {"a": [b"x", {"b": b"y"}, 3], "c": "s"}
        assert _roundtrip_value(value) == value

    def test_tuples_become_lists(self):
        assert encode_value((1, 2)) == [1, 2]
        assert _roundtrip_value((b"a", b"b")) == [b"a", b"b"]

    def test_ledger_digest_roundtrips_with_type(self):
        digest = _loaded_db().digest()
        back = _roundtrip_value(digest)
        assert isinstance(back, LedgerDigest)
        assert back == digest
        assert isinstance(back.chain_digest, Digest)

    def test_unencodable_object_raises(self):
        with pytest.raises(WireCodecError):
            encode_value(object())

    def test_non_string_dict_key_raises(self):
        with pytest.raises(WireCodecError):
            encode_value({1: "x"})

    def test_bad_base64_raises_codec_error(self):
        with pytest.raises(WireCodecError):
            decode_value({"$bytes": "!!! not base64 !!!"})

    def test_bad_digest_hex_raises_codec_error(self):
        digest_frame = encode_value(_loaded_db().digest())
        digest_frame["$ledger_digest"]["tree_root"] = "zz-not-hex"
        with pytest.raises(WireCodecError):
            decode_value(digest_frame)


class TestProofFraming:
    def test_point_proof_roundtrips_and_verifies(self):
        db = _loaded_db()
        _value, proof = db.get_verified(b"key:03")
        back = _roundtrip_value(proof)
        assert isinstance(back, LedgerProof)
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifier.verify_or_raise(back)

    def test_absence_proof_roundtrips_and_verifies(self):
        db = _loaded_db()
        _value, proof = db.get_verified(b"no-such-key")
        back = _roundtrip_value(proof)
        assert isinstance(back, LedgerProof)
        assert back.siri.value is None
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifier.verify_or_raise(back)

    def test_range_proof_roundtrips_and_verifies(self):
        db = _loaded_db()
        _entries, proof = db.scan_verified(b"key:02", b"key:05")
        back = _roundtrip_value(proof)
        assert isinstance(back, LedgerRangeProof)
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifier.verify_or_raise(back)

    def test_multi_proof_roundtrips_and_verifies(self):
        db = _loaded_db()
        values, proof = db.get_many_verified(
            [b"key:01", b"key:05", b"no-such-key"]
        )
        assert values == [b"value-1", b"value-5", None]
        back = _roundtrip_value(proof)
        assert isinstance(back, LedgerMultiProof)
        assert back == proof
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifier.verify_or_raise(back)

    def test_truncated_multi_proof_frame_raises(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified([b"key:01", b"key:02"])
        frame = encode_value(proof)
        del frame["$multi_proof"]["root"]
        with pytest.raises(WireCodecError):
            decode_value(frame)

    def test_tampered_multi_proof_fails_verification_not_decoding(self):
        db = _loaded_db()
        _values, proof = db.get_many_verified([b"key:01", b"key:02"])
        frame = encode_value(proof)
        entries = frame["$multi_proof"]["entries"]
        entries[0][1] = entries[1][1]  # claim another key's value
        back = decode_value(frame)
        assert isinstance(back, LedgerMultiProof)
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert not verifier.verify(back)

    def test_truncated_proof_frame_raises(self):
        db = _loaded_db()
        _value, proof = db.get_verified(b"key:01")
        frame = encode_value(proof)
        del frame["$proof"]["block"]["chain_digest"]
        with pytest.raises(WireCodecError):
            decode_value(frame)

    def test_tampered_proof_fails_verification_not_decoding(self):
        # A syntactically valid frame with a flipped byte must decode
        # fine (the codec is not the verifier) and then fail the
        # client-side check — tampering is caught where the paper says
        # it is, at verification.
        db = _loaded_db()
        _value, proof = db.get_verified(b"key:01")
        frame = encode_value(proof)
        good = frame["$proof"]["block"]["tree_root"]
        frame["$proof"]["block"]["tree_root"] = (
            ("0" if good[0] != "0" else "1") + good[1:]
        )
        back = decode_value(frame)
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        assert not verifier.verify(back)


class TestRequestEnvelopes:
    PAYLOADS = {
        RequestKind.GET: {"key": b"k"},
        RequestKind.MULTI_GET: {"keys": [b"a", b"b", b"c"]},
        RequestKind.PUT: {"key": b"k", "value": b"v"},
        RequestKind.DELETE: {"key": b"k"},
        RequestKind.SCAN: {"low": b"a", "high": b"z"},
        RequestKind.SQL: {"statement": "SELECT 1"},
        RequestKind.HISTORY: {"key": b"k"},
        RequestKind.DIGEST: {},
        RequestKind.STATS: {"traces": True},
        RequestKind.SEARCH: {
            "column": "items.price",
            "predicate": {"op": "ge", "value": 10.0},
        },
    }

    def test_every_kind_roundtrips(self):
        # Parametrized by hand so a new RequestKind without a payload
        # entry fails loudly here.
        assert set(self.PAYLOADS) == set(RequestKind)
        for kind, payload in self.PAYLOADS.items():
            request = Request(kind, payload, verify=True)
            frame = json.loads(json.dumps(encode_request(request)))
            back = decode_request(frame)
            assert back.kind is kind
            assert back.payload == payload
            assert back.verify is True

    def test_unknown_kind_raises(self):
        with pytest.raises(WireCodecError):
            decode_request({"kind": "drop-table", "payload": {}})

    def test_non_object_frame_raises(self):
        with pytest.raises(WireCodecError):
            decode_request(["get"])

    def test_non_object_payload_raises(self):
        with pytest.raises(WireCodecError):
            decode_request({"kind": "get", "payload": [1, 2]})


class TestResponseEnvelopes:
    def test_ok_response_with_proof_and_digest(self):
        db = _loaded_db()
        value, proof = db.get_verified(b"key:04")
        response = Response(
            ok=True, result=value, proof=proof, digest=db.digest()
        )
        frame = json.loads(json.dumps(encode_response(response)))
        back = decode_response(frame)
        assert back.ok and back.result == value
        assert isinstance(back.proof, LedgerProof)
        assert back.digest == db.digest()
        verifier = ClientVerifier()
        verifier.trust(back.digest)
        verifier.verify_or_raise(back.proof)

    def test_error_response_keeps_retryable_flag(self):
        response = Response(
            ok=False, error="shed after deadline", retryable=True
        )
        back = decode_response(
            json.loads(json.dumps(encode_response(response)))
        )
        assert not back.ok
        assert back.retryable is True
        assert back.error == "shed after deadline"

    def test_bad_digest_frame_raises(self):
        with pytest.raises(WireCodecError):
            decode_response({"ok": True, "digest": {"$bytes": "AAAA"}})


class TestToJsonable:
    def test_snapshot_dict_is_json_safe(self):
        db = _loaded_db()
        payload = to_jsonable(db.metrics_snapshot())
        json.dumps(payload)  # must not raise
        assert set(payload) >= {"counters", "gauges", "histograms"}

    def test_exotic_values_degrade_to_repr_not_raise(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        payload = to_jsonable({"x": Weird(), (1, 2): "pair-key"})
        json.dumps(payload)
        assert payload["x"] == "<weird>"
        assert payload["(1, 2)"] == "pair-key"

    def test_proofs_still_frame_structurally(self):
        db = _loaded_db()
        _value, proof = db.get_verified(b"key:00")
        payload = to_jsonable({"proof": proof})
        json.dumps(payload)
        assert "$proof" in payload["proof"]
