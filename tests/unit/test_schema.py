"""Unit tests for table schemas and the value codec."""

import pytest

from repro.errors import SchemaError
from repro.core.schema import (
    Column,
    TableSchema,
    decode_pk,
    decode_value,
    encode_pk,
    encode_value,
)


class TestColumn:
    def test_valid(self):
        Column("price", "float")

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_reserved_name(self):
        with pytest.raises(SchemaError):
            Column("_hidden", "int")
        with pytest.raises(SchemaError):
            Column("", "int")


class TestTableSchema:
    def _schema(self):
        return TableSchema.make(
            "items",
            [("id", "int"), ("name", "str"), ("price", "float")],
            "id",
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.make("t", [("a", "int"), ("a", "str")], "a")

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema.make("t", [("a", "int")], "b")

    def test_column_lookup(self):
        schema = self._schema()
        assert schema.column("name").type == "str"
        with pytest.raises(SchemaError):
            schema.column("ghost")

    def test_validate_row_ok(self):
        self._schema().validate_row({"id": 1, "name": "x", "price": 2.5})

    def test_validate_row_missing_column(self):
        with pytest.raises(SchemaError, match="missing"):
            self._schema().validate_row({"id": 1, "name": "x"})

    def test_validate_row_extra_column(self):
        with pytest.raises(SchemaError, match="unknown"):
            self._schema().validate_row(
                {"id": 1, "name": "x", "price": 1.0, "bogus": 1}
            )

    def test_validate_row_wrong_type(self):
        with pytest.raises(SchemaError):
            self._schema().validate_row(
                {"id": "one", "name": "x", "price": 1.0}
            )

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            self._schema().validate_row(
                {"id": True, "name": "x", "price": 1.0}
            )

    def test_logical_keys_distinct_per_column(self):
        schema = self._schema()
        pk = schema.pk_bytes(5)
        assert schema.logical_key("name", pk) != schema.logical_key(
            "price", pk
        )

    def test_logical_prefix_covers_column(self):
        schema = self._schema()
        low, high = schema.logical_prefix("name")
        key = schema.logical_key("name", schema.pk_bytes(3))
        assert low <= key <= high


class TestValueCodec:
    @pytest.mark.parametrize(
        "type_name,value",
        [
            ("int", 42),
            ("int", -17),
            ("int", 0),
            ("float", 3.25),
            ("float", -0.0),
            ("str", "héllo wörld"),
            ("str", ""),
            ("bool", True),
            ("bool", False),
            ("bytes", b"\x00\xff raw"),
            ("json", {"a": [1, 2], "b": None}),
            ("json", []),
        ],
    )
    def test_round_trip(self, type_name, value):
        assert decode_value(encode_value(type_name, value)) == value

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            encode_value("thing", 1)

    def test_unknown_tag(self):
        with pytest.raises(SchemaError):
            decode_value(b"zpayload")


class TestPkCodec:
    def test_int_order_preserving(self):
        values = [-(2**40), -1, 0, 1, 7, 2**40]
        encoded = [encode_pk("int", v) for v in values]
        assert encoded == sorted(encoded)

    @pytest.mark.parametrize(
        "type_name,value",
        [("int", -5), ("int", 12345), ("str", "alice"), ("bytes", b"\x01")],
    )
    def test_round_trip(self, type_name, value):
        assert decode_pk(type_name, encode_pk(type_name, value)) == value

    def test_float_pk_rejected(self):
        with pytest.raises(SchemaError):
            encode_pk("float", 1.5)
