"""Unit tests for canonical encoding and digests."""

import pytest

from repro.crypto.hashing import (
    Digest,
    EMPTY_DIGEST,
    canonical_encode,
    hash_bytes,
    hash_many,
    hash_value,
)


class TestDigest:
    def test_requires_32_bytes(self):
        with pytest.raises(ValueError):
            Digest(b"short")

    def test_round_trips_hex(self):
        digest = hash_bytes(b"abc")
        assert Digest.from_hex(digest.hex()) == digest

    def test_is_usable_as_dict_key(self):
        mapping = {hash_bytes(b"a"): 1, hash_bytes(b"b"): 2}
        assert mapping[hash_bytes(b"a")] == 1

    def test_short_is_prefix_of_hex(self):
        digest = hash_bytes(b"xyz")
        assert digest.hex().startswith(digest.short)

    def test_empty_digest_matches_sha256_of_empty(self):
        assert EMPTY_DIGEST == hash_bytes(b"")


class TestCanonicalEncode:
    def test_distinct_types_encode_differently(self):
        values = [None, True, False, 0, 0.0, "", b"", (), {}]
        encodings = [canonical_encode(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_int_and_string_of_same_text_differ(self):
        assert canonical_encode(42) != canonical_encode("42")

    def test_list_concatenation_is_unambiguous(self):
        assert canonical_encode(["ab", "c"]) != canonical_encode(["a", "bc"])

    def test_nested_structures(self):
        value = {"a": [1, 2, {"b": b"bytes"}], "c": (True, None)}
        assert canonical_encode(value) == canonical_encode(value)

    def test_dict_key_order_irrelevant(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode(
            {"b": 2, "a": 1}
        )

    def test_frozenset_order_irrelevant(self):
        assert canonical_encode(frozenset({1, 2, 3})) == canonical_encode(
            frozenset({3, 1, 2})
        )

    def test_tuple_and_list_encode_identically(self):
        # Both are sequences; logical equality is what matters.
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_bool_is_not_int(self):
        assert canonical_encode(True) != canonical_encode(1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_float_round_trip_precision(self):
        assert canonical_encode(0.1 + 0.2) != canonical_encode(0.3)


class TestHashers:
    def test_hash_value_deterministic(self):
        assert hash_value({"k": [1, "two"]}) == hash_value({"k": [1, "two"]})

    def test_hash_many_length_prefixed(self):
        assert hash_many([b"ab", b"c"]) != hash_many([b"a", b"bc"])

    def test_hash_many_accepts_generator(self):
        assert hash_many(p for p in [b"x", b"y"]) == hash_many([b"x", b"y"])

    def test_hash_bytes_distinct_inputs(self):
        assert hash_bytes(b"a") != hash_bytes(b"b")
