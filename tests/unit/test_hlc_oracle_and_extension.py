"""Tests for the HLC timestamp source and ledger extension proofs."""

import dataclasses

import pytest

from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.errors import TamperDetectedError, VerificationError
from repro.txn.hlc import HlcOracle, HybridLogicalClock
from repro.txn.manager import TransactionManager
from repro.txn.two_pc import Participant, TwoPhaseCoordinator


class TestHlcOracle:
    def test_monotonic_allocations(self):
        oracle = HlcOracle(node_id=1)
        stamps = [oracle.next_timestamp() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_node_id_disambiguates(self):
        frozen = lambda: 42  # noqa: E731 - deliberately frozen clocks
        a = HlcOracle(0, HybridLogicalClock(physical_clock=frozen))
        b = HlcOracle(1, HybridLogicalClock(physical_clock=frozen))
        assert a.next_timestamp() != b.next_timestamp()

    def test_invalid_node_id(self):
        with pytest.raises(ValueError):
            HlcOracle(node_id=5000)

    def test_witness_orders_cross_node_allocations(self):
        frozen_fast = lambda: 1000  # noqa: E731
        frozen_slow = lambda: 10    # noqa: E731
        fast = HlcOracle(0, HybridLogicalClock(physical_clock=frozen_fast))
        slow = HlcOracle(1, HybridLogicalClock(physical_clock=frozen_slow))
        sent = fast.next_timestamp()
        slow.witness(sent)  # message from fast node arrives at slow node
        assert slow.next_timestamp() > sent

    def test_works_as_transaction_manager_oracle(self):
        manager = TransactionManager(oracle=HlcOracle(node_id=3))
        manager.run(lambda t: t.write("k", 1))
        manager.run(lambda t: t.write("k", 2))
        assert manager.begin().read("k") == 2

    def test_two_pc_with_per_node_hlc(self):
        """Section 5.2's decentralized ordering: each 2PC participant
        allocates its own timestamps from its own HLC."""
        a = Participant(
            "a", TransactionManager(oracle=HlcOracle(node_id=0))
        )
        b = Participant(
            "b", TransactionManager(oracle=HlcOracle(node_id=1))
        )
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}, "b": {"y": 1}})
        coordinator.execute({"a": {"x": 2}, "b": {"y": 2}})
        assert a.manager.begin().read("x") == 2
        assert b.manager.begin().read("y") == 2


class TestExtensionProofs:
    def _db_with_client(self):
        db = SpitzDatabase()
        for i in range(10):
            db.put(f"k{i}".encode(), b"v")
        client = ClientVerifier()
        client.trust(db.digest())
        return db, client

    def test_honest_extension_accepted(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        for i in range(5):
            db.put(f"new{i}".encode(), b"v")
        extension = db.ledger.extension_proof(old_height)
        client.advance(db.digest(), extension)
        assert client.trusted_digest.height == 15

    def test_empty_extension_for_unchanged_ledger(self):
        db, client = self._db_with_client()
        extension = db.ledger.extension_proof(
            client.trusted_digest.height
        )
        client.advance(db.digest(), extension)

    def test_requires_trust_anchor(self):
        db, _client = self._db_with_client()
        fresh = ClientVerifier()
        with pytest.raises(VerificationError):
            fresh.advance(db.digest(), [])

    def test_wrong_length_rejected(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        db.put(b"new", b"v")
        extension = db.ledger.extension_proof(old_height)
        with pytest.raises(TamperDetectedError):
            client.advance(db.digest(), extension[:-1] if len(extension) > 1 else [])

    def test_forked_extension_rejected(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        # A second, diverging database pretending to extend ours.
        other = SpitzDatabase()
        for i in range(12):
            other.put(f"fake{i}".encode(), b"v")
        extension = other.ledger.extension_proof(old_height)
        with pytest.raises(TamperDetectedError):
            client.advance(other.digest(), extension)

    def test_tampered_witness_rejected(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        db.put(b"new", b"v")
        extension = db.ledger.extension_proof(old_height)
        forged = [
            dataclasses.replace(
                extension[0], writes_digest=extension[0].statements_digest
            )
        ] + list(extension[1:])
        with pytest.raises(TamperDetectedError):
            client.advance(db.digest(), forged)

    def test_mismatched_tree_root_rejected(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        db.put(b"new", b"v")
        extension = db.ledger.extension_proof(old_height)
        offered = dataclasses.replace(
            db.digest(), tree_root=client.trusted_digest.tree_root
        )
        with pytest.raises(TamperDetectedError):
            client.advance(offered, extension)

    def test_verified_read_after_advance(self):
        db, client = self._db_with_client()
        old_height = client.trusted_digest.height
        db.put(b"fresh", b"value")
        client.advance(
            db.digest(), db.ledger.extension_proof(old_height)
        )
        value, proof = db.get_verified(b"fresh")
        assert value == b"value"
        client.verify_or_raise(proof)
