"""Unit tests for the baseline system (journal, views, facade)."""

import pytest

from repro.baseline.journal import Journal
from repro.baseline.ledger_db import BaselineLedgerDB
from repro.baseline.views import MaterializedViews
from repro.errors import ProofError


class TestJournal:
    def test_append_and_record(self):
        journal = Journal(block_size=4)
        record = journal.append(b"k", b"v")
        assert record.sequence == 0
        assert journal.record(0).value == b"v"

    def test_blocks_seal_at_size(self):
        journal = Journal(block_size=4)
        for i in range(10):
            journal.append(f"k{i}".encode(), b"v")
        assert len(journal.blocks) == 2
        journal.seal()
        assert len(journal.blocks) == 3

    def test_seal_empty_returns_none(self):
        assert Journal().seal() is None

    def test_locate_latest_finds_newest_version(self):
        journal = Journal()
        journal.append(b"k", b"v1")
        journal.append(b"other", b"x")
        journal.append(b"k", b"v2")
        assert journal.locate_latest(b"k") == 2
        assert journal.locate_latest(b"missing") is None

    def test_prove_and_verify(self):
        journal = Journal()
        for i in range(20):
            journal.append(f"k{i}".encode(), str(i).encode())
        record, proof = journal.prove(7)
        assert Journal.verify(record, proof, journal.root)

    def test_prove_latest(self):
        journal = Journal()
        journal.append(b"k", b"old")
        journal.append(b"k", b"new")
        record, proof = journal.prove_latest(b"k")
        assert record.value == b"new"
        assert Journal.verify(record, proof, journal.root)
        assert journal.prove_latest(b"ghost") is None

    def test_prove_invalid_sequence(self):
        with pytest.raises(ProofError):
            Journal().prove(0)

    def test_forged_record_rejected(self):
        journal = Journal()
        journal.append(b"k", b"v")
        record, proof = journal.prove(0)
        from repro.baseline.journal import JournalRecord

        forged = JournalRecord(sequence=0, key=b"k", value=b"evil")
        assert not Journal.verify(forged, proof, journal.root)

    def test_verify_chain(self):
        journal = Journal(block_size=2)
        for i in range(7):
            journal.append(f"k{i}".encode(), b"v")
        journal.seal()
        assert journal.verify_chain()

    def test_verify_chain_detects_record_tamper(self):
        journal = Journal(block_size=2)
        for i in range(6):
            journal.append(f"k{i}".encode(), b"v")
        from repro.baseline.journal import JournalRecord

        journal._records[1] = JournalRecord(
            sequence=1, key=b"k1", value=b"tampered"
        )
        assert not journal.verify_chain()


class TestMaterializedViews:
    def test_current_view(self):
        journal = Journal()
        views = MaterializedViews()
        views.apply(journal.append(b"k", b"v1"))
        views.apply(journal.append(b"k", b"v2"))
        sequence, value = views.get(b"k")
        assert value == b"v2"
        assert sequence == 1

    def test_delete_removes_from_current(self):
        journal = Journal()
        views = MaterializedViews()
        views.apply(journal.append(b"k", b"v"))
        views.apply(journal.append(b"k", None))
        assert views.get(b"k") is None

    def test_history_view(self):
        journal = Journal()
        views = MaterializedViews()
        views.apply(journal.append(b"k", b"v1"))
        views.apply(journal.append(b"k", b"v2"))
        views.apply(journal.append(b"k", None))
        history = views.key_history(b"k")
        assert [value for _, value in history] == [b"v1", b"v2", None]

    def test_committed_meta(self):
        journal = Journal()
        views = MaterializedViews()
        views.apply(journal.append(b"k", b"v"))
        sequence, key, deleted = views.committed_meta(0)
        assert (sequence, key, deleted) == (0, b"k", False)

    def test_scan(self):
        journal = Journal()
        views = MaterializedViews()
        for i in range(5):
            views.apply(journal.append(f"k{i}".encode(), str(i).encode()))
        found = views.scan(b"k1", b"k3")
        assert [key for key, _seq, _v in found] == [b"k1", b"k2", b"k3"]

    def test_maintenance_write_amplification(self):
        journal = Journal()
        views = MaterializedViews()
        views.apply(journal.append(b"k", b"v"))
        assert views.maintenance_writes == 3  # one write, three views


class TestBaselineLedgerDB:
    def test_put_get(self):
        db = BaselineLedgerDB()
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        assert db.get(b"ghost") is None

    def test_verified_read(self):
        db = BaselineLedgerDB()
        for i in range(50):
            db.put(f"k{i:02d}".encode(), str(i).encode())
        value, proof = db.get_verified(b"k25")
        assert value == b"25"
        assert proof.verify(db.digest())

    def test_verified_read_missing(self):
        db = BaselineLedgerDB()
        value, proof = db.get_verified(b"nope")
        assert value is None and proof is None

    def test_proof_invalid_after_updates(self):
        db = BaselineLedgerDB()
        db.put(b"k", b"v")
        _value, proof = db.get_verified(b"k")
        db.put(b"x", b"y")  # root advances
        assert not proof.verify(db.digest())

    def test_scan_and_scan_verified_agree(self):
        db = BaselineLedgerDB()
        for i in range(30):
            db.put(f"k{i:02d}".encode(), str(i).encode())
        plain = db.scan(b"k05", b"k14")
        verified, proofs = db.scan_verified(b"k05", b"k14")
        assert plain == verified
        assert len(proofs) == len(verified)
        assert all(p.verify(db.digest()) for p in proofs)

    def test_delete_and_history(self):
        db = BaselineLedgerDB()
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None
        assert db.history(b"k")[-1][1] is None

    def test_chain_verification(self):
        db = BaselineLedgerDB(block_size=4)
        for i in range(10):
            db.put(f"k{i}".encode(), b"v")
        db.journal.seal()
        assert db.verify_chain()

    def test_len_counts_live_keys(self):
        db = BaselineLedgerDB()
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        db.delete(b"a")
        assert len(db) == 1
