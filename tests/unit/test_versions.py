"""Unit tests for the version manager (commits, branches)."""

import pytest

from repro.crypto.hashing import hash_value
from repro.errors import BranchNotFoundError, CommitNotFoundError
from repro.forkbase.versions import VersionManager


def _root(name):
    return hash_value(("root", name))


class TestVersionManager:
    def test_fresh_default_branch_has_no_head(self):
        assert VersionManager().head() is None

    def test_commit_advances_head(self):
        vm = VersionManager()
        commit = vm.commit(_root("v1"), "first")
        assert vm.head().commit_id == commit.commit_id

    def test_log_newest_first(self):
        vm = VersionManager()
        vm.commit(_root("v1"))
        vm.commit(_root("v2"))
        vm.commit(_root("v3"))
        roots = [c.root for c in vm.log()]
        assert roots == [_root("v3"), _root("v2"), _root("v1")]

    def test_history_roots_oldest_first(self):
        vm = VersionManager()
        vm.commit(_root("v1"))
        vm.commit(_root("v2"))
        assert vm.history_roots() == [_root("v1"), _root("v2")]

    def test_parents_linked(self):
        vm = VersionManager()
        first = vm.commit(_root("v1"))
        second = vm.commit(_root("v2"))
        assert second.parents == (first.commit_id,)
        assert first.parents == ()

    def test_unknown_commit_raises(self):
        vm = VersionManager()
        with pytest.raises(CommitNotFoundError):
            vm.get(hash_value("missing"))

    def test_unknown_branch_raises(self):
        vm = VersionManager()
        with pytest.raises(BranchNotFoundError):
            vm.head("nope")

    def test_branching_from_head(self):
        vm = VersionManager()
        vm.commit(_root("v1"))
        vm.create_branch("feature")
        vm.commit(_root("v2"), branch="feature")
        vm.commit(_root("v3"))  # master
        assert vm.head("feature").root == _root("v2")
        assert vm.head().root == _root("v3")

    def test_branch_of_empty_repo(self):
        vm = VersionManager()
        vm.create_branch("early")
        assert vm.head("early") is None

    def test_delete_branch(self):
        vm = VersionManager()
        vm.create_branch("tmp")
        vm.delete_branch("tmp")
        with pytest.raises(BranchNotFoundError):
            vm.head("tmp")

    def test_cannot_delete_default_branch(self):
        with pytest.raises(ValueError):
            VersionManager().delete_branch("master")

    def test_delete_unknown_branch_raises(self):
        with pytest.raises(BranchNotFoundError):
            VersionManager().delete_branch("ghost")

    def test_merge_base(self):
        vm = VersionManager()
        shared = vm.commit(_root("v1"))
        vm.create_branch("b")
        vm.commit(_root("a2"))
        vm.commit(_root("b2"), branch="b")
        base = vm.merge_base("master", "b")
        assert base.commit_id == shared.commit_id

    def test_merge_base_disjoint_is_none(self):
        vm = VersionManager()
        vm.create_branch("b")
        vm.commit(_root("a1"))
        vm.commit(_root("b1"), branch="b")
        assert vm.merge_base("master", "b") is None

    def test_commit_count(self):
        vm = VersionManager()
        vm.commit(_root("v1"))
        vm.commit(_root("v2"))
        assert len(vm) == 2
