"""Sampling profiler: a busy thread shows up in folded output, the
sampler excludes itself, and the report is JSON-shaped."""

import json
import threading
import time

import pytest

from repro.obs.profiler import (
    MAX_PROFILE_SECONDS,
    SamplingProfiler,
    profile_duration,
)


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


class TestSamplingProfiler:
    def test_busy_thread_appears_in_folded_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=_spin, args=(stop,), name="busy-worker", daemon=True
        )
        worker.start()
        try:
            profiler = SamplingProfiler(interval=0.002)
            with profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        folded = profiler.folded()
        assert profiler.samples > 10
        busy_lines = [
            line for line in folded.splitlines()
            if line.startswith("busy-worker;")
        ]
        assert busy_lines, folded
        # Folded format: semicolon-joined stack, space, count.
        stack, count = busy_lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert "_spin" in stack

    def test_sampler_never_samples_itself(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            time.sleep(0.05)
        assert "spitz-profiler" not in profiler.folded()

    def test_sample_once_skips_the_sampling_thread(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        profiler.sample_once()
        assert profiler.samples == 2
        # Whichever thread takes the sample is excluded — its stack is
        # just profiling machinery, noise in a flamegraph.
        assert threading.current_thread().name not in profiler.folded()

    def test_folded_limit_takes_hottest(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=_spin, args=(stop,), name="limit-worker", daemon=True
        )
        worker.start()
        try:
            profiler = SamplingProfiler()
            for _ in range(3):
                profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        full = profiler.folded()
        top = profiler.folded(limit=1)
        assert len(top.splitlines()) == 1
        assert top.splitlines()[0] == full.splitlines()[0]

    def test_report_is_json_shaped(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            time.sleep(0.03)
        report = profiler.report(limit=5)
        json.dumps(report)
        assert report["samples"] == profiler.samples
        assert report["interval"] == 0.002
        assert report["elapsed"] > 0
        assert len(report["hottest"]) <= 5

    def test_profile_duration_returns_stopped_profiler(self):
        profiler = profile_duration(0.05, interval=0.002)
        assert profiler.samples > 0
        assert profiler._thread is None  # stopped
        assert MAX_PROFILE_SECONDS >= 1.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_start_twice_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        first = profiler._thread
        profiler.start()
        assert profiler._thread is first
        profiler.stop()
        profiler.stop()  # idempotent too
