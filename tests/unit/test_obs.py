"""Unit tests for the observability layer (metrics + tracing)."""

import pickle
import threading
import time

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_holds_latest(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_histogram_summary_fields(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (0.001, 0.002, 0.004, 0.008):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0.001
        assert summary["max"] == 0.008
        assert abs(summary["sum"] - 0.015) < 1e-12
        assert summary["min"] <= summary["p50"] <= summary["max"]
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_histogram_percentiles_deterministic(self):
        """Same observations => identical summaries, run after run."""
        summaries = []
        for _ in range(3):
            registry = MetricsRegistry()
            hist = registry.histogram("h")
            for i in range(1, 101):
                hist.observe(i / 1000.0)
            summaries.append(hist.summary())
        assert summaries[0] == summaries[1] == summaries[2]
        # The bucket bound never strays more than one ~19% bucket from
        # the exact rank statistic.
        assert 0.040 <= summaries[0]["p50"] <= 0.062
        assert 0.080 <= summaries[0]["p95"] <= 0.115

    def test_histogram_single_observation_is_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(0.25)
        summary = hist.summary()
        assert summary["p50"] == summary["p99"] == 0.25

    def test_empty_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.percentile(0.5) is None
        assert hist.summary() == {"count": 0}


class TestRegistry:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7.0}
        assert snap["histograms"]["c"]["count"] == 1

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.counter("a").inc(3)
        registry.counter("new").inc()
        registry.histogram("h").observe(2.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 3, "new": 1}
        assert delta["histograms"]["h"]["count"] == 1

    def test_delta_drops_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        snap = registry.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_disabled_registry_is_noop(self):
        counter = NULL_REGISTRY.counter("whatever")
        counter.inc(100)
        assert counter.value == 0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1.0)
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safe_counting(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")

        def work():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert hist.count == 8000

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2.5)
        registry.histogram("h").observe(0.5)
        with registry.tracer.span("op"):
            pass
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot()["counters"]["a"] == 5
        assert clone.snapshot()["gauges"]["b"] == 2.5
        # Instruments stay usable (locks recreated) after unpickling.
        clone.counter("a").inc()
        assert clone.counter("a").value == 6
        with clone.tracer.span("op"):
            pass
        assert clone.histogram("span.op").count >= 1


class TestTracer:
    def test_span_records_histogram_and_buffer(self):
        registry = MetricsRegistry()
        with registry.tracer.span("outer"):
            with registry.tracer.span("inner"):
                pass
        assert registry.histogram("span.outer").count == 1
        assert registry.histogram("span.inner").count == 1
        spans = registry.tracer.recent()
        assert [span.name for span in spans] == ["inner", "outer"]
        inner, outer = spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id

    def test_span_records_error_status_on_exception(self):
        registry = MetricsRegistry()
        try:
            with registry.tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert registry.histogram("span.boom").count == 1
        assert registry.tracer.recent("boom")[0].status == "error"

    def test_recent_filter_and_capacity(self):
        registry = MetricsRegistry()
        tracer = registry.tracer
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.recent("a")) == 3
        assert len(tracer.recent("b")) == 1

    def test_attributes_and_context(self):
        registry = MetricsRegistry()
        with registry.tracer.span("op", attributes={"kind": "get"}) as span:
            assert registry.tracer.current_context() == span.context
            span.set_attribute("extra", 1)
        assert registry.tracer.current_context() is None
        recorded = registry.tracer.recent("op")[0]
        assert recorded.attributes == {"kind": "get", "extra": 1}

    def test_cross_thread_parenting(self):
        """A span started on another thread with an explicit parent
        lands in the same trace, under the right parent."""
        registry = MetricsRegistry()
        tracer = registry.tracer
        root = tracer.start_span("client.submit")

        def serve():
            with tracer.span("node.serve", parent=root):
                with tracer.span("request.handle"):
                    pass

        worker = threading.Thread(target=serve)
        worker.start()
        worker.join()
        tracer.finish(root, status="ok")
        spans = {span.name: span for span in tracer.recent()}
        assert spans["node.serve"].trace_id == root.trace_id
        assert spans["node.serve"].parent_id == root.span_id
        assert spans["request.handle"].parent_id == spans["node.serve"].span_id

    def test_root_completion_hands_trace_to_flight(self):
        registry = MetricsRegistry()
        tracer = registry.tracer
        root = tracer.start_span(
            "client.submit", attributes={"kind": "put"}
        )
        with tracer.span("node.serve", parent=root):
            pass
        tracer.finish(root, status="ok")
        traces = registry.flight.recent()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.kind == "put"
        assert trace.status == "ok"
        assert [span.name for span in trace.children_of(trace.root)] == [
            "node.serve"
        ]
        assert tracer.open_trace_count() == 0

    def test_stage_outside_trace_is_histogram_only(self):
        registry = MetricsRegistry()
        with registry.tracer.stage("wal.fsync"):
            pass
        assert registry.histogram("span.wal.fsync").count == 1
        assert registry.tracer.recent("wal.fsync") == []

    def test_stage_inside_trace_records_child_span(self):
        registry = MetricsRegistry()
        with registry.tracer.span("outer") as outer:
            with registry.tracer.stage("txn.commit"):
                pass
        stage = registry.tracer.recent("txn.commit")[0]
        assert stage.parent_id == outer.span_id

    def test_stage_in_trace_is_noop_outside_trace(self):
        registry = MetricsRegistry()
        with registry.tracer.stage_in_trace("ledger.prove"):
            pass
        assert registry.histogram("span.ledger.prove").count == 0
        with registry.tracer.span("outer"):
            with registry.tracer.stage_in_trace("ledger.prove"):
                pass
        assert registry.histogram("span.ledger.prove").count == 1

    def test_disabled_registry_spans_are_noops(self):
        tracer = NULL_REGISTRY.tracer
        with tracer.span("x") as span:
            assert span is None
        with tracer.stage("y"):
            pass
        assert tracer.start_span("z") is None
        tracer.finish(None)  # must not raise
        assert tracer.recent() == []

    def test_open_trace_bound_evicts_oldest(self):
        registry = MetricsRegistry()
        tracer = registry.tracer
        tracer._max_open = 4
        leaked = [tracer.start_span(f"root{i}") for i in range(8)]
        # Finish only child spans, never the roots: the open-trace
        # table must stay bounded instead of growing forever.
        for root in leaked:
            with tracer.span("child", parent=root):
                pass
        assert tracer.open_trace_count() <= 5


class TestTraceAssembly:
    def _trace_via(self, registry):
        tracer = registry.tracer
        root = tracer.start_span("root", attributes={"kind": "get"})
        with tracer.span("mid", parent=root):
            with tracer.span("leaf"):
                pass
        tracer.finish(root, status="ok")
        return registry.flight.recent()[0]

    def test_stage_self_times_sum_to_at_most_root_duration(self):
        registry = MetricsRegistry()
        trace = self._trace_via(registry)
        assert set(trace.stages) == {"root", "mid", "leaf"}
        assert all(seconds >= 0.0 for seconds in trace.stages.values())
        assert sum(trace.stages.values()) <= trace.duration + 1e-12

    def test_to_dict_and_render(self):
        registry = MetricsRegistry()
        trace = self._trace_via(registry)
        payload = trace.to_dict()
        assert payload["kind"] == "get"
        assert payload["root"]["name"] == "root"
        assert payload["root"]["children"][0]["name"] == "mid"
        rendered = trace.render()
        assert "root" in rendered and "  mid" in rendered
        assert "    leaf" in rendered


class TestFlightRecorder:
    def _make_trace(self, registry, kind="get", status="ok", delay=0.0):
        tracer = registry.tracer
        root = tracer.start_span("root", attributes={"kind": kind})
        if delay:
            time.sleep(delay)
        tracer.finish(root, status=status)

    def test_slowest_keeps_n_slowest(self):
        registry = MetricsRegistry()
        registry.flight._slowest_capacity = 2
        self._make_trace(registry, delay=0.003)
        self._make_trace(registry, delay=0.0)
        self._make_trace(registry, delay=0.002)
        slowest = registry.flight.slowest()
        assert len(slowest) == 2
        assert slowest[0].duration >= slowest[1].duration
        assert slowest[1].duration >= 0.002

    def test_failures_ring_keeps_failed_and_shed(self):
        registry = MetricsRegistry()
        self._make_trace(registry, status="ok")
        self._make_trace(registry, status="error")
        self._make_trace(registry, status="shed")
        statuses = [trace.status for trace in registry.flight.failures()]
        assert statuses == ["shed", "error"]

    def test_ignores_traces_without_request_kind(self):
        registry = MetricsRegistry()
        with registry.tracer.span("standalone"):
            pass
        assert registry.flight.recent() == []

    def test_attribution_fractions_sum_to_at_most_one(self):
        registry = MetricsRegistry()
        for _ in range(5):
            tracer = registry.tracer
            root = tracer.start_span("root", attributes={"kind": "put"})
            with tracer.span("stage_a", parent=root):
                pass
            tracer.finish(root, status="ok")
        table = registry.flight.attribution()
        row = table["put"]
        assert row["requests"] == 5
        assert row["statuses"] == {"ok": 5}
        total_fraction = sum(
            cell["fraction"] for cell in row["stages"].values()
        )
        assert total_fraction <= 1.0 + 1e-9

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        self._make_trace(registry, status="error")
        payload = registry.flight.snapshot()
        parsed = json.loads(json.dumps(payload))
        assert parsed["attribution"]["get"]["requests"] == 1
        assert len(parsed["failures"]) == 1


class TestHistogramSnapshotRace:
    def test_summary_races_observe_without_runtime_error(self):
        """Regression: summary()/percentile() used to iterate the live
        bucket dict; a concurrent observe() inserting a fresh bucket
        raised ``RuntimeError: dictionary changed size during
        iteration``."""
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        stop = threading.Event()
        errors = []

        def writer():
            value = 1e-9
            while not stop.is_set():
                # Walk the value so nearly every observe lands in a
                # brand-new bucket (maximizing dict-resize pressure).
                hist.observe(value)
                value *= 1.19
                if value > 1e9:
                    value = 1e-9

        def reader():
            try:
                while not stop.is_set():
                    hist.summary()
                    hist.percentile(0.5)
            except RuntimeError as error:  # pragma: no cover
                errors.append(error)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in writers + readers:
            thread.join()
        assert errors == []
        summary = hist.summary()
        assert summary["count"] == hist.count


class TestCounterGaugeValueRace:
    """Regression (PR 9): ``Counter.value``/``Gauge.value`` read
    ``_value`` without the shared lock — the same class of race PR 4
    fixed for ``Histogram.percentile``/``summary``.  An unlocked read
    can observe a torn or stale value while eight writers increment.
    """

    def test_counter_reads_are_monotone_under_write_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered")
        per_thread = 5_000
        threads = 8
        # Parties: the 8 writers, the reader, and this thread.
        start = threading.Barrier(threads + 2)
        observed = []
        errors = []

        def writer():
            start.wait()
            for _ in range(per_thread):
                counter.inc()

        def reader():
            start.wait()
            last = 0
            try:
                while last < threads * per_thread:
                    current = counter.value
                    # A locked read can never go backwards and can
                    # never exceed the final total.
                    assert current >= last
                    assert current <= threads * per_thread
                    last = current
                    observed.append(current)
            except AssertionError as error:  # pragma: no cover
                errors.append(error)

        workers = [
            threading.Thread(target=writer) for _ in range(threads)
        ]
        watcher = threading.Thread(target=reader)
        for thread in workers:
            thread.start()
        watcher.start()
        start.wait()
        for thread in workers:
            thread.join()
        watcher.join(timeout=10.0)
        assert errors == []
        assert counter.value == threads * per_thread
        # The reader always gets at least one read in, and its last
        # read is the settled total.  (How many intermediate states it
        # sees is scheduler-dependent, so we don't assert on it.)
        assert observed
        assert observed[-1] == threads * per_thread

    def test_gauge_reads_locked_under_write_hammer(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammered")
        stop = threading.Event()
        seen = []
        errors = []

        def writer(value):
            while not stop.is_set():
                gauge.set(value)

        def reader():
            try:
                while not stop.is_set():
                    value = gauge.value
                    assert value in (0, 1.0, 2.0, 3.0)
                    seen.append(value)
            except AssertionError as error:  # pragma: no cover
                errors.append(error)

        writers = [
            threading.Thread(target=writer, args=(float(i),))
            for i in (1, 2, 3)
        ]
        readers = [threading.Thread(target=reader) for _ in range(5)]
        for thread in writers + readers:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in writers + readers:
            thread.join()
        assert errors == []
        assert seen
