"""Unit tests for the observability layer (metrics + tracing)."""

import pickle
import threading

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_holds_latest(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_histogram_summary_fields(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (0.001, 0.002, 0.004, 0.008):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0.001
        assert summary["max"] == 0.008
        assert abs(summary["sum"] - 0.015) < 1e-12
        assert summary["min"] <= summary["p50"] <= summary["max"]
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_histogram_percentiles_deterministic(self):
        """Same observations => identical summaries, run after run."""
        summaries = []
        for _ in range(3):
            registry = MetricsRegistry()
            hist = registry.histogram("h")
            for i in range(1, 101):
                hist.observe(i / 1000.0)
            summaries.append(hist.summary())
        assert summaries[0] == summaries[1] == summaries[2]
        # The bucket bound never strays more than one ~19% bucket from
        # the exact rank statistic.
        assert 0.040 <= summaries[0]["p50"] <= 0.062
        assert 0.080 <= summaries[0]["p95"] <= 0.115

    def test_histogram_single_observation_is_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(0.25)
        summary = hist.summary()
        assert summary["p50"] == summary["p99"] == 0.25

    def test_empty_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.percentile(0.5) is None
        assert hist.summary() == {"count": 0}


class TestRegistry:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7.0}
        assert snap["histograms"]["c"]["count"] == 1

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.counter("a").inc(3)
        registry.counter("new").inc()
        registry.histogram("h").observe(2.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 3, "new": 1}
        assert delta["histograms"]["h"]["count"] == 1

    def test_delta_drops_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        snap = registry.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_disabled_registry_is_noop(self):
        counter = NULL_REGISTRY.counter("whatever")
        counter.inc(100)
        assert counter.value == 0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1.0)
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safe_counting(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")

        def work():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert hist.count == 8000

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2.5)
        registry.histogram("h").observe(0.5)
        with registry.tracer.span("op"):
            pass
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot()["counters"]["a"] == 5
        assert clone.snapshot()["gauges"]["b"] == 2.5
        # Instruments stay usable (locks recreated) after unpickling.
        clone.counter("a").inc()
        assert clone.counter("a").value == 6
        with clone.tracer.span("op"):
            pass
        assert clone.histogram("span.op").count >= 1


class TestTracer:
    def test_span_records_histogram_and_buffer(self):
        registry = MetricsRegistry()
        with registry.tracer.span("outer"):
            with registry.tracer.span("inner"):
                pass
        assert registry.histogram("span.outer").count == 1
        assert registry.histogram("span.inner").count == 1
        spans = registry.tracer.recent()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert spans[0].parent == "outer"
        assert spans[1].parent is None

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        try:
            with registry.tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert registry.histogram("span.boom").count == 1

    def test_recent_filter_and_capacity(self):
        registry = MetricsRegistry()
        tracer = registry.tracer
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.recent("a")) == 3
        assert len(tracer.recent("b")) == 1
