"""Unit tests for the SpitzDatabase table/SQL surface."""

import pytest

from repro.core.database import SpitzDatabase
from repro.core.schema import TableSchema
from repro.errors import QueryError, SchemaError


@pytest.fixture
def items_db():
    database = SpitzDatabase()
    database.sql(
        "CREATE TABLE items (id INT, name STR, price FLOAT, stock INT, "
        "PRIMARY KEY (id))"
    )
    for i in range(40):
        database.sql(
            f"INSERT INTO items (id, name, price, stock) "
            f"VALUES ({i}, 'item{i}', {float(i)}, {i % 5})"
        )
    return database


class TestDdl:
    def test_create_and_list(self, db):
        db.create_table(
            TableSchema.make("t", [("id", "int")], "id")
        )
        assert db.tables() == ["t"]
        assert db.table("t").primary_key == "id"

    def test_duplicate_table_rejected(self, db):
        schema = TableSchema.make("t", [("id", "int")], "id")
        db.create_table(schema)
        with pytest.raises(SchemaError):
            db.create_table(schema)

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.table("ghost")

    def test_ddl_recorded_in_ledger(self, db):
        db.sql("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        block = db.ledger.latest_block()
        assert block is not None


class TestSelect:
    def test_point_by_pk(self, items_db):
        rows = items_db.sql("SELECT * FROM items WHERE id = 7")
        assert rows == [
            {"id": 7, "name": "item7", "price": 7.0, "stock": 2}
        ]

    def test_pk_range(self, items_db):
        rows = items_db.sql(
            "SELECT id FROM items WHERE id BETWEEN 10 AND 14"
        )
        assert [r["id"] for r in rows] == [10, 11, 12, 13, 14]

    def test_pk_strict_range(self, items_db):
        rows = items_db.sql("SELECT id FROM items WHERE id < 3")
        assert sorted(r["id"] for r in rows) == [0, 1, 2]

    def test_inverted_equality(self, items_db):
        rows = items_db.sql("SELECT id FROM items WHERE name = 'item33'")
        assert rows == [{"id": 33}]

    def test_inverted_range(self, items_db):
        rows = items_db.sql(
            "SELECT id FROM items WHERE price BETWEEN 5.0 AND 8.0"
        )
        assert sorted(r["id"] for r in rows) == [5, 6, 7, 8]

    def test_conjunction(self, items_db):
        rows = items_db.sql(
            "SELECT id FROM items WHERE stock = 2 AND id < 10"
        )
        assert sorted(r["id"] for r in rows) == [2, 7]

    def test_full_scan(self, items_db):
        rows = items_db.sql("SELECT id FROM items WHERE name != 'item0'")
        assert len(rows) == 39

    def test_limit(self, items_db):
        rows = items_db.sql("SELECT id FROM items LIMIT 5")
        assert len(rows) == 5

    def test_projection_validates_columns(self, items_db):
        with pytest.raises(SchemaError):
            items_db.select("items", (), columns=("bogus",))

    def test_no_match(self, items_db):
        assert items_db.sql("SELECT * FROM items WHERE id = 999") == []


class TestMutations:
    def test_update(self, items_db):
        count = items_db.sql("UPDATE items SET price = 99.0 WHERE id = 3")
        assert count == 1
        rows = items_db.sql("SELECT price FROM items WHERE id = 3")
        assert rows == [{"price": 99.0}]

    def test_update_many(self, items_db):
        count = items_db.sql("UPDATE items SET stock = 0 WHERE stock = 4")
        assert count == 8
        assert items_db.sql("SELECT id FROM items WHERE stock = 4") == []

    def test_update_pk_rejected(self, items_db):
        with pytest.raises(QueryError):
            items_db.sql("UPDATE items SET id = 1 WHERE id = 2")

    def test_update_refreshes_inverted_index(self, items_db):
        items_db.sql("UPDATE items SET name = 'renamed' WHERE id = 5")
        assert items_db.sql(
            "SELECT id FROM items WHERE name = 'renamed'"
        ) == [{"id": 5}]
        assert items_db.sql(
            "SELECT id FROM items WHERE name = 'item5'"
        ) == []

    def test_delete(self, items_db):
        count = items_db.sql("DELETE FROM items WHERE id = 3")
        assert count == 1
        assert items_db.sql("SELECT * FROM items WHERE id = 3") == []
        assert len(items_db.sql("SELECT id FROM items")) == 39

    def test_delete_removes_from_inverted_index(self, items_db):
        items_db.sql("DELETE FROM items WHERE id = 5")
        assert items_db.sql(
            "SELECT id FROM items WHERE name = 'item5'"
        ) == []

    def test_insert_type_checked(self, items_db):
        with pytest.raises(SchemaError):
            items_db.insert(
                "items",
                {"id": "not-int", "name": "x", "price": 1.0, "stock": 1},
            )


class TestTemporal:
    def test_as_of_block(self, items_db):
        before = items_db.ledger.height - 1
        items_db.sql("UPDATE items SET price = 555.0 WHERE id = 1")
        rows = items_db.sql(
            f"SELECT price FROM items WHERE id = 1 AS OF BLOCK {before}"
        )
        assert rows == [{"price": 1.0}]

    def test_as_of_sees_deleted_rows(self, items_db):
        before = items_db.ledger.height - 1
        items_db.sql("DELETE FROM items WHERE id = 1")
        rows = items_db.sql(
            f"SELECT id FROM items WHERE id = 1 AS OF BLOCK {before}"
        )
        assert rows == [{"id": 1}]

    def test_row_history(self, items_db):
        items_db.sql("UPDATE items SET price = 2.5 WHERE id = 2")
        items_db.sql("DELETE FROM items WHERE id = 2")
        states = [row for _, row in items_db.row_history("items", 2)]
        assert states[0] is None
        assert states[1]["price"] == 2.0
        assert states[2]["price"] == 2.5
        assert states[3] is None


class TestVerifiedSelect:
    def test_select_verified_range(self, items_db):
        rows, proofs = items_db.select_verified(
            "items", 10, 14, columns=("name", "price")
        )
        assert len(rows) == 5
        digest = items_db.digest().chain_digest
        assert all(proof.verify(digest) for proof in proofs)
        assert rows[0] == {"name": "item10", "price": 10.0}

    def test_select_verified_all_columns(self, items_db):
        rows, proofs = items_db.select_verified("items", 0, 4)
        assert len(rows) == 5
        assert len(proofs) == 4  # one per column
