"""Unit tests for search predicates and the SearchProof tamper matrix.

The tamper matrix is the ISSUE's acceptance bar: dropped match,
fabricated match, boundary omission, stale index root, and undecodable
proof nodes must all verify ``False`` (never raise) for both keyword
and numeric-range predicates.
"""

from dataclasses import replace

import pytest

from repro.errors import QueryError
from repro.forkbase.chunk_store import ChunkStore
from repro.core.ledger import SpitzLedger
from repro.indexes.inverted import InvertedIndex
from repro.search.committed import (
    SEARCH_ROOT_KEY,
    CommittedSearchIndex,
    encode_search_value,
)
from repro.search.proofs import (
    SearchPredicate,
    SearchProof,
    build_search_proof,
    evaluate_on_inverted,
)


# -- predicates -------------------------------------------------------------


class TestSearchPredicate:
    def test_parse_grammar(self):
        assert SearchPredicate.parse(">= 10") == SearchPredicate.ge(10)
        assert SearchPredicate.parse("<2.5") == SearchPredicate.lt(2.5)
        assert SearchPredicate.parse("== alice") == SearchPredicate.eq(
            "alice"
        )
        assert SearchPredicate.parse("alice") == SearchPredicate.eq("alice")
        # Single '=' must not fall through to a bare literal starting
        # with '=' — that would silently match nothing.
        assert SearchPredicate.parse("= alice") == SearchPredicate.eq(
            "alice"
        )
        assert SearchPredicate.parse("= 'apple'") == SearchPredicate.eq(
            "apple"
        )
        assert SearchPredicate.parse("'10'") == SearchPredicate.eq("10")
        assert SearchPredicate.parse("between 3 7") == (
            SearchPredicate.between(3, 7)
        )

    def test_parse_rejects_garbage(self):
        for bad in ["", "   ", "between 1", ">=", "between 1 2 3"]:
            with pytest.raises(QueryError):
                SearchPredicate.parse(bad)

    def test_constructor_guards(self):
        with pytest.raises(QueryError):
            SearchPredicate("eq", value=True)
        with pytest.raises(QueryError):
            SearchPredicate("between", low=5, high=2)
        with pytest.raises(QueryError):
            SearchPredicate("between", low=1, high="z")
        with pytest.raises(QueryError):
            SearchPredicate("like", value="x")

    def test_matches_semantics(self):
        assert SearchPredicate.ge(10).matches(10)
        assert not SearchPredicate.gt(10).matches(10)
        assert SearchPredicate.le(10).matches(10)
        assert not SearchPredicate.lt(10).matches(10)
        assert SearchPredicate.between(3, 7).matches(3)
        assert SearchPredicate.between(3, 7).matches(7)
        assert not SearchPredicate.between(3, 7).matches(7.5)
        # Cross-type candidates never match.
        assert not SearchPredicate.ge(10).matches("10")
        assert not SearchPredicate.eq("a").matches(97)
        assert not SearchPredicate.eq(1).matches(True)

    def test_payload_round_trip(self):
        for predicate in [
            SearchPredicate.eq("term"),
            SearchPredicate.gt(1.5),
            SearchPredicate.between("a", "b"),
        ]:
            assert (
                SearchPredicate.from_payload(predicate.to_payload())
                == predicate
            )

    def test_strict_bounds_scan_inclusively(self):
        low, high = SearchPredicate.gt(10).bounds()
        assert low == encode_search_value(10)
        ge_low, _ = SearchPredicate.ge(10).bounds()
        assert low == ge_low  # boundary rides along, re-excluded later

    def test_eq_has_no_bounds(self):
        with pytest.raises(QueryError):
            SearchPredicate.eq(1).bounds()


# -- fixture: a sealed ledger + committed index -----------------------------


@pytest.fixture()
def plane():
    chunks = ChunkStore()
    ledger = SpitzLedger(chunks)
    inverted = InvertedIndex()
    index = CommittedSearchIndex(chunks, ["t.term", "t.score"])
    rows = [
        ("alpha", 10.0, b"uk-01"),
        ("alpha", 20.0, b"uk-02"),
        ("beta", 20.0, b"uk-03"),
        ("gamma", 30.0, b"uk-04"),
        ("delta", 40.0, b"uk-05"),
    ]
    for term, score, ukey in rows:
        inverted.add("t.term", term, ukey)
        inverted.add("t.score", score, ukey)
        index.note_change("t.term", term)
        index.note_change("t.score", score)
    manifest = index.seal(inverted)
    ledger.append_block({SEARCH_ROOT_KEY: manifest})
    return ledger, index, inverted


class TestBuildAndVerify:
    def test_keyword_proof_verifies(self, plane):
        ledger, index, _ = plane
        proof = build_search_proof(
            ledger, index, "t.term", SearchPredicate.eq("alpha")
        )
        assert proof.verify(ledger.digest().chain_digest)
        assert proof.ukeys == (b"uk-01", b"uk-02")
        assert proof.result_count == 2
        assert proof.size_bytes > 0
        assert proof.label.startswith("search:t.term:")

    def test_range_proof_verifies(self, plane):
        ledger, index, inverted = plane
        predicate = SearchPredicate.between(15.0, 35.0)
        proof = build_search_proof(ledger, index, "t.score", predicate)
        assert proof.verify(ledger.digest().chain_digest)
        assert set(proof.ukeys) == {b"uk-02", b"uk-03", b"uk-04"}
        assert set(proof.ukeys) == set(
            evaluate_on_inverted(inverted, "t.score", predicate)
        )

    def test_strict_bound_excludes_boundary(self, plane):
        ledger, index, inverted = plane
        predicate = SearchPredicate.gt(20)
        proof = build_search_proof(ledger, index, "t.score", predicate)
        assert proof.verify(ledger.digest().chain_digest)
        assert set(proof.ukeys) == {b"uk-04", b"uk-05"}
        assert set(proof.ukeys) == set(
            evaluate_on_inverted(inverted, "t.score", predicate)
        )

    def test_verified_empty_result(self, plane):
        ledger, index, _ = plane
        proof = build_search_proof(
            ledger, index, "t.term", SearchPredicate.eq("nope")
        )
        assert proof.matches == ()
        assert proof.verify(ledger.digest().chain_digest)

    def test_unindexed_column_supports_only_empty_claim(self, plane):
        ledger, index, _ = plane
        proof = build_search_proof(
            ledger, index, "t.other", SearchPredicate.eq("x")
        )
        assert proof.evidence is None
        assert proof.verify(ledger.digest().chain_digest)
        forged = replace(
            proof, matches=((b"sx", (b"uk-99",)),)
        )
        assert not forged.verify(ledger.digest().chain_digest)

    def test_unsealed_ledger_refuses_to_prove(self):
        chunks = ChunkStore()
        ledger = SpitzLedger(chunks)
        ledger.append_block({b"k\x00x": b"v"})
        index = CommittedSearchIndex(chunks, ["t.term"])
        with pytest.raises(QueryError):
            build_search_proof(
                ledger, index, "t.term", SearchPredicate.eq("a")
            )


# -- tamper matrix ----------------------------------------------------------


def _keyword_proof(plane):
    ledger, index, _ = plane
    return ledger, build_search_proof(
        ledger, index, "t.term", SearchPredicate.eq("alpha")
    )


def _range_proof(plane):
    ledger, index, _ = plane
    return ledger, build_search_proof(
        ledger, index, "t.score", SearchPredicate.between(15.0, 35.0)
    )


class TestTamperMatrix:
    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_dropped_match(self, plane, build):
        ledger, proof = build(plane)
        tampered = replace(proof, matches=proof.matches[:-1])
        assert not tampered.verify(ledger.digest().chain_digest)

    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_dropped_posting_inside_match(self, plane, build):
        ledger, proof = build(plane)
        value, postings = proof.matches[0]
        tampered = replace(
            proof, matches=((value, postings[:-1]),) + proof.matches[1:]
        )
        assert not tampered.verify(ledger.digest().chain_digest)

    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_fabricated_match(self, plane, build):
        ledger, proof = build(plane)
        value, postings = proof.matches[0]
        tampered = replace(
            proof,
            matches=((value, postings + (b"uk-evil",)),)
            + proof.matches[1:],
        )
        assert not tampered.verify(ledger.digest().chain_digest)

    def test_boundary_omission(self, plane):
        ledger, proof = _range_proof(plane)
        evidence = proof.evidence
        # Drop the first proven entry — on an inclusive range this is a
        # boundary leaf; the replayed scan no longer hashes to the root.
        tampered_evidence = replace(evidence, entries=evidence.entries[1:])
        tampered = replace(
            proof,
            matches=proof.matches[1:],
            evidence=tampered_evidence,
        )
        assert not tampered.verify(ledger.digest().chain_digest)

    def test_narrowed_range(self, plane):
        ledger, index, _ = plane
        narrow = build_search_proof(
            ledger, index, "t.score", SearchPredicate.between(15.0, 25.0)
        )
        # Re-label a narrower (complete, authentic) scan as the wider
        # query: bounds mismatch must be detected.
        widened = replace(
            narrow, predicate=SearchPredicate.between(15.0, 35.0)
        )
        assert not widened.verify(ledger.digest().chain_digest)

    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_stale_index_root(self, plane, build):
        ledger, index, inverted = plane
        _, proof = build(plane)
        # Advance the chain with new postings: the old anchor no longer
        # matches the pinned digest.
        inverted.add("t.term", "alpha", b"uk-06")
        index.note_change("t.term", "alpha")
        ledger.append_block({SEARCH_ROOT_KEY: index.seal(inverted)})
        assert not proof.verify(ledger.digest().chain_digest)
        # A fresh proof against the new state verifies again.
        _, fresh = build(plane)
        assert fresh.verify(ledger.digest().chain_digest)

    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_undecodable_evidence_nodes(self, plane, build):
        ledger, proof = build(plane)
        evidence = proof.evidence
        garbage = tuple(b"\xff garbage node" for _ in evidence.nodes)
        tampered = replace(
            proof, evidence=replace(evidence, nodes=garbage)
        )
        assert tampered.verify(ledger.digest().chain_digest) is False  # not an exception

    @pytest.mark.parametrize("build", [_keyword_proof, _range_proof])
    def test_undecodable_anchor_nodes(self, plane, build):
        ledger, proof = build(plane)
        siri = replace(
            proof.anchor.siri,
            nodes=tuple(b"junk" for _ in proof.anchor.siri.nodes),
        )
        tampered = replace(proof, anchor=replace(proof.anchor, siri=siri))
        assert tampered.verify(ledger.digest().chain_digest) is False

    def test_non_canonical_postings_detected(self, plane):
        ledger, proof = _keyword_proof(plane)
        value, postings = proof.matches[0]
        # Claim the same set in a different order: matches are compared
        # against the canonical decode, so ordering tampering fails.
        tampered = replace(
            proof, matches=((value, tuple(reversed(postings))),)
        )
        assert not tampered.verify(ledger.digest().chain_digest)

    def test_wrong_anchor_key_rejected(self, plane):
        ledger, proof = _keyword_proof(plane)
        tampered = replace(
            proof,
            anchor=replace(
                proof.anchor,
                siri=replace(proof.anchor.siri, key=b"k\x00other"),
            ),
        )
        assert not tampered.verify(ledger.digest().chain_digest)


# -- unverified evaluation --------------------------------------------------


class TestEvaluateOnInverted:
    def test_eq_and_range_match_brute_force(self, plane):
        _, _, inverted = plane
        assert evaluate_on_inverted(
            inverted, "t.term", SearchPredicate.eq("beta")
        ) == [b"uk-03"]
        assert evaluate_on_inverted(
            inverted, "t.score", SearchPredicate.le(20)
        ) == [b"uk-01", b"uk-02", b"uk-03"]

    def test_type_mismatch_yields_empty(self, plane):
        _, _, inverted = plane
        assert (
            evaluate_on_inverted(
                inverted, "t.score", SearchPredicate.ge("zz")
            )
            == []
        )

    def test_unknown_column_yields_empty(self, plane):
        _, _, inverted = plane
        assert (
            evaluate_on_inverted(inverted, "t.nope", SearchPredicate.eq(1))
            == []
        )
