"""Unit tests for two-phase commit."""

import pytest

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.txn.manager import TransactionManager
from repro.txn.two_pc import Participant, TwoPhaseCoordinator, Vote


def _participants(names):
    return [Participant(name, TransactionManager()) for name in names]


class TestTwoPhaseCommit:
    def test_successful_global_commit(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        gid = coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert gid.startswith("gtx-")
        assert a.manager.begin().read("x") == 1
        assert b.manager.begin().read("y") == 2

    def test_unknown_participant_rejected(self):
        (a,) = _participants("a")
        coordinator = TwoPhaseCoordinator([a])
        with pytest.raises(TwoPhaseCommitError):
            coordinator.execute({"ghost": {"k": 1}})

    def test_requires_participants(self):
        with pytest.raises(ValueError):
            TwoPhaseCoordinator([])

    def test_prepare_failure_aborts_all_branches(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert a.manager.begin().read("x") is None
        assert b.manager.begin().read("y") is None
        assert not a.is_prepared("gtx-1")

    def test_no_vote_aborts(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        # Make b's branch certify-fail by writing a conflicting commit
        # between prepare and nothing: stage a conflicting txn first.
        blocker = b.manager.begin()
        blocker.write("y", "held")
        # With OCC the conflict only appears at commit; emulate a NO
        # vote via prepare-time failure injection instead.
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        blocker.abort()

    def test_commit_phase_failure_recovers(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        b.fail_next_commit = True
        with pytest.raises(TwoPhaseCommitError):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        # The decision was commit: a is done, b is in doubt.
        assert a.manager.begin().read("x") == 1
        assert b.manager.begin().read("y") is None
        assert b.is_prepared("gtx-1")
        resolved = coordinator.recover(b)
        assert resolved == 1
        assert b.manager.begin().read("y") == 2

    def test_recover_with_nothing_pending(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}})
        assert coordinator.recover(a) == 0

    def test_decision_log_records_outcomes(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}})
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"b": {"y": 1}})
        assert coordinator.log == [("gtx-1", "commit"), ("gtx-2", "abort")]

    def test_sequential_transactions_on_same_keys(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"acct": 100}, "b": {"acct": 0}})
        coordinator.execute({"a": {"acct": 60}, "b": {"acct": 40}})
        assert a.manager.begin().read("acct") == 60
        assert b.manager.begin().read("acct") == 40

    def test_vote_enum(self):
        assert Vote.YES is not Vote.NO
