"""Unit tests for two-phase commit."""

import random
import threading

import pytest

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.txn.hlc import HLCTimestamp, HlcOracle, HybridLogicalClock
from repro.txn.manager import TransactionManager
from repro.txn.two_pc import Participant, TwoPhaseCoordinator, Vote


def _participants(names):
    return [Participant(name, TransactionManager()) for name in names]


class TestTwoPhaseCommit:
    def test_successful_global_commit(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        gid = coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert gid.startswith("gtx-")
        assert a.manager.begin().read("x") == 1
        assert b.manager.begin().read("y") == 2

    def test_unknown_participant_rejected(self):
        (a,) = _participants("a")
        coordinator = TwoPhaseCoordinator([a])
        with pytest.raises(TwoPhaseCommitError):
            coordinator.execute({"ghost": {"k": 1}})

    def test_requires_participants(self):
        with pytest.raises(ValueError):
            TwoPhaseCoordinator([])

    def test_prepare_failure_aborts_all_branches(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert a.manager.begin().read("x") is None
        assert b.manager.begin().read("y") is None
        assert not a.is_prepared("gtx-1")

    def test_no_vote_aborts(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        # Make b's branch certify-fail by writing a conflicting commit
        # between prepare and nothing: stage a conflicting txn first.
        blocker = b.manager.begin()
        blocker.write("y", "held")
        # With OCC the conflict only appears at commit; emulate a NO
        # vote via prepare-time failure injection instead.
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        blocker.abort()

    def test_commit_phase_failure_recovers(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        b.fail_next_commit = True
        with pytest.raises(TwoPhaseCommitError):
            coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        # The decision was commit: a is done, b is in doubt.
        assert a.manager.begin().read("x") == 1
        assert b.manager.begin().read("y") is None
        assert b.is_prepared("gtx-1")
        resolved = coordinator.recover(b)
        assert resolved == 1
        assert b.manager.begin().read("y") == 2

    def test_recover_with_nothing_pending(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}})
        assert coordinator.recover(a) == 0

    def test_decision_log_records_outcomes(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}})
        b.fail_next_prepare = True
        with pytest.raises(TransactionAborted):
            coordinator.execute({"b": {"y": 1}})
        assert coordinator.log == [("gtx-1", "commit"), ("gtx-2", "abort")]

    def test_sequential_transactions_on_same_keys(self):
        a, b = _participants("ab")
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"acct": 100}, "b": {"acct": 0}})
        coordinator.execute({"a": {"acct": 60}, "b": {"acct": 40}})
        assert a.manager.begin().read("acct") == 60
        assert b.manager.begin().read("acct") == 40

    def test_vote_enum(self):
        assert Vote.YES is not Vote.NO


class TestPrepareFailureHardening:
    def test_arbitrary_prepare_exception_aborts_all_branches(self):
        """Regression: only TwoPhaseCommitError used to be caught in
        the prepare loop — a RuntimeError (timeout, codec bug) escaped
        and stranded every already-prepared branch."""
        a, b, c = _participants("abc")
        coordinator = TwoPhaseCoordinator([a, b, c])

        def exploding_prepare(global_id, writes, timestamp=None):
            raise RuntimeError("transport blew up mid-prepare")

        b.prepare = exploding_prepare
        with pytest.raises(TransactionAborted):
            coordinator.execute(
                {"a": {"x": 1}, "b": {"y": 2}, "c": {"z": 3}}
            )
        for participant in (a, b, c):
            assert participant.prepared_count() == 0
        assert a.manager.begin().read("x") is None
        assert c.manager.begin().read("z") is None
        assert coordinator.log == [("gtx-1", "abort")]

    def test_duplicate_global_id_aborts_stale_branch(self):
        """Regression: a coordinator retry with the same global id
        used to overwrite the staged Transaction, leaking the first
        branch forever."""
        (a,) = _participants("a")
        assert a.prepare("gtx-9", {"k": "old"}) is Vote.YES
        assert a.prepare("gtx-9", {"k": "new"}) is Vote.YES
        assert a.duplicates_aborted == 1
        assert a.prepared_count() == 1
        a.commit("gtx-9")
        assert a.prepared_count() == 0
        assert a.manager.begin().read("k") == "new"


class TestHlcPropagation:
    def test_commit_observed_from_shard_a_pushes_shard_b_forward(self):
        """Satellite: the 2PC message flow must carry HLC stamps so a
        commit witnessed on one shard forces every other involved
        shard's next allocation strictly past it."""
        frozen = lambda: 1000  # noqa: E731 — physical time never moves
        oracle_a = HlcOracle(1, HybridLogicalClock(physical_clock=frozen))
        oracle_b = HlcOracle(2, HybridLogicalClock(physical_clock=frozen))
        a = Participant("a", TransactionManager(oracle=oracle_a))
        b = Participant("b", TransactionManager(oracle=oracle_b))
        coordinator = TwoPhaseCoordinator(
            [a, b],
            oracle=HlcOracle(0, HybridLogicalClock(physical_clock=frozen)),
        )
        # Shard A races far ahead (skewed clock on some peer it met).
        oracle_a.witness(
            HLCTimestamp(wall=5000, logical=7).as_int()
            << HlcOracle.NODE_BITS
        )
        stamp_a = oracle_a.current()
        assert oracle_b.next_timestamp() < stamp_a  # B genuinely behind
        coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert oracle_b.next_timestamp() > stamp_a
        # The coordinator itself also learned A's stamp from the ack.
        assert coordinator.oracle.next_timestamp() > stamp_a

    def test_participants_auto_detect_manager_oracle(self):
        oracle = HlcOracle(3)
        participant = Participant("p", TransactionManager(oracle=oracle))
        assert participant.oracle is oracle
        assert participant.send_timestamp() is not None

    def test_plain_oracle_managers_run_without_stamps(self):
        a, b = _participants("ab")
        assert a.oracle is None
        assert a.send_timestamp() is None
        coordinator = TwoPhaseCoordinator([a, b])
        coordinator.execute({"a": {"x": 1}, "b": {"y": 2}})
        assert b.manager.begin().read("y") == 2


@pytest.mark.stress
def test_threaded_mixed_outcomes_leave_no_stranded_branches():
    """Hammer the coordinator from many threads with successful,
    NO-voting and crash-injected transactions; afterwards no
    participant may hold a stray prepared branch, and recovery must
    resolve exactly the post-decision failures."""
    participants = _participants("abc")
    coordinator = TwoPhaseCoordinator(participants)
    threads = 8
    ops = 25
    stats_lock = threading.Lock()
    aborted = []
    in_doubt = []   # committed globally, some branch left for recovery
    committed = []  # fully committed

    def worker(tid):
        rng = random.Random(tid)
        for i in range(ops):
            key = f"k-{tid}-{i}"
            value = tid * 1000 + i
            roll = rng.random()
            victim = rng.choice(participants)
            if roll < 0.2:
                victim.fail_next_prepare = True
            elif roll < 0.4:
                victim.fail_next_commit = True
            writes = {p.name: {key: value} for p in participants}
            try:
                coordinator.execute(writes)
            except TransactionAborted:
                with stats_lock:
                    aborted.append((key, value))
            except TwoPhaseCommitError:
                with stats_lock:
                    in_doubt.append((key, value))
            else:
                with stats_lock:
                    committed.append((key, value))

    workers = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(threads)
    ]
    for worker_thread in workers:
        worker_thread.start()
    for worker_thread in workers:
        worker_thread.join()

    assert len(aborted) + len(in_doubt) + len(committed) == threads * ops
    # Injection flags race across threads, so exact counts per outcome
    # vary — but each seeded schedule produces some of every kind.
    assert committed and aborted and in_doubt

    # Every surviving prepared branch must belong to a post-decision
    # failure, and recovery must resolve them all — nothing stranded.
    stranded = sum(p.prepared_count() for p in participants)
    assert stranded >= len(in_doubt)  # >=1 branch per commit failure
    resolved = sum(coordinator.recover(p) for p in participants)
    assert resolved == stranded
    assert all(p.prepared_count() == 0 for p in participants)

    # After recovery, every globally-committed write is visible on
    # every participant — including those whose first commit crashed.
    for key, value in committed + in_doubt:
        for participant in participants:
            assert participant.manager.begin().read(key) == value
    for key, _value in aborted:
        for participant in participants:
            assert participant.manager.begin().read(key) is None
