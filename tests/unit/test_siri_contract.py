"""The SIRI contract, checked uniformly across all three members.

Structural invariance, recyclability and integrated proofs are the
three properties [59] uses to define the family; every member must
satisfy all of them.
"""

import random

import pytest

from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.pos_tree import PosTree
from repro.indexes.siri import DELETE


def _make(kind, store):
    if kind == "pos":
        return PosTree.empty(store)
    if kind == "mpt":
        return MerklePatriciaTrie.empty(store)
    return MerkleBucketTree.empty(store, buckets=32)


def _verify(kind, proof, root):
    if kind == "pos":
        return PosTree.verify_proof(proof, root)
    if kind == "mpt":
        return MerklePatriciaTrie.verify_proof(proof, root)
    return MerkleBucketTree.verify_proof(proof, root, buckets=32)


ITEMS = [(f"key:{i:04d}".encode(), f"val{i}".encode()) for i in range(150)]


@pytest.mark.parametrize("kind", ["pos", "mpt", "mbt"])
class TestSiriContract:
    def test_structural_invariance(self, store, kind):
        one = _make(kind, store).apply(dict(ITEMS))
        shuffled = list(ITEMS)
        random.Random(13).shuffle(shuffled)
        other = _make(kind, store)
        for start in range(0, len(shuffled), 17):
            other = other.apply(dict(shuffled[start:start + 17]))
        assert one.root == other.root

    def test_recyclability_persistence(self, store, kind):
        base = _make(kind, store).apply(dict(ITEMS))
        updated = base.set(ITEMS[0][0], b"changed")
        assert base.get(ITEMS[0][0]) == ITEMS[0][1]
        assert updated.get(ITEMS[0][0]) == b"changed"
        reverted = updated.set(ITEMS[0][0], ITEMS[0][1])
        assert reverted.root == base.root

    def test_node_sharing_on_update(self, store, kind):
        base = _make(kind, store).apply(dict(ITEMS))
        before = store.stats.unique_chunks
        base.set(ITEMS[10][0], b"new-value")
        added = store.stats.unique_chunks - before
        # Far fewer new nodes than the index holds in total.
        assert added < 15

    def test_integrated_presence_proof(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        value, proof = index.get_with_proof(ITEMS[42][0])
        assert value == ITEMS[42][1]
        assert _verify(kind, proof, index.root)

    def test_integrated_absence_proof(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        value, proof = index.get_with_proof(b"zzz:absent")
        assert value is None
        assert _verify(kind, proof, index.root)

    def test_proofs_do_not_transfer_between_roots(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        changed = index.set(ITEMS[42][0], b"other")
        _value, proof = index.get_with_proof(ITEMS[42][0])
        assert not _verify(kind, proof, changed.root)

    def test_delete_returns_to_prior_root(self, store, kind):
        base = _make(kind, store).apply(dict(ITEMS))
        extended = base.set(b"zzz:extra", b"x")
        shrunk = extended.delete(b"zzz:extra")
        assert shrunk.root == base.root

    def test_items_cover_everything(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        assert sorted(index.items()) == sorted(ITEMS)

    def test_len(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        assert len(index) == len(ITEMS)

    def test_apply_delete_sentinel(self, store, kind):
        index = _make(kind, store).apply(dict(ITEMS))
        dropped = index.apply({ITEMS[0][0]: DELETE})
        assert dropped.get(ITEMS[0][0]) is None
