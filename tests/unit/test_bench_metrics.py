"""Unit tests for benchmark metrics plumbing."""

from repro.bench.metrics import FigureResult, Series, measure_ops


class TestSeries:
    def test_add_points(self):
        series = Series("sys")
        series.add(10, 1.5)
        series.add(20, 2.5)
        assert series.points == {10: 1.5, 20: 2.5}


class TestFigureResult:
    def _figure(self):
        figure = FigureResult("FigX", "title", "#Records", "ops/s")
        figure.series_named("A").add(10, 100.0)
        figure.series_named("A").add(20, 50.0)
        figure.series_named("B").add(10, 10.0)
        return figure

    def test_series_named_creates_once(self):
        figure = self._figure()
        assert figure.series_named("A") is figure.series_named("A")
        assert len(figure.series) == 2

    def test_xs_union(self):
        assert self._figure().xs() == [10, 20]

    def test_format_table_contains_everything(self):
        text = self._figure().format_table()
        assert "FigX" in text
        assert "A" in text and "B" in text
        assert "100.0" in text
        assert "-" in text  # B has no point at x=20

    def test_ratio(self):
        assert self._figure().ratio("A", "B", 10) == 10.0


class TestMeasureOps:
    def test_returns_positive_throughput(self):
        calls = []
        throughput = measure_ops(lambda: calls.append(1), count=50)
        assert len(calls) == 50
        assert throughput > 0
