"""Unit tests for the POS-tree (SIRI member Spitz's ledger uses)."""

import random

import pytest

from repro.indexes.pos_tree import PosTree
from repro.indexes.siri import DELETE, SiriProof


def _items(n, prefix="k"):
    return [
        (f"{prefix}{i:06d}".encode(), f"v{i}".encode()) for i in range(n)
    ]


class TestConstruction:
    def test_empty(self, store):
        tree = PosTree.empty(store)
        assert tree.count == 0
        assert tree.get(b"anything") is None

    def test_from_items(self, store):
        tree = PosTree.from_items(store, _items(100))
        assert tree.count == 100
        assert tree.get(b"k000042") == b"v42"

    def test_from_items_duplicate_keys_last_wins(self, store):
        tree = PosTree.from_items(store, [(b"k", b"1"), (b"k", b"2")])
        assert tree.get(b"k") == b"2"

    def test_load_reconstructs(self, store):
        tree = PosTree.from_items(store, _items(500))
        loaded = PosTree.load(store, tree.root)
        assert loaded.root == tree.root
        assert loaded.count == 500
        assert loaded.get(b"k000123") == b"v123"

    def test_load_single_leaf_tree(self, store):
        tree = PosTree.from_items(store, _items(3))
        loaded = PosTree.load(store, tree.root)
        assert list(loaded.items()) == list(tree.items())


class TestStructuralInvariance:
    def test_insertion_order_irrelevant(self, store):
        items = _items(300)
        bulk = PosTree.from_items(store, items)
        shuffled = list(items)
        random.Random(9).shuffle(shuffled)
        incremental = PosTree.empty(store)
        for key, value in shuffled:
            incremental = incremental.apply({key: value})
        assert incremental.root == bulk.root

    def test_batching_irrelevant(self, store):
        items = _items(300)
        one_batch = PosTree.empty(store).apply(dict(items))
        many = PosTree.empty(store)
        for start in range(0, 300, 7):
            many = many.apply(dict(items[start:start + 7]))
        assert one_batch.root == many.root

    def test_update_then_revert_restores_root(self, store):
        tree = PosTree.from_items(store, _items(200))
        modified = tree.apply({b"k000050": b"other"})
        reverted = modified.apply({b"k000050": b"v50"})
        assert reverted.root == tree.root

    def test_delete_matches_fresh_build(self, store):
        items = _items(200)
        tree = PosTree.from_items(store, items)
        dropped = tree.apply({items[17][0]: DELETE})
        rebuilt = PosTree.from_items(
            store, items[:17] + items[18:]
        )
        assert dropped.root == rebuilt.root

    def test_delete_everything_is_canonical_empty(self, store):
        tree = PosTree.from_items(store, _items(64))
        emptied = tree.apply({key: DELETE for key, _ in _items(64)})
        assert emptied.root == PosTree.empty(store).root


class TestPersistence:
    def test_apply_does_not_mutate_receiver(self, store):
        tree = PosTree.from_items(store, _items(50))
        tree.apply({b"k000001": b"changed"})
        assert tree.get(b"k000001") == b"v1"

    def test_node_sharing(self, store):
        tree = PosTree.from_items(store, _items(2000))
        before = store.stats.unique_chunks
        tree.apply({b"k001000": b"changed"})
        # Only the path to one leaf is rewritten.
        assert store.stats.unique_chunks - before <= 2 * tree.height

    def test_empty_apply_returns_self(self, store):
        tree = PosTree.from_items(store, _items(10))
        assert tree.apply({}) is tree


class TestReads:
    def test_absent_key(self, store):
        tree = PosTree.from_items(store, _items(100))
        assert tree.get(b"zzz") is None
        assert tree.get(b"") is None

    def test_items_sorted(self, store):
        items = _items(150)
        shuffled = list(items)
        random.Random(4).shuffle(shuffled)
        tree = PosTree.from_items(store, shuffled)
        assert list(tree.items()) == sorted(items)

    def test_scan_inclusive_bounds(self, store):
        tree = PosTree.from_items(store, _items(100))
        result = tree.scan(b"k000010", b"k000019")
        assert [k for k, _ in result] == [
            f"k{i:06d}".encode() for i in range(10, 20)
        ]

    def test_scan_empty_range(self, store):
        tree = PosTree.from_items(store, _items(20))
        assert tree.scan(b"x", b"y") == []

    def test_scan_whole_tree(self, store):
        tree = PosTree.from_items(store, _items(64))
        assert len(tree.scan(b"", b"\xff" * 8)) == 64

    def test_len_matches_count(self, store):
        tree = PosTree.from_items(store, _items(37))
        assert len(tree) == tree.count == 37


class TestProofs:
    def test_present_key_proof(self, store):
        tree = PosTree.from_items(store, _items(500))
        value, proof = tree.get_with_proof(b"k000321")
        assert value == b"v321"
        assert PosTree.verify_proof(proof, tree.root)

    def test_absence_proof(self, store):
        tree = PosTree.from_items(store, _items(500))
        value, proof = tree.get_with_proof(b"not-there")
        assert value is None
        assert PosTree.verify_proof(proof, tree.root)

    def test_forged_value_rejected(self, store):
        tree = PosTree.from_items(store, _items(100))
        _value, proof = tree.get_with_proof(b"k000001")
        forged = SiriProof(key=proof.key, value=b"evil", nodes=proof.nodes)
        assert not PosTree.verify_proof(forged, tree.root)

    def test_forged_absence_rejected(self, store):
        tree = PosTree.from_items(store, _items(100))
        _value, proof = tree.get_with_proof(b"k000001")
        forged = SiriProof(key=proof.key, value=None, nodes=proof.nodes)
        assert not PosTree.verify_proof(forged, tree.root)

    def test_wrong_root_rejected(self, store):
        tree = PosTree.from_items(store, _items(100))
        other = tree.apply({b"k000001": b"new"})
        _value, proof = tree.get_with_proof(b"k000002")
        # Same value exists in both trees, but the proof binds to the
        # old root's node set.
        assert PosTree.verify_proof(proof, tree.root)

    def test_tampered_node_bytes_rejected(self, store):
        tree = PosTree.from_items(store, _items(100))
        _value, proof = tree.get_with_proof(b"k000001")
        nodes = list(proof.nodes)
        nodes[0] = nodes[0][:-1] + bytes([nodes[0][-1] ^ 1])
        forged = SiriProof(
            key=proof.key, value=proof.value, nodes=tuple(nodes)
        )
        assert not PosTree.verify_proof(forged, tree.root)

    def test_empty_proof_rejected(self, store):
        tree = PosTree.from_items(store, _items(10))
        forged = SiriProof(key=b"k", value=None, nodes=())
        assert not PosTree.verify_proof(forged, tree.root)

    def test_proof_with_cache_consistent(self, store):
        tree = PosTree.from_items(store, _items(300))
        cache = {}
        for key in (b"k000001", b"k000002", b"k000003"):
            _value, proof = tree.get_with_proof(key)
            assert PosTree.verify_proof(proof, tree.root, cache)
        assert cache  # upper nodes were memoized
        # A forged proof must still fail with a warm cache.
        _value, proof = tree.get_with_proof(b"k000004")
        forged = SiriProof(key=proof.key, value=b"bad", nodes=proof.nodes)
        assert not PosTree.verify_proof(forged, tree.root, cache)


class TestRangeProofs:
    def test_range_proof_verifies(self, store):
        tree = PosTree.from_items(store, _items(400))
        entries, proof = tree.scan_with_proof(b"k000100", b"k000149")
        assert len(entries) == 50
        assert proof.verify(tree.root)

    def test_dropped_entry_rejected(self, store):
        tree = PosTree.from_items(store, _items(200))
        _entries, proof = tree.scan_with_proof(b"k000010", b"k000029")
        forged = type(proof)(
            low=proof.low,
            high=proof.high,
            entries=proof.entries[:-1],
            nodes=proof.nodes,
            root=proof.root,
        )
        assert not forged.verify(tree.root)

    def test_added_entry_rejected(self, store):
        tree = PosTree.from_items(store, _items(200))
        _entries, proof = tree.scan_with_proof(b"k000010", b"k000029")
        forged = type(proof)(
            low=proof.low,
            high=proof.high,
            entries=proof.entries + ((b"k999999", b"bogus"),),
            nodes=proof.nodes,
            root=proof.root,
        )
        assert not forged.verify(tree.root)

    def test_wrong_root_rejected(self, store):
        tree = PosTree.from_items(store, _items(200))
        other = tree.apply({b"k000000": b"x"})
        _entries, proof = tree.scan_with_proof(b"k000010", b"k000029")
        assert not proof.verify(other.root)

    def test_empty_range_proof(self, store):
        tree = PosTree.from_items(store, _items(50))
        entries, proof = tree.scan_with_proof(b"zzz", b"zzzz")
        assert entries == []
        assert proof.verify(tree.root)


class TestMaskBits:
    @pytest.mark.parametrize("mask_bits", [2, 3, 5, 7])
    def test_invariance_across_node_sizes(self, store, mask_bits):
        items = _items(200)
        bulk = PosTree.from_items(store, items, mask_bits=mask_bits)
        incremental = PosTree.empty(store, mask_bits=mask_bits)
        for start in range(0, 200, 13):
            incremental = incremental.apply(dict(items[start:start + 13]))
        assert incremental.root == bulk.root

    def test_different_mask_different_root(self, store):
        items = _items(100)
        a = PosTree.from_items(store, items, mask_bits=3)
        b = PosTree.from_items(store, items, mask_bits=6)
        # Different node geometry => different node set => different root.
        assert a.root != b.root
