"""Prometheus text rendering and the strict scrape parser.

The parser here is the same one CI runs against live ``/metrics``
scrapes, so its strictness (duplicate series, bad names, bad values)
is itself under test."""

import pytest

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
from repro.obs.exposition import (
    PROM_CONTENT_TYPE,
    check_monotone,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.timeseries import TelemetryPlane


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("db.commits").inc(7)
    registry.counter("requests.total").inc(100)
    registry.gauge("queue.depth").set(3)
    hist = registry.histogram("request.latency_seconds")
    for value in (0.001, 0.002, 0.004, 0.5):
        hist.observe(value)
    return registry


class TestRender:
    def test_counters_get_total_suffix_and_type(self):
        text = render_prometheus(loaded_registry().exposition_snapshot())
        assert "# TYPE spitz_db_commits_total counter" in text
        assert "spitz_db_commits_total 7" in text

    def test_gauges_rendered_plain(self):
        text = render_prometheus(loaded_registry().exposition_snapshot())
        assert "# TYPE spitz_queue_depth gauge" in text
        assert "spitz_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(loaded_registry().exposition_snapshot())
        series = parse_prometheus(text)
        buckets = sorted(
            (float(key.split('le="')[1].rstrip('"}')), value)
            for key, value in series.items()
            if key.startswith("spitz_request_latency_seconds_bucket")
            and "+Inf" not in key
        )
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[-1] == 4.0
        assert (
            series['spitz_request_latency_seconds_bucket{le="+Inf"}'] == 4.0
        )
        assert series["spitz_request_latency_seconds_count"] == 4.0
        assert series["spitz_request_latency_seconds_sum"] == pytest.approx(
            0.507
        )

    def test_bucket_bounds_come_from_the_registry_grid(self):
        text = render_prometheus(loaded_registry().exposition_snapshot())
        for line in text.splitlines():
            if "_bucket{le=" in line and "+Inf" not in line:
                bound = float(line.split('le="')[1].split('"')[0])
                assert bound in BUCKET_BOUNDS

    def test_windowed_rates_rendered_with_window_label(self):
        registry = loaded_registry()
        clock = FakeClock()
        plane = TelemetryPlane(registry, clock=clock)
        plane.tick()
        registry.counter("requests.total").inc(60)
        clock.advance(1.0)
        plane.tick()
        text = render_prometheus(
            registry.exposition_snapshot(),
            windows=plane.windows_snapshot(),
        )
        series = parse_prometheus(text)
        assert series['spitz_requests_total_rate{window="60s"}'] == 60.0
        assert 'spitz_requests_total_rate{window="600s"}' in series

    def test_shard_series_labelled_one_type_header(self):
        shard_a = MetricsRegistry()
        shard_a.counter("db.commits").inc(2)
        shard_b = MetricsRegistry()
        shard_b.counter("db.commits").inc(5)
        text = render_prometheus(
            loaded_registry().exposition_snapshot(),
            shards={
                "00": shard_a.exposition_snapshot(),
                "01": shard_b.exposition_snapshot(),
            },
        )
        series = parse_prometheus(text)
        assert series['spitz_shard_db_commits_total{shard="00"}'] == 2.0
        assert series['spitz_shard_db_commits_total{shard="01"}'] == 5.0
        assert text.count("# TYPE spitz_shard_db_commits_total counter") == 1

    def test_content_type_is_the_prom_text_version(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestParser:
    def test_round_trip_has_no_duplicates(self):
        text = render_prometheus(loaded_registry().exposition_snapshot())
        series = parse_prometheus(text)  # raises on any duplicate
        assert len(series) > 5

    def test_duplicate_series_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("a_total 1\na_total 2\n")

    def test_same_name_different_labels_allowed(self):
        series = parse_prometheus(
            'a_bucket{le="1"} 1\na_bucket{le="2"} 2\n'
        )
        assert len(series) == 2

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_prometheus("a_total one\n")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="unparsable|bad metric"):
            parse_prometheus("9bad_total 1\n")

    def test_comments_and_blanks_skipped(self):
        series = parse_prometheus(
            "# TYPE a_total counter\n\na_total 3\n"
        )
        assert series == {"a_total": 3.0}


class TestMonotone:
    def test_counter_regression_detected(self):
        before = {"a_total": 5.0, "g": 9.0}
        after = {"a_total": 4.0, "g": 1.0}
        regressions = check_monotone(before, after)
        # Gauges may move freely; only *_total counters are held.
        assert regressions == ["a_total: 5.0 -> 4.0"]

    def test_growing_counters_pass(self):
        before = {"a_total": 5.0}
        after = {"a_total": 6.0, "b_total": 1.0}
        assert check_monotone(before, after) == []

    def test_labelled_counters_checked_per_series(self):
        before = {'s_total{shard="00"} ': 5.0}
        after = {'s_total{shard="00"} ': 5.0}
        assert check_monotone(before, after) == []
