"""Unit tests for the SQL front end."""

import pytest

from repro.errors import SqlSyntaxError
from repro.core.query import Op
from repro.core.sql import (
    CreateTable,
    Delete,
    Insert,
    Select,
    Update,
    parse,
)


class TestCreateTable:
    def test_basic(self):
        stmt = parse(
            "CREATE TABLE t (id INT, name TEXT, PRIMARY KEY (id))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.table == "t"
        assert stmt.columns == (("id", "int"), ("name", "str"))
        assert stmt.primary_key == "id"

    def test_type_synonyms(self):
        stmt = parse(
            "CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE, d BOOLEAN, "
            "e BLOB, f JSON, PRIMARY KEY (a))"
        )
        assert stmt.columns == (
            ("a", "int"), ("b", "str"), ("c", "float"),
            ("d", "bool"), ("e", "bytes"), ("f", "json"),
        )

    def test_missing_primary_key(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (id INT)")

    def test_unknown_type(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (id WIDGET, PRIMARY KEY (id))")


class TestInsert:
    def test_basic(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("a", "b")
        assert stmt.values == (1, "x")

    def test_literals(self):
        stmt = parse(
            "INSERT INTO t (a, b, c, d, e) "
            "VALUES (-7, 2.5, 'it''s', TRUE, NULL)"
        )
        assert stmt.values[0] == -7
        assert stmt.values[1] == 2.5
        assert stmt.values[2] == "it's"
        assert stmt.values[3] is True
        assert stmt.values[4] is None

    def test_negative_float_literal(self):
        stmt = parse("SELECT * FROM t WHERE a > -1.5")
        assert stmt.where[0].value == -1.5

    def test_count_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert stmt.columns == ("*",)
        assert stmt.where == ()

    def test_column_list(self):
        stmt = parse("SELECT a, b FROM t")
        assert stmt.columns == ("a", "b")

    def test_where_operators(self):
        stmt = parse(
            "SELECT * FROM t WHERE a = 1 AND b != 'x' AND c <= 5 "
            "AND d > 2 AND e BETWEEN 1 AND 9"
        )
        ops = [c.op for c in stmt.where]
        assert ops == [Op.EQ, Op.NE, Op.LE, Op.GT, Op.BETWEEN]
        between = stmt.where[-1]
        assert (between.value, between.high) == (1, 9)

    def test_as_of_block(self):
        stmt = parse("SELECT * FROM t WHERE id = 1 AS OF BLOCK 42")
        assert stmt.as_of_block == 42

    def test_limit(self):
        stmt = parse("SELECT * FROM t LIMIT 10")
        assert stmt.limit == 10

    def test_case_insensitive_keywords(self):
        stmt = parse("select a from t where a < 5 limit 1")
        assert stmt.columns == ("a",)
        assert stmt.limit == 1

    def test_ne_synonym(self):
        stmt = parse("SELECT * FROM t WHERE a <> 3")
        assert stmt.where[0].op == Op.NE


class TestUpdateDelete:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, Update)
        assert stmt.assignments == (("a", 1), ("b", "x"))
        assert stmt.where[0].value == 3

    def test_update_without_where(self):
        stmt = parse("UPDATE t SET a = 1")
        assert stmt.where == ()

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 9")
        assert isinstance(stmt, Delete)
        assert stmt.where[0].value == 9


class TestErrors:
    def test_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("FROB THE KNOB")

    def test_trailing_tokens(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t extra junk ;")

    def test_unterminated(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t WHERE a = #")

    def test_error_reports_offset(self):
        try:
            parse("SELECT * FROM t WHERE = 1")
        except SqlSyntaxError as error:
            assert error.position > 0
        else:  # pragma: no cover
            raise AssertionError("expected SqlSyntaxError")
