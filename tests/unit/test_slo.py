"""SLO burn-rate evaluation: burn math, the volume gate, the
both-windows rule for critical, and fast-window recovery."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    STATE_CRITICAL,
    STATE_OK,
    STATE_WARN,
    SloEvaluator,
    SloObjective,
    default_objectives,
)
from repro.obs.timeseries import TimeSeries


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_rig(min_requests: int = 25, with_registry: bool = False):
    registry = MetricsRegistry()
    clock = FakeClock()
    ts = TimeSeries(registry, slot_seconds=1.0, retention_slots=700,
                    clock=clock)
    objective = SloObjective(
        name="get-availability", kind="get",
        objective="availability", threshold=0.01,
    )
    evaluator = SloEvaluator(
        ts, [objective], fast_window=60.0, slow_window=600.0,
        min_requests=min_requests,
        registry=registry if with_registry else None,
    )
    return registry, clock, ts, evaluator


def drive(registry, clock, ts, ok: int, errors: int, seconds: float = 1.0):
    """One slot of traffic: ok+errors gets, ``errors`` of them failed."""
    registry.counter("requests.kind.get").inc(ok + errors)
    if errors:
        registry.counter("requests.kind.get.errors").inc(errors)
    clock.advance(seconds)
    ts.tick()


class TestObjective:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="get", objective="throughput")

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="get", threshold=0.0)

    def test_duplicate_names_rejected(self):
        registry, clock, ts, _ = make_rig()
        objective = SloObjective(name="dup", kind="get")
        with pytest.raises(ValueError):
            SloEvaluator(ts, [objective, objective])

    def test_default_objectives_cover_served_kinds(self):
        kinds = {o.kind for o in default_objectives()}
        assert {"get", "put", "multi_get"} <= kinds


class TestBurnMath:
    def test_no_traffic_is_ok(self):
        _, _, ts, evaluator = make_rig()
        ts.tick()
        (status,) = evaluator.evaluate()
        assert status.state == STATE_OK
        assert status.fast_burn == 0.0

    def test_burn_is_error_ratio_over_budget(self):
        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        # 5% errors against a 1% budget = 5x burn.
        drive(registry, clock, ts, ok=95, errors=5)
        (status,) = evaluator.evaluate()
        assert status.fast_burn == pytest.approx(5.0)
        assert status.slow_burn == pytest.approx(5.0)

    def test_volume_gate_blocks_critical(self):
        # 10 requests, all failed: burn is 100x in both windows, but
        # below min_requests nothing may trip.
        registry, clock, ts, evaluator = make_rig(min_requests=25)
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=10)
        (status,) = evaluator.evaluate()
        assert status.fast_burn > 14.4
        assert status.state == STATE_OK

    def test_hard_burn_both_windows_goes_critical(self):
        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=30)
        (status,) = evaluator.evaluate()
        assert status.state == STATE_CRITICAL
        assert "burn" in status.detail
        ok, reasons = evaluator.health()
        assert not ok
        assert "get-availability" in reasons[0]

    def test_fast_window_drain_recovers_while_slow_still_hot(self):
        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=30)
        (status,) = evaluator.evaluate()
        assert status.state == STATE_CRITICAL
        # 61 clean seconds: the burst leaves the 1m window but stays in
        # the 10m one.  Fast burn drops, state falls out of critical —
        # recovery is fast-window-paced by design.
        clock.advance(61.0)
        ts.tick()
        (status,) = evaluator.evaluate()
        assert status.fast_burn == 0.0
        assert status.slow_burn > 14.4
        assert status.state != STATE_CRITICAL
        assert evaluator.health()[0]

    def test_warn_on_single_hot_window(self):
        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=30)
        clock.advance(61.0)
        ts.tick()
        # Keep fresh traffic in the fast window so the volume gate
        # passes, with a healthy error ratio.
        drive(registry, clock, ts, ok=50, errors=0)
        (status,) = evaluator.evaluate()
        assert status.state == STATE_WARN

    def test_latency_objective_burns_on_slow_quantile(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        ts = TimeSeries(registry, clock=clock)
        objective = SloObjective(
            name="get-latency", kind="get", objective="latency",
            threshold=0.1, quantile=0.99, hard_burn=1.0,
        )
        evaluator = SloEvaluator(ts, [objective], min_requests=25)
        ts.tick()
        hist = registry.histogram("request.kind.get.latency_seconds")
        for _ in range(30):
            hist.observe(0.5)  # 5x the 100ms target
        clock.advance(1.0)
        ts.tick()
        (status,) = evaluator.evaluate()
        assert status.fast_burn > 1.0
        assert status.state == STATE_CRITICAL

    def test_statuses_cached_between_evaluations(self):
        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=30)
        evaluator.evaluate()
        # health() must answer from the cache without re-walking slots.
        assert not evaluator.health()[0]
        assert evaluator.statuses[0].state == STATE_CRITICAL


class TestGaugeExport:
    def test_burns_and_state_exported_as_gauges(self):
        registry, clock, ts, evaluator = make_rig(with_registry=True)
        ts.tick()
        drive(registry, clock, ts, ok=0, errors=30)
        evaluator.evaluate()
        assert registry.gauge(
            "slo.get-availability.burn_fast"
        ).value > 14.4
        assert registry.gauge("slo.get-availability.state").value == 2

    def test_snapshot_is_json_shaped(self):
        import json

        registry, clock, ts, evaluator = make_rig()
        ts.tick()
        drive(registry, clock, ts, ok=99, errors=1)
        evaluator.evaluate()
        snap = evaluator.snapshot()
        json.dumps(snap)  # must already be JSON-serializable
        assert snap["ok"] is True
        assert snap["objectives"][0]["name"] == "get-availability"
