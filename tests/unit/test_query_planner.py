"""Unit tests for query conditions and the planner."""

import pytest

from repro.errors import QueryError
from repro.core.query import (
    AccessPath,
    Condition,
    Op,
    plan_query,
    range_bounds,
)


def _cond(column, op, value, high=None):
    return Condition(column=column, op=op, value=value, high=high)


class TestConditionMatching:
    @pytest.mark.parametrize(
        "op,value,high,probe,expected",
        [
            (Op.EQ, 5, None, 5, True),
            (Op.EQ, 5, None, 6, False),
            (Op.NE, 5, None, 6, True),
            (Op.LT, 5, None, 4, True),
            (Op.LT, 5, None, 5, False),
            (Op.LE, 5, None, 5, True),
            (Op.GT, 5, None, 6, True),
            (Op.GE, 5, None, 5, True),
            (Op.BETWEEN, 3, 7, 5, True),
            (Op.BETWEEN, 3, 7, 8, False),
            (Op.BETWEEN, 3, 7, 3, True),
        ],
    )
    def test_matches(self, op, value, high, probe, expected):
        assert _cond("c", op, value, high).matches(probe) is expected


class TestPlanner:
    def test_pk_equality_wins(self):
        plan = plan_query(
            [_cond("other", Op.EQ, 1), _cond("id", Op.EQ, 2)], "id"
        )
        assert plan.path is AccessPath.PRIMARY_POINT
        assert plan.driver.column == "id"
        assert len(plan.residual) == 1

    def test_pk_range_second(self):
        plan = plan_query(
            [_cond("id", Op.BETWEEN, 1, 9), _cond("x", Op.EQ, 1)], "id"
        )
        assert plan.path is AccessPath.PRIMARY_RANGE

    def test_inverted_point(self):
        plan = plan_query([_cond("name", Op.EQ, "x")], "id")
        assert plan.path is AccessPath.INVERTED_POINT
        assert plan.residual == ()

    def test_inverted_range(self):
        plan = plan_query([_cond("price", Op.GE, 10)], "id")
        assert plan.path is AccessPath.INVERTED_RANGE

    def test_full_scan_fallback(self):
        plan = plan_query([_cond("name", Op.NE, "x")], "id")
        assert plan.path is AccessPath.FULL_SCAN
        assert plan.residual == (plan.residual[0],)

    def test_empty_conditions_full_scan(self):
        plan = plan_query([], "id")
        assert plan.path is AccessPath.FULL_SCAN

    def test_strict_driver_stays_in_residual(self):
        plan = plan_query([_cond("price", Op.LT, 10)], "id")
        assert plan.path is AccessPath.INVERTED_RANGE
        assert plan.driver in plan.residual

    def test_inclusive_driver_dropped_from_residual(self):
        plan = plan_query([_cond("price", Op.LE, 10)], "id")
        assert plan.driver not in plan.residual


class TestRangeBounds:
    def test_between(self):
        assert range_bounds(_cond("c", Op.BETWEEN, 1, 9)) == (1, 9)

    def test_open_ended(self):
        assert range_bounds(_cond("c", Op.GE, 5)) == (5, None)
        assert range_bounds(_cond("c", Op.LT, 5)) == (None, 5)

    def test_non_range_raises(self):
        with pytest.raises(QueryError):
            range_bounds(_cond("c", Op.EQ, 5))
