"""Unit tests for the radix tree."""

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.indexes.radix import RadixTree


class TestRadixTree:
    def test_insert_get(self):
        tree = RadixTree()
        tree.insert(b"hello", 1)
        assert tree.get(b"hello") == 1

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            RadixTree().get(b"ghost")

    def test_get_optional(self):
        assert RadixTree().get_optional(b"x", "dflt") == "dflt"

    def test_empty_key(self):
        tree = RadixTree()
        tree.insert(b"", "root-value")
        assert tree.get(b"") == "root-value"

    def test_prefix_relationships(self):
        tree = RadixTree()
        for key in (b"a", b"ab", b"abc", b"abd"):
            tree.insert(key, key.decode())
        assert tree.get(b"ab") == "ab"
        assert tree.get(b"abc") == "abc"
        assert b"abcd" not in tree

    def test_overwrite_keeps_size(self):
        tree = RadixTree()
        tree.insert(b"k", 1)
        tree.insert(b"k", 2)
        assert tree.get(b"k") == 2
        assert len(tree) == 1

    def test_items_lexicographic(self):
        tree = RadixTree()
        keys = [f"w{i:04d}".encode() for i in range(300)]
        shuffled = list(keys)
        random.Random(3).shuffle(shuffled)
        for key in shuffled:
            tree.insert(key, None)
        assert [k for k, _ in tree.items()] == keys

    def test_prefix_items(self):
        tree = RadixTree()
        for key in (b"car", b"cart", b"carbon", b"dog", b"ca"):
            tree.insert(key, key)
        found = [k for k, _ in tree.prefix_items(b"car")]
        assert found == [b"car", b"carbon", b"cart"]

    def test_prefix_inside_edge(self):
        tree = RadixTree()
        tree.insert(b"integral", 1)
        tree.insert(b"integer", 2)
        found = [k for k, _ in tree.prefix_items(b"inte")]
        assert found == [b"integer", b"integral"]

    def test_prefix_no_match(self):
        tree = RadixTree()
        tree.insert(b"apple", 1)
        assert list(tree.prefix_items(b"b")) == []
        assert list(tree.prefix_items(b"applepie")) == []

    def test_delete(self):
        tree = RadixTree()
        tree.insert(b"abc", 1)
        tree.insert(b"abd", 2)
        tree.delete(b"abc")
        assert b"abc" not in tree
        assert tree.get(b"abd") == 2

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            RadixTree().delete(b"nope")

    def test_delete_collapses_chains(self):
        tree = RadixTree()
        tree.insert(b"split", 1)
        tree.insert(b"splat", 2)
        tree.delete(b"splat")
        # Structure must remain correct after pass-through merge.
        assert tree.get(b"split") == 1
        assert [k for k, _ in tree.items()] == [b"split"]

    def test_model_comparison(self):
        rng = random.Random(4)
        tree = RadixTree()
        model = {}
        words = [
            bytes(rng.choice(b"abc") for _ in range(rng.randint(1, 6)))
            for _ in range(2000)
        ]
        for word in words:
            if rng.random() < 0.3 and model:
                victim = rng.choice(list(model))
                tree.delete(victim)
                del model[victim]
            else:
                tree.insert(word, word)
                model[word] = word
        assert list(tree.items()) == sorted(model.items())
        assert len(tree) == len(model)
