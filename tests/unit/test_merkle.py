"""Unit tests for the Merkle tree and hash chain."""

import pytest

from repro.crypto.hashing import EMPTY_DIGEST, hash_value
from repro.crypto.merkle import HashChain, MerkleProof, MerkleTree
from repro.errors import ProofError


class TestMerkleTree:
    def test_empty_tree_root(self):
        assert MerkleTree().root == EMPTY_DIGEST

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.prove(0)
        assert proof.verify(b"only", tree.root)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33, 100])
    def test_every_leaf_provable(self, n):
        leaves = [f"leaf-{i}".encode() for i in range(n)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert tree.prove(i).verify(leaf, tree.root)

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13, 64])
    def test_incremental_append_equals_bulk(self, n):
        leaves = [bytes([i]) for i in range(n)]
        incremental = MerkleTree()
        for leaf in leaves:
            incremental.append(leaf)
        bulk = MerkleTree()
        bulk.extend(leaves)
        assert incremental.root == bulk.root

    def test_wrong_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not tree.prove(1).verify(b"forged", tree.root)

    def test_wrong_root_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        assert not tree.prove(0).verify(b"a", other.root)

    def test_proof_from_wrong_index_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not tree.prove(0).verify(b"b", tree.root)

    def test_out_of_range_proof_raises(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(ProofError):
            tree.prove(5)

    def test_appending_changes_root(self):
        tree = MerkleTree([b"a"])
        before = tree.root
        tree.append(b"b")
        assert tree.root != before

    def test_old_proofs_invalid_after_append(self):
        tree = MerkleTree([b"a", b"b"])
        proof = tree.prove(0)
        root_before = tree.root
        tree.append(b"c")
        assert proof.verify(b"a", root_before)
        # The old path may or may not suffice for the new root, but
        # verification against the *old* root must remain possible.
        assert tree.root != root_before

    def test_leaf_accessor(self):
        tree = MerkleTree([b"x", b"y"])
        assert tree.leaf(1) == b"y"

    def test_duplicate_leaf_content_distinct_positions(self):
        tree = MerkleTree([b"same", b"same"])
        assert tree.prove(0).verify(b"same", tree.root)
        assert tree.prove(1).verify(b"same", tree.root)

    def test_proof_size_accounting(self):
        tree = MerkleTree([bytes([i]) for i in range(64)])
        proof = tree.prove(0)
        assert proof.size_bytes > 0
        assert len(proof.path) == 6  # perfect tree of 64 leaves


class TestHashChain:
    def test_empty_head(self):
        assert HashChain().head == EMPTY_DIGEST

    def test_append_advances_head(self):
        chain = HashChain()
        first = chain.append(hash_value("a"))
        second = chain.append(hash_value("b"))
        assert first.chain_digest != second.chain_digest
        assert chain.head == second.chain_digest

    def test_verify_prefix_accepts_true_history(self):
        chain = HashChain()
        digests = [hash_value(i) for i in range(5)]
        for digest in digests:
            chain.append(digest)
        assert chain.verify_prefix(digests)
        assert chain.verify_prefix(digests[:3])

    def test_verify_prefix_rejects_reorder(self):
        chain = HashChain()
        digests = [hash_value(i) for i in range(3)]
        for digest in digests:
            chain.append(digest)
        assert not chain.verify_prefix([digests[1], digests[0], digests[2]])

    def test_verify_prefix_rejects_tamper(self):
        chain = HashChain()
        digests = [hash_value(i) for i in range(3)]
        for digest in digests:
            chain.append(digest)
        forged = list(digests)
        forged[1] = hash_value("evil")
        assert not chain.verify_prefix(forged)

    def test_verify_prefix_rejects_overlong(self):
        chain = HashChain()
        digest = hash_value("x")
        chain.append(digest)
        assert not chain.verify_prefix([digest, digest])

    def test_entry_lookup(self):
        chain = HashChain()
        chain.append(hash_value("a"))
        entry = chain.entry(0)
        assert entry.index == 0
        assert entry.payload_digest == hash_value("a")
