"""Fault injection for the durability layer.

:class:`CrashyIO` plugs into :class:`~repro.durability.wal.WalIO` and
models the two ways a crash loses data:

- **dropped writes** — every byte past a cumulative budget ``K``
  silently vanishes (the process "crashed" at that point; callers keep
  believing their writes succeeded, exactly like a lost page cache);
- **suppressed fsync** — ``fsync`` becomes a no-op, and
  :meth:`simulate_crash` truncates each file back to its last *really*
  fsynced watermark, modelling an OS crash that discards everything
  the page cache never flushed.

Both compose: a group-committed WAL under ``CrashyIO(skip_fsync=True)``
loses exactly the unsynced window on crash, which is what the recovery
suite asserts.  The module also offers post-hoc corruption helpers
(truncate at an arbitrary byte, flip a byte) for tamper-vs-torn-tail
tests.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Union

from repro.durability.wal import WalIO, list_segments


class _FaultyFile:
    """File wrapper that drops writes once the shared budget runs out."""

    def __init__(self, handle: BinaryIO, io: "CrashyIO", path: Path):
        self._handle = handle
        self._io = io
        self._path = path
        self.written = handle.tell()
        self.synced = self.written

    def write(self, data: bytes) -> int:
        durable = self._io._consume(len(data))
        if durable:
            self._handle.write(data[:durable])
        # Report full success: the writer must not notice the "crash".
        self.written += len(data)
        return len(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def tell(self) -> int:
        return self.written

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed


class CrashyIO(WalIO):
    """A :class:`WalIO` that injects crash faults (see module docs)."""

    def __init__(
        self,
        drop_after: Optional[int] = None,
        skip_fsync: bool = False,
    ):
        #: Remaining write budget in bytes (None = unlimited).
        self.remaining = drop_after
        self.skip_fsync = skip_fsync
        self.dropped_bytes = 0
        self.suppressed_fsyncs = 0
        self._files: Dict[Path, _FaultyFile] = {}

    def _consume(self, nbytes: int) -> int:
        """How many of ``nbytes`` may reach the file; rest is dropped."""
        if self.remaining is None:
            return nbytes
        durable = min(nbytes, max(self.remaining, 0))
        self.remaining -= nbytes
        self.dropped_bytes += nbytes - durable
        return durable

    def open_append(self, path: Union[str, Path]) -> BinaryIO:
        path = Path(path)
        handle = open(path, "ab")
        faulty = _FaultyFile(handle, self, path)
        self._files[path] = faulty
        return faulty  # type: ignore[return-value]

    def fsync(self, handle) -> None:
        if self.skip_fsync:
            self.suppressed_fsyncs += 1
            return
        handle.flush()
        os.fsync(handle.fileno())
        if isinstance(handle, _FaultyFile):
            handle.synced = handle._handle.tell()

    def simulate_crash(self) -> List[Path]:
        """Discard never-fsynced bytes, as an OS crash would.

        Closes every file the shim opened; with ``skip_fsync`` each is
        truncated to its last genuinely-fsynced watermark.  Returns
        the affected paths (reopen them with a real :class:`WalIO` to
        exercise recovery).
        """
        affected: List[Path] = []
        for path, faulty in self._files.items():
            if not faulty.closed:
                faulty._handle.flush()
                faulty.close()
            if self.skip_fsync and path.exists():
                with open(path, "r+b") as handle:
                    handle.truncate(faulty.synced)
            affected.append(path)
        self._files.clear()
        return affected


# -- post-hoc corruption helpers (tamper-vs-torn tests) --------------------


def wal_stream_length(root: Union[str, Path]) -> int:
    """Total bytes across all WAL segments, in segment order."""
    return sum(path.stat().st_size for _idx, path in list_segments(root))


def truncate_wal_stream(root: Union[str, Path], offset: int) -> None:
    """Cut the logical WAL byte stream at ``offset``.

    The segment containing the offset is truncated; later segments are
    deleted — byte-for-byte what a crash at that point leaves behind.
    """
    consumed = 0
    for _idx, path in list_segments(root):
        size = path.stat().st_size
        if consumed + size <= offset:
            consumed += size
            continue
        keep = max(offset - consumed, 0)
        if keep == 0:
            path.unlink()
        else:
            with open(path, "r+b") as handle:
                handle.truncate(keep)
        consumed += size


def flip_byte(path: Union[str, Path], offset: int) -> None:
    """Flip one bit of one byte in ``path`` (tamper injection)."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0x01
    path.write_bytes(bytes(blob))
