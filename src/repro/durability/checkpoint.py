"""Checkpoints: periodic snapshots that bound WAL replay.

A checkpoint is the existing integrity-checked snapshot format
(:mod:`repro.core.persistence` — magic, digest header, chain-audited
on load) written as ``checkpoint-<lsn>.spitz``, where ``<lsn>`` is the
last WAL record folded into the snapshotted state.  Recovery loads the
highest-LSN checkpoint that passes its integrity check (falling back
to retained older ones) and replays only records with a larger LSN;
sealed WAL segments entirely at or below the *oldest retained*
checkpoint's LSN are deleted, so every retained checkpoint can still
replay to the log's end.

Policy: checkpoints are explicit (CLI ``checkpoint`` subcommand,
:meth:`DurableDatabase.checkpoint`) or interval-driven via
``checkpoint_every`` on :class:`~repro.durability.recovery.DurableDatabase`
— every N commits.  Because the snapshot write is atomic
(temp file + ``os.replace``) a crash mid-checkpoint leaves the
previous checkpoint intact and the WAL un-truncated, which recovery
handles as the ordinary case.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.persistence import save_database

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".spitz"
_CHECKPOINT_RE = re.compile(
    re.escape(CHECKPOINT_PREFIX) + r"(\d{12})" + re.escape(CHECKPOINT_SUFFIX)
)


def checkpoint_path(root: Union[str, Path], lsn: int) -> Path:
    return Path(root) / f"{CHECKPOINT_PREFIX}{lsn:012d}{CHECKPOINT_SUFFIX}"


def list_checkpoints(root: Union[str, Path]) -> List[Tuple[int, Path]]:
    """(lsn, path) pairs for every checkpoint, oldest first."""
    out: List[Tuple[int, Path]] = []
    for entry in sorted(Path(root).glob(
        f"{CHECKPOINT_PREFIX}*{CHECKPOINT_SUFFIX}"
    )):
        match = _CHECKPOINT_RE.fullmatch(entry.name)
        if match:
            out.append((int(match.group(1)), entry))
    return out


def latest_checkpoint(
    root: Union[str, Path]
) -> Optional[Tuple[int, Path]]:
    checkpoints = list_checkpoints(root)
    return checkpoints[-1] if checkpoints else None


def write_checkpoint(db, wal, keep: int = 2) -> Tuple[int, Path]:
    """Snapshot ``db`` and truncate the WAL behind the retained set.

    ``wal`` is the live :class:`~repro.durability.wal.WriteAheadLog`
    for the same directory.  The WAL is synced first so the snapshot
    never runs ahead of the durable log.  The new checkpoint plus up
    to ``keep`` older ones are retained — recovery falls back to an
    older checkpoint when a newer one fails its integrity check — so
    the WAL is truncated only through the *oldest* retained
    checkpoint's LSN: every surviving checkpoint keeps the log suffix
    it needs for replay.

    Returns ``(lsn, path)`` of the new checkpoint.
    """
    wal.sync()
    lsn = wal.last_lsn
    path = checkpoint_path(wal.root, lsn)
    save_database(db, path)
    checkpoints = list_checkpoints(wal.root)
    for _old_lsn, old_path in checkpoints[:-(max(keep, 0) + 1)]:
        old_path.unlink()
    retained = list_checkpoints(wal.root)
    wal.truncate_through(retained[0][0])
    return lsn, path
