"""Open-time crash recovery: checkpoint + WAL replay + chain audit.

Recovery is the inverse of the logging path.  The WAL records each
committed operation compactly (kind ``commit``: the write set, the
statements, the commit timestamp; kind ``create_table``: the schema),
so replay re-runs the exact commit pipeline the original operations
took — ledger blocks, cell-store versions and MVCC installs land in
the same order with the same timestamps, and the recovered chain
digest equals the pre-crash one for every durable prefix.

A recovered database is *verified*, not just restored: after replay
the full ledger chain audit runs, and a failure raises
:class:`~repro.errors.TamperDetectedError` — recovery never hands back
silently corrupted state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.audit import audit_ledger
from repro.core.database import SpitzDatabase
from repro.core.persistence import load_database
from repro.core.schema import TableSchema
from repro.errors import StorageError, TamperDetectedError
from repro.indexes.siri import DELETE
from repro.durability.checkpoint import list_checkpoints, write_checkpoint
from repro.durability.wal import WalIO, WalRecord, WriteAheadLog, scan_wal

#: WAL record kinds understood by replay.
KIND_COMMIT = "commit"
KIND_CREATE_TABLE = "create_table"


@dataclass
class RecoveryReport:
    """What :func:`recover` did, for operators and tests."""

    db: SpitzDatabase
    checkpoint_lsn: int
    checkpoint_path: Optional[Path]
    replayed: int
    torn_tail_dropped: bool
    last_lsn: int
    #: Newer checkpoints that failed their integrity check and were
    #: skipped in favor of an older one (newest first).
    skipped_checkpoints: List[Path] = field(default_factory=list)

    def describe(self) -> str:
        base = (
            f"checkpoint lsn {self.checkpoint_lsn}"
            if self.checkpoint_path is not None
            else "no checkpoint (empty base)"
        )
        torn = "; torn tail dropped" if self.torn_tail_dropped else ""
        skipped = (
            f"; fell back past {len(self.skipped_checkpoints)} "
            "corrupt checkpoint(s)"
            if self.skipped_checkpoints
            else ""
        )
        return (
            f"{base}{skipped}; replayed {self.replayed} record(s) "
            f"through lsn {self.last_lsn}{torn}; chain audit clean"
        )


def replay_record(db: SpitzDatabase, record: WalRecord) -> None:
    """Apply one WAL record through the normal commit pipeline."""
    if record.kind == KIND_COMMIT:
        writes_list, statements, timestamp = record.data
        writes = {
            key: (DELETE if value is None else value)
            for key, value in writes_list
        }
        db._commit(
            writes, statements=tuple(statements), timestamp=timestamp
        )
    elif record.kind == KIND_CREATE_TABLE:
        name, columns, primary_key = record.data
        db.create_table(TableSchema.make(name, list(columns), primary_key))
    else:
        raise TamperDetectedError(
            f"WAL record {record.lsn} has unknown kind {record.kind!r}"
        )


def recover(
    root: Union[str, Path], **db_kwargs
) -> RecoveryReport:
    """Load the latest valid checkpoint, replay the WAL, audit.

    Tolerates a torn/partial tail record (dropped — those writes were
    never acknowledged durable).  A checkpoint that fails its
    integrity check is skipped in favor of the next older retained one
    (the WAL keeps every record those fallbacks need — the skip is
    recorded on the report, not silent); when *no* checkpoint loads,
    or the WAL does not line up with the checkpoint it must continue
    from (deleted leading segments, a wiped log), recovery raises
    :class:`TamperDetectedError`.  ``db_kwargs`` configure the fresh
    :class:`SpitzDatabase` when no checkpoint exists yet; a checkpoint
    carries its own configuration.
    """
    root = Path(root)
    if not root.is_dir():
        raise StorageError(f"no durable database directory at {root}")
    db: Optional[SpitzDatabase] = None
    checkpoint_lsn, checkpoint_file = 0, None
    skipped: List[Path] = []
    failures: List[str] = []
    for candidate_lsn, candidate in reversed(list_checkpoints(root)):
        try:
            db = load_database(candidate)
        except (StorageError, TamperDetectedError) as error:
            skipped.append(candidate)
            failures.append(f"{candidate.name}: {error}")
            continue
        checkpoint_lsn, checkpoint_file = candidate_lsn, candidate
        break
    if db is None:
        if skipped:
            raise TamperDetectedError(
                "no checkpoint passes its integrity check: "
                + "; ".join(failures)
            )
        db = SpitzDatabase(**db_kwargs)
    # Anchor the WAL to the checkpoint: it must begin at or below
    # checkpoint_lsn + 1 and reach checkpoint_lsn, else committed
    # history has been deleted out from under us.
    scan = scan_wal(root, expected_first_lsn=checkpoint_lsn + 1)
    replayed = 0
    max_timestamp = 0
    for record in scan.records:
        if record.lsn <= checkpoint_lsn:
            continue
        replay_record(db, record)
        if record.kind == KIND_COMMIT:
            max_timestamp = max(max_timestamp, record.data[2])
        replayed += 1
    advance = getattr(db.oracle, "advance_to", None)
    if max_timestamp and advance is not None:
        advance(max_timestamp)
    findings = audit_ledger(db.ledger)
    if findings or not db.verify_chain():
        detail = "; ".join(str(finding) for finding in findings)
        raise TamperDetectedError(
            "recovered database fails its chain audit"
            + (f": {detail}" if detail else "")
        )
    return RecoveryReport(
        db=db,
        checkpoint_lsn=checkpoint_lsn,
        checkpoint_path=checkpoint_file,
        replayed=replayed,
        torn_tail_dropped=scan.torn_tail,
        last_lsn=max(scan.last_lsn, checkpoint_lsn),
        skipped_checkpoints=skipped,
    )


class DurableDatabase:
    """A :class:`SpitzDatabase` whose commits are write-ahead logged.

    Open with :meth:`open` (which always runs recovery); use exactly
    like a :class:`SpitzDatabase` — every method not defined here
    delegates to the wrapped instance — plus :meth:`checkpoint`,
    :meth:`sync` and :meth:`close`.  Commit durability follows the
    WAL's group-commit policy (``sync_every``).

    Single-writer: one process appends to a given directory at a time
    (the same discipline the snapshot CLI already had).
    """

    def __init__(
        self,
        root: Union[str, Path],
        db: SpitzDatabase,
        wal: WriteAheadLog,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 2,
        recovery: Optional[RecoveryReport] = None,
    ):
        self.root = Path(root)
        self.db = db
        self.wal = wal
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.last_recovery = recovery
        self._commits_since_checkpoint = 0
        self._closed = False
        self.db.add_commit_hook(self._log_commit)

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        sync_every: int = 1,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 2,
        segment_bytes: Optional[int] = None,
        io: Optional[WalIO] = None,
        **db_kwargs,
    ) -> "DurableDatabase":
        """Recover (or create) the database at ``root`` and attach a WAL."""
        Path(root).mkdir(parents=True, exist_ok=True)
        report = recover(root, **db_kwargs)
        # Seed appends past everything already durable (checkpoint or
        # log, whichever is ahead) so LSNs never restart or collide.
        wal_kwargs = {
            "sync_every": sync_every,
            "expected_first_lsn": report.checkpoint_lsn + 1,
            # The WAL reports fsync counts/latency into the database's
            # registry so one snapshot covers both layers.
            "metrics": report.db.metrics,
        }
        if segment_bytes is not None:
            wal_kwargs["segment_bytes"] = segment_bytes
        if io is not None:
            wal_kwargs["io"] = io
        wal = WriteAheadLog(root, **wal_kwargs)
        return cls(
            root,
            report.db,
            wal,
            checkpoint_every=checkpoint_every,
            checkpoint_keep=checkpoint_keep,
            recovery=report,
        )

    # -- logging hook ------------------------------------------------------

    def _log_commit(self, kind: str, payload: Dict[str, object]) -> None:
        if kind == "commit":
            writes: List[Tuple[bytes, Optional[bytes]]] = [
                (key, None if value is DELETE else value)
                for key, value in payload["writes"].items()
            ]
            self.wal.append(
                KIND_COMMIT,
                (writes, tuple(payload["statements"]), payload["timestamp"]),
            )
        elif kind == "create_table":
            self.wal.append(
                KIND_CREATE_TABLE,
                (
                    payload["name"],
                    list(payload["columns"]),
                    payload["primary_key"],
                ),
            )
        else:  # pragma: no cover - future hook kinds
            return
        self._commits_since_checkpoint += 1
        if (
            self.checkpoint_every
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    # -- durability controls ----------------------------------------------

    def checkpoint(self) -> Tuple[int, Path]:
        """Snapshot current state and truncate the covered WAL."""
        result = write_checkpoint(
            self.db, self.wal, keep=self.checkpoint_keep
        )
        self._commits_since_checkpoint = 0
        return result

    def sync(self) -> None:
        """Force the group-commit window closed (fsync pending records)."""
        self.wal.sync()

    def close(self) -> None:
        if self._closed:
            return
        self.db.remove_commit_hook(self._log_commit)
        self.wal.close()
        self._closed = True

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- delegation --------------------------------------------------------

    def __getattr__(self, name: str):
        # Only called for attributes not found on self: delegate the
        # whole SpitzDatabase surface (put/get/sql/transaction/...).
        return getattr(self.db, name)
