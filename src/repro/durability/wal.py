"""Segmented, append-only write-ahead log with CRC-framed records.

Layout on disk (one directory per database)::

    wal-00000000.log
    wal-00000001.log
    ...

Each segment starts with a 12-byte header (``SPITZWAL`` magic plus the
big-endian segment index) followed by framed records::

    +----------------+----------------+------------------+
    | length (4, BE) | crc32 (4, BE)  | payload (length) |
    +----------------+----------------+------------------+

The payload is a pickled ``(lsn, kind, data)`` triple; LSNs are
strictly increasing across segments, so a deleted or reordered segment
is detected as tampering, not silently skipped.

Durability policy: ``sync_every=1`` fsyncs after every record (classic
commit-per-fsync); ``sync_every=N`` is *group commit* — records are
buffered and one fsync covers up to N of them.  Records written since
the last fsync are exactly the ones a crash may lose; recovery treats
a truncated or checksum-failing *tail* record as a torn write and
drops it, while any damage that is provably not a torn tail (bad bytes
with valid data after them, a missing middle segment, an LSN gap)
raises :class:`~repro.errors.TamperDetectedError`.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

from repro.errors import StorageError, TamperDetectedError
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

SEGMENT_MAGIC = b"SPITZWAL"
#: Header: magic + segment index (4, BE) + base LSN (8, BE).  The base
#: LSN is the LSN the segment's first record will carry — it keeps the
#: global LSN counter durable even when checkpointing deletes every
#: record-bearing segment, and cross-checks continuity across files.
SEGMENT_HEADER_SIZE = len(SEGMENT_MAGIC) + 4 + 8
RECORD_HEADER_SIZE = 8
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: Default segment roll-over threshold (bytes).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class WalIO:
    """The write-path syscalls the WAL performs, as an override point.

    :mod:`repro.durability.crashsim` subclasses this to drop writes
    after byte K or to suppress fsync; production code uses the real
    thing.  Reads are always real reads — crash injection models lost
    *writes*, recovery then observes whatever survived.
    """

    def open_append(self, path: Union[str, Path]) -> BinaryIO:
        return open(path, "ab")

    def fsync(self, handle: BinaryIO) -> None:
        handle.flush()
        os.fsync(handle.fileno())


@dataclass(frozen=True)
class WalRecord:
    """One replayable log record."""

    lsn: int
    kind: str
    data: object

    def encode(self) -> bytes:
        payload = pickle.dumps(
            (self.lsn, self.kind, self.data),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return (
            len(payload).to_bytes(4, "big")
            + zlib.crc32(payload).to_bytes(4, "big")
            + payload
        )


@dataclass
class WalScan:
    """Result of reading a WAL directory back."""

    records: List[WalRecord] = field(default_factory=list)
    #: True when a torn/partial tail record was dropped.
    torn_tail: bool = False
    #: Last segment index seen (-1 when the log is empty).
    last_segment: int = -1
    #: Byte offset of the end of the last *valid* record in the last
    #: segment (== header size for a record-less segment).
    last_valid_offset: int = SEGMENT_HEADER_SIZE
    #: LSN the next appended record must carry (1 for an empty log).
    next_lsn: int = 1
    #: LSN span of the valid records in the last segment (both None
    #: when the last segment holds no records).
    last_segment_first_lsn: Optional[int] = None
    last_segment_last_lsn: Optional[int] = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.next_lsn - 1


def segment_path(root: Union[str, Path], index: int) -> Path:
    return Path(root) / f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def list_segments(root: Union[str, Path]) -> List[Tuple[int, Path]]:
    """(index, path) pairs for every segment, in index order."""
    out = []
    for entry in sorted(Path(root).glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")):
        stem = entry.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
        try:
            out.append((int(stem), entry))
        except ValueError:
            continue
    return out


def scan_wal(
    root: Union[str, Path], expected_first_lsn: Optional[int] = None
) -> WalScan:
    """Read every record back, applying the torn-tail/tamper rules.

    A record that fails its checksum or is cut short is *torn* only if
    nothing valid follows it — i.e. it is the physical tail of the last
    segment.  Everything else (bad magic, a missing middle segment, an
    LSN gap, damage followed by valid data) raises
    :class:`TamperDetectedError`: the log was modified at rest, not
    merely interrupted.

    ``expected_first_lsn`` anchors the log to a checkpoint (recovery
    passes ``checkpoint_lsn + 1``): the first segment may *start* at or
    below that LSN — a crash between writing a checkpoint and
    truncating the WAL legitimately leaves pre-checkpoint records — but
    never above it, and the log must *reach* it.  A WAL that is empty
    or starts/ends short of a checkpoint that says records existed has
    lost segments: that is tampering, not a crash artifact.
    """
    scan = _scan_segments(root, expected_first_lsn)
    if expected_first_lsn is not None and scan.next_lsn < expected_first_lsn:
        raise TamperDetectedError(
            f"WAL under {root} ends at LSN {scan.next_lsn - 1} but its "
            f"checkpoint covers LSN {expected_first_lsn - 1}: "
            "post-checkpoint segments are missing or the log was wiped"
        )
    return scan


def _scan_segments(
    root: Union[str, Path], expected_first_lsn: Optional[int]
) -> WalScan:
    scan = WalScan()
    segments = list_segments(root)
    previous_index: Optional[int] = None
    next_lsn: Optional[int] = None
    for position, (index, path) in enumerate(segments):
        is_last = position == len(segments) - 1
        if previous_index is not None and index != previous_index + 1:
            raise TamperDetectedError(
                f"WAL segment gap: {previous_index} -> {index}"
            )
        previous_index = index
        scan.last_segment = index
        scan.last_valid_offset = SEGMENT_HEADER_SIZE
        scan.last_segment_first_lsn = None
        scan.last_segment_last_lsn = None
        blob = path.read_bytes()
        if len(blob) < SEGMENT_HEADER_SIZE:
            if is_last:
                scan.torn_tail = True
                scan.last_valid_offset = len(blob)
                break
            raise TamperDetectedError(f"WAL segment {path} lost its header")
        if blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise TamperDetectedError(f"{path} is not a WAL segment")
        header_index = int.from_bytes(
            blob[len(SEGMENT_MAGIC):len(SEGMENT_MAGIC) + 4], "big"
        )
        if header_index != index:
            raise TamperDetectedError(
                f"{path} claims segment {header_index}, named {index}"
            )
        base_lsn = int.from_bytes(
            blob[len(SEGMENT_MAGIC) + 4:SEGMENT_HEADER_SIZE], "big"
        )
        if next_lsn is None:
            if (
                expected_first_lsn is not None
                and base_lsn > expected_first_lsn
            ):
                raise TamperDetectedError(
                    f"{path} base LSN {base_lsn} starts past the "
                    f"checkpoint boundary {expected_first_lsn}: leading "
                    "WAL segment(s) were deleted"
                )
            next_lsn = base_lsn
        elif base_lsn != next_lsn:
            raise TamperDetectedError(
                f"{path} base LSN {base_lsn} breaks continuity "
                f"(expected {next_lsn})"
            )
        scan.next_lsn = next_lsn
        offset = SEGMENT_HEADER_SIZE
        while offset < len(blob):
            remaining = len(blob) - offset
            if remaining < RECORD_HEADER_SIZE:
                if is_last:
                    scan.torn_tail = True
                    return scan
                raise TamperDetectedError(f"truncated record header in {path}")
            length = int.from_bytes(blob[offset:offset + 4], "big")
            checksum = int.from_bytes(blob[offset + 4:offset + 8], "big")
            payload_start = offset + RECORD_HEADER_SIZE
            if len(blob) - payload_start < length:
                if is_last:
                    scan.torn_tail = True
                    return scan
                raise TamperDetectedError(f"truncated record body in {path}")
            payload = blob[payload_start:payload_start + length]
            record_end = payload_start + length
            if zlib.crc32(payload) != checksum:
                if is_last and record_end == len(blob):
                    scan.torn_tail = True
                    return scan
                raise TamperDetectedError(
                    f"WAL record checksum mismatch in {path} at byte {offset}"
                )
            try:
                lsn, kind, data = pickle.loads(payload)
            except Exception as error:
                raise TamperDetectedError(
                    f"undecodable WAL record in {path} at byte {offset}: "
                    f"{error}"
                ) from error
            if next_lsn is not None and lsn != next_lsn:
                raise TamperDetectedError(
                    f"WAL LSN gap in {path}: expected {next_lsn}, found {lsn}"
                )
            next_lsn = lsn + 1
            scan.next_lsn = next_lsn
            scan.records.append(WalRecord(lsn, kind, data))
            if scan.last_segment_first_lsn is None:
                scan.last_segment_first_lsn = lsn
            scan.last_segment_last_lsn = lsn
            offset = record_end
            scan.last_valid_offset = offset
    return scan


class WriteAheadLog:
    """Appender over a WAL directory (single writer).

    Opening positions the log after the last valid record — torn tail
    bytes left by a crash are trimmed so fresh appends never follow
    garbage.  ``sync_every`` sets the group-commit window; ``sync()``
    forces the window closed (used by checkpoints and clean shutdown).
    """

    def __init__(
        self,
        root: Union[str, Path],
        sync_every: int = 1,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        io: Optional[WalIO] = None,
        expected_first_lsn: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if sync_every < 1:
            raise ValueError("sync_every must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.segment_bytes = segment_bytes
        self.io = io if io is not None else WalIO()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_appends = self.metrics.counter("wal.appends")
        self._c_fsyncs = self.metrics.counter("wal.fsyncs")
        self._h_fsync = self.metrics.histogram("wal.fsync_seconds")
        self.synced_records = 0
        self.fsync_count = 0
        self._unsynced = 0
        self._handle: Optional[BinaryIO] = None
        #: index -> (first_lsn, last_lsn) for sealed segments.
        self._sealed: Dict[int, Tuple[int, int]] = {}
        scan = scan_wal(self.root, expected_first_lsn=expected_first_lsn)
        # Never hand out an LSN a checkpoint already covers — a fresh
        # log under an old checkpoint must continue, not restart at 1.
        self._next_lsn = max(scan.next_lsn, expected_first_lsn or 1)
        self._segment_index = max(scan.last_segment, 0)
        if scan.last_segment >= 0:
            path = segment_path(self.root, scan.last_segment)
            trim_to = scan.last_valid_offset
            if trim_to < SEGMENT_HEADER_SIZE:
                trim_to = 0  # even the header was torn; rewrite it
            if scan.torn_tail or path.stat().st_size > trim_to:
                # Trim crash debris so appends restart at a record
                # boundary (a plain filesystem repair, not a logged op).
                with open(path, "r+b") as handle:
                    handle.truncate(trim_to)
            self._open_segment(self._segment_index, create=trim_to == 0)
        else:
            self._open_segment(0, create=True)
        # The active (last) segment's LSN span, for truncation
        # bookkeeping; sealed segments' spans are recomputed on demand.
        self._segment_first_lsn = scan.last_segment_first_lsn
        self._segment_last_lsn = scan.last_segment_last_lsn

    # -- appending ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._next_lsn - 1

    @property
    def pending_records(self) -> int:
        """Records appended but not yet covered by an fsync."""
        return self._unsynced

    def append(self, kind: str, data: object) -> WalRecord:
        """Frame and write one record; fsync per the group-commit policy.

        Returns the record (with its assigned LSN).  With
        ``sync_every == 1`` the record is durable on return; otherwise
        it becomes durable at the next window flush or explicit
        :meth:`sync`.
        """
        if self._handle is None:
            raise StorageError("write-ahead log is closed")
        record = WalRecord(self._next_lsn, kind, data)
        frame = record.encode()
        if (
            self._bytes_written + len(frame) > self.segment_bytes
            and self._segment_first_lsn is not None
        ):
            self.rotate()
        self._handle.write(frame)
        self._bytes_written += len(frame)
        self._next_lsn += 1
        if self._segment_first_lsn is None:
            self._segment_first_lsn = record.lsn
        self._segment_last_lsn = record.lsn
        self._unsynced += 1
        self._c_appends.inc()
        if self._unsynced >= self.sync_every:
            self.sync()
        return record

    def sync(self) -> None:
        """Close the group-commit window: one fsync for all pending."""
        if self._handle is None:
            return
        if self._unsynced == 0:
            return
        start = time.perf_counter()
        with self.metrics.tracer.stage("wal.fsync"):
            self.io.fsync(self._handle)
        self._h_fsync.observe(time.perf_counter() - start)
        self._c_fsyncs.inc()
        self.fsync_count += 1
        self.synced_records += self._unsynced
        self._unsynced = 0

    def rotate(self) -> None:
        """Seal the active segment and start the next one."""
        self.sync()
        if self._handle is not None:
            self._handle.close()
        if self._segment_first_lsn is not None:
            self._sealed[self._segment_index] = (
                self._segment_first_lsn,
                self._segment_last_lsn or self._segment_first_lsn,
            )
        self._segment_index += 1
        self._open_segment(self._segment_index, create=True)
        self._segment_first_lsn = None
        self._segment_last_lsn = None

    def truncate_through(self, lsn: int) -> List[Path]:
        """Delete sealed segments fully covered by a checkpoint at ``lsn``.

        The active segment is rotated first, so every record ≤ ``lsn``
        lives in a sealed segment; segments whose last LSN exceeds
        ``lsn`` are kept.  Returns the deleted paths.
        """
        if self._segment_last_lsn is not None:
            self.rotate()
        removed: List[Path] = []
        for index, path in list_segments(self.root):
            if index == self._segment_index:
                continue
            span = self._sealed.get(index)
            if span is None:
                # Sealed before this process opened the log; recover
                # its span from the bytes.
                segment_scan = scan_wal_segment(path, index)
                if not segment_scan:
                    span = (0, 0)
                else:
                    span = (segment_scan[0].lsn, segment_scan[-1].lsn)
                self._sealed[index] = span
            if span[1] <= lsn:
                path.unlink()
                self._sealed.pop(index, None)
                removed.append(path)
        return removed

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    # -- internals ---------------------------------------------------------

    def _open_segment(self, index: int, create: bool) -> None:
        path = segment_path(self.root, index)
        size = path.stat().st_size if path.exists() else 0
        self._handle = self.io.open_append(path)
        if create and size < SEGMENT_HEADER_SIZE:
            self._handle.write(
                SEGMENT_MAGIC
                + index.to_bytes(4, "big")
                + self._next_lsn.to_bytes(8, "big")
            )
            self.io.fsync(self._handle)
            size = SEGMENT_HEADER_SIZE
        self._bytes_written = size


def scan_wal_segment(path: Path, index: int) -> List[WalRecord]:
    """Records of one sealed segment (strict: no torn tail allowed)."""
    blob = path.read_bytes()
    if (
        len(blob) < SEGMENT_HEADER_SIZE
        or blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC
    ):
        raise TamperDetectedError(f"{path} is not a WAL segment")
    records: List[WalRecord] = []
    offset = SEGMENT_HEADER_SIZE
    while offset < len(blob):
        length = int.from_bytes(blob[offset:offset + 4], "big")
        checksum = int.from_bytes(blob[offset + 4:offset + 8], "big")
        payload = blob[offset + 8:offset + 8 + length]
        if len(payload) < length or zlib.crc32(payload) != checksum:
            raise TamperDetectedError(f"sealed WAL segment {path} damaged")
        lsn, kind, data = pickle.loads(payload)
        records.append(WalRecord(lsn, kind, data))
        offset += RECORD_HEADER_SIZE + length
    return records
