"""Durability subsystem: write-ahead log, checkpoints, crash recovery.

The paper's Spitz prototype is in-memory; the reproduction's only
persistence used to be whole-database snapshots (rewritten per
mutation).  This package adds the log-plus-checkpoint design ForkBase
implies for a *durable* tamper-evident store:

- :mod:`repro.durability.wal` — segmented, append-only write-ahead log
  with CRC-framed records and optional group commit;
- :mod:`repro.durability.checkpoint` — periodic snapshots (the existing
  integrity-checked format) that let sealed WAL segments be truncated;
- :mod:`repro.durability.recovery` — open-time recovery: latest valid
  checkpoint + WAL replay (torn tails tolerated) + full chain audit,
  so a recovered database is *verified*, not just restored;
- :mod:`repro.durability.crashsim` — fault-injection shims used by the
  crash-recovery test suite.
"""

from repro.durability.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    write_checkpoint,
)
from repro.durability.recovery import (
    DurableDatabase,
    RecoveryReport,
    recover,
)
from repro.durability.wal import WalIO, WalRecord, WriteAheadLog

__all__ = [
    "DurableDatabase",
    "RecoveryReport",
    "WalIO",
    "WalRecord",
    "WriteAheadLog",
    "latest_checkpoint",
    "list_checkpoints",
    "recover",
    "write_checkpoint",
]
