"""Keyspace partitioning: universal-key hash routing.

A record's identity across versions is its universal key's stable
prefix — ``(column, primary_key)`` (timestamps and value hashes vary
per version).  Routing hashes exactly that identity, so every version
of a record, and therefore its whole history, lives on one shard and
single-key operations never cross shards.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.crypto.hashing import hash_value

_ROUTE_DOMAIN = "spitz-shard-route"


def shard_for_key(
    key: bytes, num_shards: int, column: str = "default"
) -> int:
    """Shard index for a record identity (stable, uniform).

    The hash is over the canonical encoding of the universal key's
    identity prefix under a routing domain tag, so the placement is
    independent of Python's randomized ``hash()`` and stable across
    processes and restarts.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    digest = hash_value((_ROUTE_DOMAIN, column, bytes(key)))
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardRouter:
    """Routes keys and key batches onto ``num_shards`` partitions."""

    def __init__(self, num_shards: int, column: str = "default"):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.column = column

    def shard_of(self, key: bytes) -> int:
        return shard_for_key(key, self.num_shards, self.column)

    def split_keys(
        self, keys: Iterable[bytes]
    ) -> Dict[int, list]:
        """Group ``keys`` by shard, preserving per-shard order.

        Values are ``(position, key)`` pairs so callers can reassemble
        results in the original request order.
        """
        groups: Dict[int, list] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_of(key), []).append(
                (position, key)
            )
        return groups

    def split_items(
        self, items: Mapping[bytes, Any]
    ) -> Dict[int, Dict[bytes, Any]]:
        """Group a write batch by shard."""
        groups: Dict[int, Dict[bytes, Any]] = {}
        for key, value in items.items():
            groups.setdefault(self.shard_of(key), {})[key] = value
        return groups

    def describe(self, keys: Iterable[bytes]) -> Tuple[int, ...]:
        """Sorted distinct shard ids a key set touches (diagnostics)."""
        return tuple(sorted({self.shard_of(key) for key in keys}))
