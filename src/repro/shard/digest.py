"""The digest-of-digests: one pinned root over N shard ledgers.

Each shard seals its own hash-chained ledger and publishes a
:class:`~repro.core.ledger.LedgerDigest`.  The facade commits to the
whole fleet with a Merkle root over canonical per-shard leaves — a
client pins that single root and every proof carries a membership
branch from its shard's digest up to it, so trust still reduces to one
32-byte value exactly as in the single-ledger system (Section 5.3).

Monotonicity: :attr:`ShardedDigest.height` is the *sum* of shard
heights.  Shard ledgers are append-only, so the height vector is
componentwise non-decreasing — two honest roots with equal total
height commit to identical vectors, which is what lets
:class:`~repro.core.verifier.ClientVerifier.observe` reuse its
equal-height-fork rule unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.ledger import LedgerDigest
from repro.crypto.hashing import Digest
from repro.crypto.merkle import MerkleProof, MerkleTree

#: Domain tag for shard leaves: a leaf can never collide with interior
#: nodes (Merkle domain separation) nor with other leaf vocabularies.
_LEAF_TAG = b"spitz-shard-leaf\x00"


def shard_leaf(shard_id: int, digest: LedgerDigest) -> bytes:
    """Canonical leaf encoding binding a shard id to its digest."""
    return (
        _LEAF_TAG
        + shard_id.to_bytes(4, "big")
        + digest.height.to_bytes(8, "big")
        + digest.chain_digest
        + digest.tree_root
    )


def build_shard_tree(digests: Sequence[LedgerDigest]) -> MerkleTree:
    """Merkle tree with leaf ``i`` committing to shard ``i``'s digest."""
    return MerkleTree(
        [shard_leaf(i, digest) for i, digest in enumerate(digests)]
    )


@dataclass(frozen=True)
class ShardedDigest:
    """What a client pins against a sharded deployment.

    Attribute names mirror :class:`~repro.core.ledger.LedgerDigest`
    (``height``/``chain_digest``/``tree_root``) so the client verifier's
    fork-detection and anchoring logic applies unchanged; for a sharded
    deployment both digest views *are* the Merkle root.
    """

    num_shards: int
    #: Sum of per-shard ledger heights — strictly monotone under writes.
    height: int
    root: Digest

    @property
    def chain_digest(self) -> Digest:
        return self.root

    @property
    def tree_root(self) -> Digest:
        return self.root


def digest_of_digests(digests: Sequence[LedgerDigest]) -> ShardedDigest:
    """Fold per-shard digests into the single top-level digest."""
    tree = build_shard_tree(digests)
    return ShardedDigest(
        num_shards=len(digests),
        height=sum(digest.height for digest in digests),
        root=tree.root,
    )


@dataclass(frozen=True)
class ShardMembership:
    """The shard-membership branch carried by every sharded proof.

    Binds one shard's :class:`~repro.core.ledger.LedgerDigest` under
    the top-level root: the Merkle path proves leaf ``shard_id``
    commits to exactly this digest, and the inner ledger proof then
    verifies against ``shard_digest.chain_digest`` as usual.
    """

    shard_id: int
    shard_digest: LedgerDigest
    proof: MerkleProof

    def verify(self, trusted_root: Digest) -> bool:
        if self.proof.leaf_index != self.shard_id:
            return False
        return self.proof.verify(
            shard_leaf(self.shard_id, self.shard_digest), trusted_root
        )

    @property
    def size_bytes(self) -> int:
        # shard id + height + two digests + the Merkle path.
        return 4 + 8 + 64 + self.proof.size_bytes


def memberships_for(
    digests: Sequence[LedgerDigest], shard_ids: Sequence[int]
) -> List[ShardMembership]:
    """Membership branches for ``shard_ids`` under one shared tree."""
    tree = build_shard_tree(digests)
    return [
        ShardMembership(
            shard_id=shard_id,
            shard_digest=digests[shard_id],
            proof=tree.prove(shard_id),
        )
        for shard_id in shard_ids
    ]
