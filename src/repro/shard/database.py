"""The sharded database facade.

Partitions the KV keyspace across N fully independent shards — each an
entire :class:`~repro.core.database.SpitzDatabase` with its own
POS-tree ledger, chunk store, metrics registry, and (optionally) its
own write-ahead log — routed by universal-key hash
(:mod:`repro.shard.router`).

Write paths:

- **single-shard** (one key, or a batch whose keys all route to one
  shard) — goes straight to that shard's auto-commit path, no
  coordination;
- **multi-shard batches** — one global transaction through
  :class:`~repro.txn.two_pc.TwoPhaseCoordinator`, every shard a 2PC
  participant allocating from its own per-node
  :class:`~repro.txn.hlc.HlcOracle`; prepare/commit messages carry the
  coordinator's HLC stamp and votes/acks carry the shards' stamps
  back, so cross-shard commits are causally ordered without a central
  oracle (Section 5.2).

Read paths return plain values (routed) or sharded proofs whose
membership branches reach the digest-of-digests
(:mod:`repro.shard.digest`).  Proof and per-shard digest are captured
under the answering shard's commit lock, so a proof can never pair a
stale block witness with a newer shard leaf.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.database import SpitzDatabase
from repro.core.ledger import LedgerDigest
from repro.core.schema import KV_PREFIX
from repro.errors import QueryError
from repro.obs.metrics import MetricsRegistry
from repro.shard.digest import (
    ShardMembership,
    ShardedDigest,
    build_shard_tree,
    digest_of_digests,
)
from repro.shard.proofs import (
    ShardedMultiPart,
    ShardedMultiProof,
    ShardedProof,
)
from repro.shard.router import ShardRouter
from repro.txn.hlc import HlcOracle, HybridLogicalClock
from repro.txn.two_pc import Participant, TwoPhaseCoordinator


def _seconds_clock() -> int:
    """Wall clock at one-second resolution.

    HLC stamps pack as ``(wall << 20 | logical) << 10 | node`` and end
    up as MVCC commit timestamps, which universal keys encode in 8
    bytes.  Millisecond walls overflow that field (~2^61 already);
    second resolution fits for decades and the logical counter absorbs
    all intra-second ordering.
    """
    return int(time.time())


def make_shard_oracle(node_id: int) -> HlcOracle:
    """Per-shard HLC oracle (second-resolution wall clock)."""
    return HlcOracle(
        node_id, HybridLogicalClock(physical_clock=_seconds_clock)
    )


class ShardedDatabase:
    """N independent shard ledgers behind one digest-of-digests.

    Duck-compatible with the :class:`SpitzDatabase` surface the request
    handler dispatches against (KV reads/writes, history, scan, digest,
    stats); SQL and verified scans stay single-ledger features.

    ``durable_root`` opens every shard through crash recovery under
    ``<root>/shard-NN`` with its own WAL — commits on different shards
    then fsync independently, which is where multi-shard write
    throughput scaling comes from on real hardware.
    """

    #: Coordinator's HLC node id sits one past the largest shard id.
    MAX_SHARDS = (1 << HlcOracle.NODE_BITS) - 1

    def __init__(
        self,
        num_shards: int = 4,
        mask_bits: int = 5,
        block_batch: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        durable_root: Optional[str] = None,
        sync_every: int = 1,
    ):
        if not 1 <= num_shards <= self.MAX_SHARDS:
            raise ValueError(
                f"num_shards must be in 1..{self.MAX_SHARDS}"
            )
        self.num_shards = num_shards
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Held by the request handler around verified dispatches.  The
        #: facade has no global commit path (that is the point), so
        #: this lock only serializes handler-level proof capture.
        self.commit_lock = threading.RLock()
        self.router = ShardRouter(num_shards)
        self.shards: List[SpitzDatabase] = []
        self._durables: list = []
        self._shard_registries: List[MetricsRegistry] = []
        for shard_id in range(num_shards):
            registry = MetricsRegistry()
            # Stage spans must land in the facade registry's tracer to
            # join live request traces (the per-shard registry has no
            # active trace of its own); counters stay per-shard.
            registry.tracer = self.metrics.tracer
            self._shard_registries.append(registry)
            oracle = make_shard_oracle(shard_id)
            if durable_root is not None:
                from repro.durability import DurableDatabase

                durable = DurableDatabase.open(
                    Path(durable_root) / f"shard-{shard_id:02d}",
                    sync_every=sync_every,
                    mask_bits=mask_bits,
                    block_batch=block_batch,
                    metrics=registry,
                    oracle=oracle,
                )
                self._durables.append(durable)
                self.shards.append(durable.db)
            else:
                self.shards.append(
                    SpitzDatabase(
                        mask_bits=mask_bits,
                        block_batch=block_batch,
                        metrics=registry,
                        oracle=oracle,
                    )
                )
        self._participant_names = [
            f"shard-{shard_id}" for shard_id in range(num_shards)
        ]
        participants = [
            Participant(name, shard.txn_manager)
            for name, shard in zip(self._participant_names, self.shards)
        ]
        self.participants = participants
        self.coordinator = TwoPhaseCoordinator(
            participants, oracle=make_shard_oracle(num_shards)
        )
        self._c_direct = self.metrics.counter("shard.writes_direct")
        self._c_cross = self.metrics.counter("shard.writes_2pc")
        self._c_reads = self.metrics.counter("shard.reads")
        self._c_proofs = self.metrics.counter("shard.proofs")
        self.metrics.gauge("shard.count").set(num_shards)

    # ------------------------------------------------------------------
    # write paths
    # ------------------------------------------------------------------

    def shard_of(self, key: bytes) -> int:
        return self.router.shard_of(key)

    def put(self, key: bytes, value: bytes):
        """Single-key write: routed direct, no coordination."""
        self._c_direct.inc()
        return self.shards[self.shard_of(key)].put(key, value)

    def delete(self, key: bytes):
        self._c_direct.inc()
        return self.shards[self.shard_of(key)].delete(key)

    def put_batch(self, items: Mapping[bytes, bytes]):
        """Batch write: direct when one shard, 2PC when several.

        The multi-shard path stages one transaction branch per
        involved shard (prepare), then commits them all under one
        logged decision; each branch's commit seals that shard's
        ledger block through the ordinary commit-listener path.
        """
        groups = self.router.split_items(items)
        if not groups:
            return None
        if len(groups) == 1:
            shard_id, sub = groups.popitem()
            self._c_direct.inc()
            return self.shards[shard_id].put_batch(sub)
        writes = {
            self._participant_names[shard_id]: {
                KV_PREFIX + key: value for key, value in sub.items()
            }
            for shard_id, sub in groups.items()
        }
        self._c_cross.inc()
        self.coordinator.execute(writes)
        return None

    def put_with_proof(self, key: bytes, value: bytes):
        """Write plus a sharded inclusion proof of the new value."""
        block = self.put(key, value)
        _value, proof = self.get_verified(key)
        return block, proof

    # ------------------------------------------------------------------
    # read paths
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._c_reads.inc()
        return self.shards[self.shard_of(key)].get(key)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        self._c_reads.inc(len(list(keys)) or 1)
        return [self.shards[self.shard_of(key)].get(key) for key in keys]

    def history(self, key: bytes) -> List[Tuple[int, bytes]]:
        return self.shards[self.shard_of(key)].history(key)

    def scan(self, low: bytes, high: bytes) -> List[Tuple[bytes, bytes]]:
        """Unverified scan: fan out to every shard, merge by key."""
        results: List[Tuple[bytes, bytes]] = []
        for shard in self.shards:
            results.extend(shard.scan(low, high))
        results.sort(key=lambda pair: pair[0])
        return results

    def scan_verified(self, low: bytes, high: bytes):
        raise QueryError(
            "verified scans are not supported on a sharded database: "
            "a range spans shards and has no single covering proof"
        )

    def sql(self, text: str):
        raise QueryError(
            "SQL is not supported on a sharded database; use the KV API"
        )

    def search(self, column: str, predicate):
        raise QueryError(
            "search is not supported on a sharded database: postings "
            "span shard ledgers and have no single committed index"
        )

    def search_verified(self, column: str, predicate):
        raise QueryError(
            "verified search is not supported on a sharded database: "
            "postings span shard ledgers and have no single committed "
            "index root to anchor the proof"
        )

    # ------------------------------------------------------------------
    # verified reads against the digest-of-digests
    # ------------------------------------------------------------------

    def _shard_digests(
        self, pinned: Mapping[int, LedgerDigest]
    ) -> List[LedgerDigest]:
        """Every shard's digest; ``pinned`` entries used verbatim.

        Unpinned shards are read under their own commit lock so each
        leaf is internally consistent; shard heights only grow, so the
        resulting vector is a valid fleet state for membership proofs
        (the pinned shard's proof was captured with its leaf).
        """
        digests: List[LedgerDigest] = []
        for shard_id, shard in enumerate(self.shards):
            if shard_id in pinned:
                digests.append(pinned[shard_id])
            else:
                with shard.txn_manager.commit_lock:
                    digests.append(shard.digest())
        return digests

    def digest(self) -> ShardedDigest:
        """The current digest-of-digests (flushes every shard)."""
        return digest_of_digests(self._shard_digests({}))

    def get_verified(
        self, key: bytes
    ) -> Tuple[Optional[bytes], ShardedProof]:
        """Point read plus proof against the top-level digest."""
        shard_id = self.shard_of(key)
        shard = self.shards[shard_id]
        with shard.txn_manager.commit_lock:
            value, inner = shard.get_verified(key)
            shard_digest = shard.digest()
        digests = self._shard_digests({shard_id: shard_digest})
        tree = build_shard_tree(digests)
        top = ShardedDigest(
            num_shards=self.num_shards,
            height=sum(digest.height for digest in digests),
            root=tree.root,
        )
        membership = ShardMembership(
            shard_id=shard_id,
            shard_digest=shard_digest,
            proof=tree.prove(shard_id),
        )
        self._c_proofs.inc()
        return value, ShardedProof(
            inner=inner, membership=membership, digest=top
        )

    def get_many_verified(
        self, keys: Sequence[bytes]
    ) -> Tuple[List[Optional[bytes]], ShardedMultiProof]:
        """Batch read: one multiproof part per involved shard."""
        keys = list(keys)
        groups = self.router.split_keys(keys)
        values: List[Optional[bytes]] = [None] * len(keys)
        pinned: Dict[int, LedgerDigest] = {}
        multis: Dict[int, object] = {}
        for shard_id in sorted(groups):
            pairs = groups[shard_id]
            shard = self.shards[shard_id]
            sub_keys = [key for _position, key in pairs]
            with shard.txn_manager.commit_lock:
                sub_values, multi = shard.get_many_verified(sub_keys)
                pinned[shard_id] = shard.digest()
            multis[shard_id] = multi
            for (position, _key), value in zip(pairs, sub_values):
                values[position] = value
        digests = self._shard_digests(pinned)
        tree = build_shard_tree(digests)
        top = ShardedDigest(
            num_shards=self.num_shards,
            height=sum(digest.height for digest in digests),
            root=tree.root,
        )
        parts = tuple(
            ShardedMultiPart(
                membership=ShardMembership(
                    shard_id=shard_id,
                    shard_digest=pinned[shard_id],
                    proof=tree.prove(shard_id),
                ),
                multi=multis[shard_id],
            )
            for shard_id in sorted(multis)
        )
        self._c_proofs.inc(len(parts) or 1)
        proof = ShardedMultiProof(
            keys=tuple(KV_PREFIX + key for key in keys),
            parts=parts,
            digest=top,
        )
        return values, proof

    # ------------------------------------------------------------------
    # maintenance / plumbing
    # ------------------------------------------------------------------

    def flush_ledger(self) -> None:
        for shard in self.shards:
            shard.flush_ledger()

    def verify_chain(self) -> bool:
        return all(shard.verify_chain() for shard in self.shards)

    def recover_participants(self) -> int:
        """Resolve in-doubt 2PC branches on every shard."""
        return sum(
            self.coordinator.recover(participant)
            for participant in self.participants
        )

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Facade snapshot with per-shard counters/gauges summed in.

        The facade registry holds control-plane instruments (queue,
        nodes, routing); each shard's registry holds its storage-layer
        instruments.  Counters and gauges are summed across shards
        under their own names so ``db.commits``, ``ledger.height``
        etc. stay meaningful fleet-wide; shard histograms are omitted
        (latency distributions are captured by the facade's tracer).

        The per-shard view also rides along under a ``shards`` key
        (``{"00": {"counters": ..., "gauges": ...}, ...}``) so served
        stats can attribute load per shard instead of only fleet-wide;
        ``/metrics`` renders the same registries with a ``shard="NN"``
        label.
        """
        snapshot = self.metrics.snapshot()
        counters = dict(snapshot["counters"])
        gauges = dict(snapshot["gauges"])
        shards: Dict[str, Dict[str, object]] = {}
        for shard_id, shard in enumerate(self.shards):
            shard_snapshot = shard.metrics_snapshot()
            for name, value in shard_snapshot["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, value in shard_snapshot["gauges"].items():
                gauges[name] = gauges.get(name, 0) + value
            shards[f"{shard_id:02d}"] = {
                "counters": shard_snapshot["counters"],
                "gauges": shard_snapshot["gauges"],
            }
        snapshot["counters"] = counters
        snapshot["gauges"] = gauges
        snapshot["shards"] = shards
        return snapshot

    @property
    def shard_registries(self) -> List[MetricsRegistry]:
        """The per-shard registries, indexed by shard id (exposition
        renders them under ``shard="NN"`` labels)."""
        return list(self._shard_registries)

    def sync(self) -> None:
        """Durable mode: fsync every shard's WAL."""
        for durable in self._durables:
            durable.sync()

    def checkpoint(self) -> None:
        """Durable mode: checkpoint every shard."""
        for durable in self._durables:
            durable.checkpoint()

    def close(self) -> None:
        """Durable mode: release every shard's WAL handle."""
        for durable in self._durables:
            durable.close()
