"""Horizontal sharding: partitioned ledgers behind one digest.

The ROADMAP's sharding item realized: the keyspace is hash-partitioned
across N independent shards (each a full POS-tree ledger + chunk store
+ metrics registry, optionally with its own WAL), single-shard writes
go direct, multi-shard batches run two-phase commit with HLC-stamped
messages (Section 5.2), and clients pin a single digest-of-digests —
a Merkle root over per-shard ledger digests — that every sharded proof
reaches through a shard-membership branch (Section 5.3's trust model,
unchanged in size).
"""

from repro.shard.database import ShardedDatabase, make_shard_oracle
from repro.shard.digest import (
    ShardMembership,
    ShardedDigest,
    build_shard_tree,
    digest_of_digests,
    shard_leaf,
)
from repro.shard.proofs import (
    ShardedMultiPart,
    ShardedMultiProof,
    ShardedProof,
)
from repro.shard.router import ShardRouter, shard_for_key

__all__ = [
    "ShardMembership",
    "ShardRouter",
    "ShardedDatabase",
    "ShardedDigest",
    "ShardedMultiPart",
    "ShardedMultiProof",
    "ShardedProof",
    "build_shard_tree",
    "digest_of_digests",
    "make_shard_oracle",
    "shard_for_key",
    "shard_leaf",
]
