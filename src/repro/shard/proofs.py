"""Sharded proof objects: inner ledger proof + shard-membership branch.

A sharded proof is the single-ledger proof plus one extra layer: a
Merkle branch from the answering shard's digest up to the pinned
digest-of-digests.  Verification composes bottom-up exactly like the
three-layer single-ledger recipe (Section 5.3) with a fourth layer on
top:

1. membership — the shard's ``LedgerDigest`` is leaf ``shard_id`` of
   the trusted root;
2..4. the inner proof — chain digest, block digest, POS-tree path —
   checked against *that shard's* chain digest.

Every sharded proof also embeds the :class:`ShardedDigest` it was
built against: the serving facade captures shard leaves atomically, so
the digest the client is offered and the proof's membership branches
are guaranteed to describe the same fleet state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.proofs import LedgerMultiProof, LedgerProof
from repro.crypto.hashing import Digest
from repro.shard.digest import ShardMembership, ShardedDigest


@dataclass(frozen=True)
class ShardedProof:
    """Point read (or proven absence) against the digest-of-digests."""

    inner: LedgerProof
    membership: ShardMembership
    #: The top-level digest this proof's membership branch reaches —
    #: served alongside the result so client and proof stay in sync.
    digest: ShardedDigest

    @property
    def key(self) -> bytes:
        return self.inner.key

    @property
    def value(self) -> Optional[bytes]:
        return self.inner.value

    @property
    def shard_id(self) -> int:
        return self.membership.shard_id

    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes + self.membership.size_bytes + 32

    @property
    def cacheable_nodes(self) -> tuple:
        """Index nodes eligible for the verifier's node cache."""
        return self.inner.siri.nodes

    @property
    def label(self) -> str:
        return (
            f"sharded-point:{self.key!r}@shard{self.shard_id}"
            f"/block{self.inner.block.height}"
        )

    def verify(
        self,
        trusted_root: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        """Check the full four-layer binding against a trusted root."""
        if not self.membership.verify(trusted_root):
            return False
        return self.inner.verify(
            self.membership.shard_digest.chain_digest,
            node_cache,
            block_cache,
        )


@dataclass(frozen=True)
class ShardedMultiPart:
    """One shard's slice of a batched read: membership + multiproof."""

    membership: ShardMembership
    multi: LedgerMultiProof

    def verify(
        self,
        trusted_root: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        if not self.membership.verify(trusted_root):
            return False
        return self.multi.verify(
            self.membership.shard_digest.chain_digest,
            node_cache,
            block_cache,
        )


@dataclass(frozen=True)
class ShardedMultiProof:
    """Batched point reads spanning shards, one trusted root.

    ``keys`` are the requested logical keys in request order; each
    involved shard contributes one :class:`ShardedMultiPart`.
    Verification additionally checks *coverage*: the parts together
    answer exactly the requested key multiset, so a server cannot
    silently drop a key whose answer it would rather not prove.
    """

    keys: Tuple[bytes, ...]
    parts: Tuple[ShardedMultiPart, ...]
    digest: ShardedDigest

    @property
    def size_bytes(self) -> int:
        return 32 + sum(
            part.multi.size_bytes + part.membership.size_bytes
            for part in self.parts
        )

    @property
    def cacheable_nodes(self) -> tuple:
        nodes: list = []
        for part in self.parts:
            nodes.extend(part.multi.multi.nodes)
        return tuple(nodes)

    @property
    def label(self) -> str:
        return (
            f"sharded-multi:{len(self.keys)}keys"
            f"/{len(self.parts)}shards"
        )

    def entries(self) -> Tuple[Tuple[bytes, Optional[bytes]], ...]:
        """(key, value) pairs re-assembled in request order."""
        by_key = {}
        for part in self.parts:
            for key, value in part.multi.entries:
                by_key[key] = value
        return tuple((key, by_key.get(key)) for key in self.keys)

    def verify(
        self,
        trusted_root: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        covered: list = []
        seen_shards = set()
        for part in self.parts:
            if part.membership.shard_id in seen_shards:
                return False  # duplicate shard part: not a server shape
            seen_shards.add(part.membership.shard_id)
            if not part.verify(trusted_root, node_cache, block_cache):
                return False
            covered.extend(part.multi.keys)
        return sorted(covered) == sorted(self.keys)
