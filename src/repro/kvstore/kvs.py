"""The immutable KVS built on ForkBase.

"For comparison purpose, we also build an immutable key-value store
(KVS) using ForkBase.  It is the same as Spitz in terms of indexing,
except that it does not maintain a ledger or provide verifiability.
Therefore, by comparing the two systems, we can focus on the
maintenance and verification cost of the ledger storage" (Section 6.1).

Accordingly this class reuses Spitz's exact storage components — the
deduplicating chunk store, the virtual cell store, the B+-tree access
path — and omits only the ledger.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.bplus import BPlusTree
from repro.core.cell_store import CellStore
from repro.txn.oracle import TimestampOracle

_COLUMN = "default"


class ImmutableKVS:
    """Spitz's storage stack without the ledger."""

    def __init__(self) -> None:
        self.chunks = ChunkStore()
        self.cells = CellStore(self.chunks)
        self.primary = BPlusTree()
        self.oracle = TimestampOracle()

    def put(self, key: bytes, value: bytes) -> None:
        """Append a new immutable version of ``key``."""
        timestamp = self.oracle.next_timestamp()
        ukey = self.cells.put(_COLUMN, key, timestamp, value)
        self.primary.insert(key, ukey.encode())

    def get(self, key: bytes) -> Optional[bytes]:
        """Latest version of ``key`` (None if absent)."""
        encoded = self.primary.get_optional(key)
        if encoded is None:
            return None
        cell = self.cells.get_by_encoded(encoded)
        return cell.value if cell is not None else None

    def delete(self, key: bytes) -> None:
        """Remove ``key`` from the current state (history remains)."""
        if key in self.primary:
            self.primary.delete(key)

    def scan(self, low: bytes, high: bytes) -> List[Tuple[bytes, bytes]]:
        """Entries with ``low <= key <= high`` from current state."""
        results: List[Tuple[bytes, bytes]] = []
        for key, encoded in self.primary.range(low, high):
            cell = self.cells.get_by_encoded(encoded)
            if cell is not None:
                results.append((key, cell.value))
        return results

    def history(self, key: bytes) -> List[Tuple[int, bytes]]:
        """Every stored version of ``key``: (timestamp, value)."""
        return [
            (cell.ukey.timestamp, cell.value)
            for cell in self.cells.versions(_COLUMN, key)
        ]

    def __len__(self) -> int:
        return len(self.primary)

    def storage_report(self) -> Dict[str, float]:
        stats = self.chunks.stats
        return {
            "logical_bytes": stats.logical_bytes,
            "physical_bytes": stats.physical_bytes,
            "dedup_ratio": stats.dedup_ratio,
        }
