"""Immutable key-value store comparator (paper Section 6.1)."""

from repro.kvstore.kvs import ImmutableKVS

__all__ = ["ImmutableKVS"]
