"""Materialized indexed views.

Section 6.1: "the appended blocks are materialized to indexed views
for fast query processing.  To perform a read query, users can
directly fetch the data with meta information using the indexed
views"; and Section 6.2.1 attributes the baseline's poor writes to
"maintaining multiple indexed views".

Three views are maintained, mirroring QLDB's user view, committed
view and history:

- **current** — key → latest record (serving point reads);
- **history** — (key, sequence) → record (serving version queries);
- **committed** — sequence → record metadata (serving audits).

Each is a separate B+-tree and each write updates all three with its
own serialized copy — the redundancy that costs the baseline its write
throughput.
"""

from __future__ import annotations

import base64
import json
from typing import List, Optional, Tuple

from repro.indexes.bplus import BPlusTree
from repro.baseline.journal import JournalRecord


class MaterializedViews:
    """The baseline's three indexed views."""

    def __init__(self) -> None:
        self.current = BPlusTree()
        self.history = BPlusTree()
        self.committed = BPlusTree()
        self.maintenance_writes = 0

    def apply(self, record: JournalRecord) -> None:
        """Materialize one journal record into every view."""
        # Each view stores its own serialized document copy, as the
        # materializations would on disk.  QLDB materializes Amazon Ion
        # documents; JSON is the closest in-process analogue.
        value_text = (
            base64.b64encode(record.value).decode("ascii")
            if record.value is not None
            else None
        )
        key_text = base64.b64encode(record.key).decode("ascii")
        current_payload = json.dumps(
            {"seq": record.sequence, "value": value_text}
        )
        history_payload = json.dumps(
            {"key": key_text, "seq": record.sequence, "value": value_text}
        )
        committed_payload = json.dumps(
            {"seq": record.sequence, "key": key_text,
             "deleted": record.value is None}
        )
        if record.value is None:
            if record.key in self.current:
                self.current.delete(record.key)
        else:
            self.current.insert(record.key, current_payload)
        self.history.insert(
            record.key + b"\x00" + record.sequence.to_bytes(8, "big"),
            history_payload,
        )
        self.committed.insert(
            record.sequence.to_bytes(8, "big"), committed_payload
        )
        self.maintenance_writes += 3

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes) -> Optional[Tuple[int, bytes]]:
        """(sequence, value) of the latest version of ``key``."""
        payload = self.current.get_optional(key)
        if payload is None:
            return None
        document = json.loads(payload)
        return document["seq"], base64.b64decode(document["value"])

    def committed_meta(self, sequence: int) -> Tuple[int, bytes, bool]:
        """Commit metadata of one record from the committed view."""
        payload = self.committed.get(sequence.to_bytes(8, "big"))
        document = json.loads(payload)
        return (
            document["seq"],
            base64.b64decode(document["key"]),
            document["deleted"],
        )

    def scan(
        self, low: bytes, high: bytes
    ) -> List[Tuple[bytes, int, bytes]]:
        """(key, sequence, value) for current keys in ``[low, high]``."""
        results: List[Tuple[bytes, int, bytes]] = []
        for key, payload in self.current.range(low, high):
            document = json.loads(payload)
            results.append(
                (key, document["seq"], base64.b64decode(document["value"]))
            )
        return results

    def key_history(self, key: bytes) -> List[Tuple[int, Optional[bytes]]]:
        """(sequence, value) for every version of ``key``."""
        low = key + b"\x00" + (0).to_bytes(8, "big")
        high = key + b"\x00" + (2**64 - 1).to_bytes(8, "big")
        results: List[Tuple[int, Optional[bytes]]] = []
        for _composite, payload in self.history.range(low, high):
            document = json.loads(payload)
            value = (
                base64.b64decode(document["value"])
                if document["value"] is not None
                else None
            )
            results.append((document["seq"], value))
        return results
