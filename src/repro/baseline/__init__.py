"""The baseline system: an emulation of a commercial ledger database.

Section 6.1: "we implement a baseline system to emulate a commercial
product [Amazon QLDB] based on the features described online ...  The
newly inserted or modified records are collected into blocks and
appended to a ledger implemented by a Merkle tree ...  the appended
blocks are materialized to indexed views for fast query processing."
"""

from repro.baseline.journal import Journal, JournalRecord
from repro.baseline.ledger_db import BaselineLedgerDB, BaselineProof
from repro.baseline.views import MaterializedViews

__all__ = [
    "BaselineLedgerDB",
    "BaselineProof",
    "Journal",
    "JournalRecord",
    "MaterializedViews",
]
