"""The baseline's journal: insertion-ordered blocks under a Merkle tree.

Records are appended in arrival order, grouped into fixed-size blocks
chained by hashes, with one Merkle tree over *all* records for
integrity proofs — the QLDB journal structure described in
Sections 2.3 and 6.1.

The structural property the evaluation hinges on: the journal is
ordered by *insertion*, not by key.  The Merkle path itself is
O(log n), but finding which leaf holds the latest version of a key
requires searching the journal ("the retrieval on the proofs ... must
be processed by searching the digest in the ledger individually",
Section 6.2.2) — that per-record search is what collapses
``Baseline-verify`` throughput in Figures 6 and 7.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.merkle import HashChain, MerkleProof, MerkleTree
from repro.errors import ProofError


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry: a key's new value (or tombstone)."""

    sequence: int
    key: bytes
    value: Optional[bytes]  # None = delete

    def encode(self) -> bytes:
        return pickle.dumps(
            (self.sequence, self.key, self.value), protocol=4
        )


@dataclass(frozen=True)
class JournalBlock:
    """A sealed group of consecutive records."""

    height: int
    first_sequence: int
    record_count: int
    records_digest: Digest
    chain_digest: Digest


class Journal:
    """Append-only record log + block chain + global Merkle tree."""

    def __init__(self, block_size: int = 16):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self._records: List[JournalRecord] = []
        self._tree = MerkleTree()
        self._chain = HashChain()
        self._blocks: List[JournalBlock] = []
        self._pending_start = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def blocks(self) -> List[JournalBlock]:
        return list(self._blocks)

    def append(self, key: bytes, value: Optional[bytes]) -> JournalRecord:
        """Append one record; seals a block when block_size is reached."""
        record = JournalRecord(
            sequence=len(self._records), key=key, value=value
        )
        self._records.append(record)
        self._tree.append(record.encode())
        if len(self._records) - self._pending_start >= self.block_size:
            self.seal()
        return record

    def seal(self) -> Optional[JournalBlock]:
        """Seal pending records into a block (None if nothing pending)."""
        if self._pending_start >= len(self._records):
            return None
        pending = self._records[self._pending_start:]
        records_digest = hash_bytes(
            b"".join(record.encode() for record in pending)
        )
        entry = self._chain.append(records_digest)
        block = JournalBlock(
            height=len(self._blocks),
            first_sequence=self._pending_start,
            record_count=len(pending),
            records_digest=records_digest,
            chain_digest=entry.chain_digest,
        )
        self._blocks.append(block)
        self._pending_start = len(self._records)
        return block

    # -- digests -----------------------------------------------------------

    @property
    def root(self) -> Digest:
        """Merkle root over all records (the verification digest)."""
        return self._tree.root

    @property
    def chain_head(self) -> Digest:
        return self._chain.head

    def record(self, sequence: int) -> JournalRecord:
        return self._records[sequence]

    # -- the expensive part: locating a key's record -------------------------

    def locate_latest(self, key: bytes) -> Optional[int]:
        """Sequence number of the latest record for ``key``.

        The journal has no key index (Section 6.2.2's "searching the
        digest in the ledger individually"), so this scans backwards
        from the newest record.  Cost grows linearly with the journal
        — the baseline's verified-read bottleneck.
        """
        for sequence in range(len(self._records) - 1, -1, -1):
            if self._records[sequence].key == key:
                return sequence
        return None

    def prove(self, sequence: int) -> Tuple[JournalRecord, MerkleProof]:
        """Merkle inclusion proof for record ``sequence``."""
        if not 0 <= sequence < len(self._records):
            raise ProofError(f"no journal record #{sequence}")
        record = self._records[sequence]
        return record, self._tree.prove(sequence)

    def prove_latest(
        self, key: bytes
    ) -> Optional[Tuple[JournalRecord, MerkleProof]]:
        """Locate (linear search) then prove the latest record of
        ``key`` — the full baseline verified-read cost."""
        sequence = self.locate_latest(key)
        if sequence is None:
            return None
        return self.prove(sequence)

    @staticmethod
    def verify(
        record: JournalRecord, proof: MerkleProof, root: Digest
    ) -> bool:
        """Client-side check of a journal proof against a digest."""
        return proof.verify(record.encode(), root)

    def verify_chain(self) -> bool:
        """Recompute every sealed block digest and chain link."""
        running_ok = True
        payloads: List[Digest] = []
        for block in self._blocks:
            records = self._records[
                block.first_sequence:
                block.first_sequence + block.record_count
            ]
            digest = hash_bytes(
                b"".join(record.encode() for record in records)
            )
            if digest != block.records_digest:
                running_ok = False
            payloads.append(digest)
        return running_ok and self._chain.verify_prefix(payloads)
