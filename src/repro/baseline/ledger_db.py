"""The baseline ledger database facade.

Composition per Section 6.1: writes append to the journal (Merkle
ledger) *and* materialize into the indexed views; unverified reads go
straight to the views; verified reads additionally retrieve the proof
from the journal — which requires the per-key journal search, "the
ledger ... shadowing the nodes of a typical B+-tree" rather than being
unified with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import Digest
from repro.crypto.merkle import MerkleProof
from repro.baseline.journal import Journal, JournalRecord
from repro.baseline.views import MaterializedViews


@dataclass(frozen=True)
class BaselineProof:
    """A baseline proof: the journal record plus its Merkle path."""

    record: JournalRecord
    path: MerkleProof
    root: Digest

    def verify(self, trusted_root: Digest) -> bool:
        if trusted_root != self.root:
            return False
        return Journal.verify(self.record, self.path, trusted_root)


class BaselineLedgerDB:
    """The commercial-service emulation the paper benchmarks against."""

    def __init__(self, block_size: int = 16):
        self.journal = Journal(block_size=block_size)
        self.views = MaterializedViews()

    # -- writes ------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> JournalRecord:
        """Append to the journal and maintain every indexed view.

        QLDB executes writes as OCC transactions and hashes every
        document revision, so the emulation reads the current view
        first (the conflict check's read) and computes the revision
        digest before the journal append.
        """
        self.views.get(key)  # OCC read of the current revision
        from repro.crypto.hashing import hash_bytes

        hash_bytes(key + b"\x00" + value)  # revision digest
        record = self.journal.append(key, value)
        self.views.apply(record)
        return record

    def delete(self, key: bytes) -> JournalRecord:
        record = self.journal.append(key, None)
        self.views.apply(record)
        return record

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Unverified read from the indexed views.

        Section 6.1: "users can directly fetch the data with meta
        information using the indexed views" — the value comes from
        the current view and its commit metadata from the committed
        view (QLDB's user/committed view pair).
        """
        found = self.views.get(key)
        if found is None:
            return None
        sequence, value = found
        self.views.committed_meta(sequence)  # the "meta information"
        return value

    def get_verified(
        self, key: bytes
    ) -> Tuple[Optional[bytes], Optional[BaselineProof]]:
        """Read from the view, then fetch the proof from the journal.

        Two separate structures are consulted (Section 6.2.1: "the
        baseline needs to visit the B+-index first, and uses the
        resultant nodes to get the proof from the ledger") — and the
        journal lookup is the linear search of Section 6.2.2.
        """
        found = self.views.get(key)
        if found is None:
            return None, None
        proved = self.journal.prove_latest(key)
        assert proved is not None  # the view said it exists
        record, path = proved
        return found[1], BaselineProof(
            record=record, path=path, root=self.journal.root
        )

    def scan(
        self, low: bytes, high: bytes
    ) -> List[Tuple[bytes, bytes]]:
        """Unverified range scan over the current view."""
        return [
            (key, value)
            for key, _sequence, value in self.views.scan(low, high)
        ]

    def scan_verified(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], List[BaselineProof]]:
        """Range scan with one journal proof *per record*.

        "the retrieval on the proofs of resultant records, instead of
        being fetched in a batch by scanning keys with the given
        interval, must be processed by searching the digest in the
        ledger individually" (Section 6.2.2) — so every result record
        pays its own journal search plus Merkle path, which is the
        behaviour Figure 7 measures.
        """
        results: List[Tuple[bytes, bytes]] = []
        proofs: List[BaselineProof] = []
        for key, _sequence, value in self.views.scan(low, high):
            proved = self.journal.prove_latest(key)
            assert proved is not None  # the view said it exists
            record, path = proved
            results.append((key, value))
            proofs.append(
                BaselineProof(
                    record=record, path=path, root=self.journal.root
                )
            )
        return results, proofs

    def history(self, key: bytes) -> List[Tuple[int, Optional[bytes]]]:
        return self.views.key_history(key)

    # -- digests -----------------------------------------------------------

    def digest(self) -> Digest:
        """The ledger digest clients pin (the journal Merkle root)."""
        return self.journal.root

    def verify_chain(self) -> bool:
        return self.journal.verify_chain()

    def __len__(self) -> int:
        return len(self.views.current)
