"""Exception hierarchy for the Spitz reproduction.

Every error raised by the library derives from :class:`SpitzError`, so a
caller can catch one type to handle any library failure.  Subclasses are
grouped by subsystem: storage, indexing, transactions, verification, and
query processing.
"""

from __future__ import annotations


class SpitzError(Exception):
    """Base class for every error raised by this library."""


class StorageError(SpitzError):
    """A failure inside the storage layer (ForkBase, chunk store)."""


class ChunkNotFoundError(StorageError):
    """A content address was dereferenced but no chunk exists for it."""

    def __init__(self, address: str):
        super().__init__(f"no chunk stored at address {address!r}")
        self.address = address


class BranchNotFoundError(StorageError):
    """A named branch does not exist in the version manager."""

    def __init__(self, branch: str):
        super().__init__(f"unknown branch {branch!r}")
        self.branch = branch


class CommitNotFoundError(StorageError):
    """A commit id does not exist in the version graph."""

    def __init__(self, commit_id: str):
        super().__init__(f"unknown commit {commit_id!r}")
        self.commit_id = commit_id


class IndexError_(SpitzError):
    """A failure inside an index structure.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStructureError`` from the
    package root.
    """


IndexStructureError = IndexError_


class KeyNotFoundError(IndexError_):
    """A lookup key is absent from the index."""

    def __init__(self, key: object):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class TransactionError(SpitzError):
    """A failure inside the transaction subsystem."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (conflict, certification failure, ...)."""

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class TransactionStateError(TransactionError):
    """An operation was attempted in an invalid transaction state."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""

    def __init__(self, txn_id: int):
        super().__init__(txn_id, "deadlock victim")


class TwoPhaseCommitError(TransactionError):
    """The 2PC coordinator could not complete the protocol."""


class VerificationError(SpitzError):
    """An integrity proof failed to verify.

    This is the error that signals *detected tampering*: the digest
    recomputed from a proof does not match the trusted digest.
    """


class ProofError(VerificationError):
    """A proof object is malformed or inconsistent with its claim."""


class TamperDetectedError(VerificationError):
    """Verification established that data or history was modified."""


class QueryError(SpitzError):
    """A failure while parsing or executing a query."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed."""

    def __init__(self, text: str, position: int, message: str):
        super().__init__(f"SQL syntax error at offset {position}: {message}")
        self.text = text
        self.position = position


class SchemaError(QueryError):
    """A statement referenced a missing table/column or violated a schema."""


class ClusterOverloadedError(SpitzError):
    """The cluster shed a request at admission because it is saturated.

    Raised synchronously by :meth:`~repro.core.node.MessageQueue.submit`
    when queue depth has exceeded the configured capacity for a
    sustained window.  The request was *not* accepted: nothing will be
    processed and nothing needs to be rolled back, so the call is safe
    to retry after backing off.  ``retry_after`` is the server's
    suggested backoff in seconds (clients may scale it with their own
    exponential schedule, as :class:`~repro.core.client.ClusterClient`
    does).
    """

    #: Always True: admission rejection happens before any work starts.
    retryable = True

    def __init__(self, depth: int, capacity: int, retry_after: float):
        super().__init__(
            f"cluster overloaded: queue depth {depth} has exceeded "
            f"capacity {capacity} for a sustained window; retry in "
            f"~{retry_after:.3f}s"
        )
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class RateLimitedError(ClusterOverloadedError):
    """The service edge rejected a request against its *per-client*
    token bucket (vs. the parent's cluster-wide admission rejection).

    Same client contract as the parent — nothing happened, back off
    ``retry_after`` seconds and resubmit — so retry loops written for
    :class:`ClusterOverloadedError` handle both without changes.
    """

    def __init__(self, retry_after: float, message: str = ""):
        SpitzError.__init__(
            self,
            message
            or f"rate limited at the service edge; retry in "
               f"~{retry_after:.3f}s",
        )
        self.depth = 0
        self.capacity = 0
        self.retry_after = retry_after


class ClusterStoppedError(SpitzError):
    """A request was submitted to a cluster that is shutting down.

    Raised synchronously by :meth:`~repro.core.node.MessageQueue.submit`
    once the queue is closed — the alternative (accepting the envelope
    and letting the client block until its timeout) is exactly the
    request-loss bug this error exists to prevent.
    """


class IntegrationError(SpitzError):
    """A failure in the non-intrusive / intrusive integration layer."""


class NetworkError(IntegrationError):
    """The simulated network channel rejected or lost a message."""
