"""Threaded stdlib HTTP/1.1 server over a :class:`SpitzCluster`.

This is the socket edge of the service plane: real clients (separate
processes, separate machines) speak JSON-over-HTTP to a cluster that
until now only in-process threads could reach.  Design points:

- **Shedding at the edge.**  Admission-control rejections
  (:class:`~repro.errors.ClusterOverloadedError`) map to **429**,
  deadline sheds and shutdown to **503** — each with a ``Retry-After``
  derived from the queue's own suggested backoff
  (:meth:`~repro.core.node.MessageQueue.suggested_backoff`), plus the
  precise float in the JSON body (HTTP's header wants integer
  seconds; our backoffs are milliseconds).  A well-behaved client
  (:class:`~repro.serve.client.HttpClusterClient`) honors the body
  value through the exact retry loop the in-process client uses.
- **Middleware before the queue.**  Every ``/v1/*`` request passes
  request-id → auth → per-client token bucket; rejected requests
  never spend cluster capacity (DESIGN.md §6e).
- **One parented trace per HTTP request.**  The handler opens an
  ``http.request`` root span on its serving thread; the cluster's
  ``client.submit`` span (opened inside ``MessageQueue.submit`` on the
  same thread) parents under it automatically, so the flight recorder
  retains the full socket-to-storage span tree and ``spitz slowest``
  attributes HTTP requests like any other.

Endpoints::

    GET  /healthz        process liveness (never touches the cluster)
    GET  /readyz         readiness: 200 serving; 503 stopping or on a
                         hard SLO burn (body names the burning SLO)
    GET  /metrics        Prometheus text exposition (registry +
                         windowed rates + per-shard series)
    GET  /v1/stats       metrics snapshot (``?traces=1`` adds flight
                         data, ``?profile_seconds=N`` inlines a folded
                         profile; ``Accept: text/plain`` serves the
                         Prometheus rendering instead)
    GET  /v1/digest      current ledger digest (what clients pin)
    POST /v1/request     one codec-framed Request -> framed Response

Everything is stdlib (``http.server``); the threading server gives one
thread per connection, which matches the cluster's thread-per-node
model and keeps the dependency budget at zero.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.node import SpitzCluster
from repro.errors import ClusterOverloadedError, ClusterStoppedError
from repro.obs.exposition import PROM_CONTENT_TYPE, render_prometheus
from repro.obs.profiler import MAX_PROFILE_SECONDS, profile_duration
from repro.obs.tracing import STATUS_ERROR, STATUS_OK, STATUS_SHED
from repro.serve.codec import (
    WireCodecError,
    decode_request,
    encode_response,
    to_jsonable,
)
from repro.serve.middleware import (
    AuthMiddleware,
    EdgeRejection,
    MiddlewareStack,
    RateLimitMiddleware,
    RequestContext,
    RequestIdMiddleware,
    prefers_plain_text,
)
from repro.serve.ratelimit import RateLimiter

#: Largest accepted request body; bigger gets 413 without reading.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Ceiling on the per-request cluster timeout a client may ask for.
MAX_REQUEST_TIMEOUT = 60.0


class ServerConfig:
    """Knobs for :class:`SpitzHTTPServer` (plain object, no deps)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_tokens: Optional[List[str]] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        request_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.auth_tokens = list(auth_tokens) if auth_tokens else []
        self.rate = rate
        self.burst = burst
        self.request_timeout = request_timeout


def _overload_body(error: ClusterOverloadedError) -> Dict[str, Any]:
    return {
        "error": str(error),
        "overloaded": True,
        "retryable": True,
        "retry_after": error.retry_after,
        "depth": error.depth,
        "capacity": error.capacity,
    }


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection (the threading server gives it a thread)."""

    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; with Nagle on, the
    # second write stalls behind the peer's delayed ACK (~40ms per
    # request on loopback keep-alive connections).
    disable_nagle_algorithm = True
    server: "SpitzHTTPServer"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging is the metrics registry's job, not stderr's.
        pass

    def _reply(
        self,
        status: int,
        body: Dict[str, Any],
        request_id: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if request_id:
            self.send_header("X-Request-Id", request_id)
        if retry_after is not None:
            # Standard header is integer seconds; the precise float
            # rides in the body as "retry_after".
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(payload)
        self.server.observe_response(status)

    def _reply_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        """Non-JSON reply (the Prometheus exposition path)."""
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        self.server.observe_response(status)

    def _read_body(self) -> Optional[bytes]:
        length = self.headers.get("Content-Length")
        if length is None:
            return None
        try:
            size = int(length)
        except ValueError:
            return None
        if size < 0 or size > MAX_BODY_BYTES:
            return None
        return self.rfile.read(size)

    def _context(self, path: str) -> RequestContext:
        return RequestContext(
            method=self.command,
            path=path,
            headers={
                name.lower(): value for name, value in self.headers.items()
            },
            # Host only — the ephemeral port changes per connection,
            # and the rate limiter keys anonymous callers by this, so
            # including it would hand every reconnect a fresh bucket.
            remote_addr=(
                str(self.client_address[0])
                if isinstance(self.client_address, tuple)
                else str(self.client_address)
            ),
        )

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        split = urlsplit(self.path)
        path = split.path
        if path == "/healthz":
            self._reply(200, {"status": "alive"})
            return
        if path == "/readyz":
            ready, detail = self.server.readiness()
            self._reply(200 if ready else 503, detail)
            return
        if path == "/metrics":
            # Like /healthz: scrapers poll this every few seconds and
            # never spend cluster capacity, so it bypasses auth and
            # rate limiting rather than eating the caller's budget.
            self._reply_text(200, self.server.metrics_text(), PROM_CONTENT_TYPE)
            return
        if path == "/v1/stats":
            if prefers_plain_text(self.headers.get("Accept")):
                # Content negotiation: the same telemetry surface in
                # Prometheus text instead of JSON.
                self._reply_text(
                    200, self.server.metrics_text(), PROM_CONTENT_TYPE
                )
                return
            query = parse_qs(split.query)
            traces = query.get("traces", ["0"])[0] in ("1", "true", "yes")
            profile_raw = query.get("profile_seconds", [""])[0]
            try:
                profile_seconds: Optional[float] = (
                    float(profile_raw) if profile_raw else None
                )
            except ValueError:
                profile_seconds = None
            self.server.handle_edge(
                self, self._context(path), kind="stats",
                action=lambda: (
                    200, self.server.stats_body(traces, profile_seconds)
                ),
            )
            return
        if path == "/v1/digest":
            self.server.handle_edge(
                self, self._context(path), kind="digest",
                action=lambda: (200, self.server.digest_body()),
            )
            return
        self._reply(404, {"error": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        path = urlsplit(self.path).path
        if path != "/v1/request":
            self._reply(404, {"error": f"no route {path!r}"})
            return
        body = self._read_body()
        if body is None:
            self._reply(
                411, {"error": "Content-Length required and bounded"}
            )
            return
        self.server.handle_request_route(self, self._context(path), body)


class SpitzHTTPServer:
    """The service plane: middleware stack + routes over one cluster.

    Owns the listening socket (``port=0`` binds an ephemeral port —
    read :attr:`port` after construction) and a daemon thread running
    ``serve_forever``.  Does *not* own the cluster: callers that want
    a one-stop lifecycle use :func:`serve_cluster`.
    """

    def __init__(self, cluster: SpitzCluster, config: Optional[ServerConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else ServerConfig()
        self.metrics = cluster.metrics
        self._c_requests = self.metrics.counter("serve.http.requests")
        self._c_rejected_edge = self.metrics.counter("serve.http.rejected_edge")
        self._h_latency = self.metrics.histogram("serve.http.latency_seconds")
        self._status_counters: Dict[int, Any] = {}
        self.limiter = RateLimiter(
            rate=self.config.rate,
            burst=self.config.burst,
            metrics=self.metrics,
        )
        self.auth = AuthMiddleware(
            tokens=self.config.auth_tokens, metrics=self.metrics
        )
        self.middleware = MiddlewareStack([
            RequestIdMiddleware(),
            self.auth,
            RateLimitMiddleware(self.limiter),
        ])
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        # The handler reaches everything through ``self.server``.
        self._httpd.observe_response = self.observe_response  # type: ignore[attr-defined]
        self._httpd.readiness = self.readiness  # type: ignore[attr-defined]
        self._httpd.stats_body = self.stats_body  # type: ignore[attr-defined]
        self._httpd.metrics_text = self.metrics_text  # type: ignore[attr-defined]
        self._httpd.digest_body = self.digest_body  # type: ignore[attr-defined]
        self._httpd.handle_edge = self.handle_edge  # type: ignore[attr-defined]
        self._httpd.handle_request_route = self.handle_request_route  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="spitz-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SpitzHTTPServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- per-request machinery (called from handler threads) ------------

    def observe_response(self, status: int) -> None:
        counter = self._status_counters.get(status)
        if counter is None:
            counter = self.metrics.counter(f"serve.http.status.{status}")
            self._status_counters[status] = counter
        counter.inc()

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        queue = self.cluster.queue
        detail: Dict[str, Any] = {
            "queue_depth": queue.metrics.gauge("queue.depth").value,
            "queue_capacity": queue.capacity,
        }
        if queue.closed:
            detail["status"] = "stopping"
            return False, detail
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            # Cached statuses from the last telemetry tick — readiness
            # probes never walk the slot ring.  Only *critical* burns
            # (hard burn in BOTH SLO windows, with enough traffic to
            # mean it) fail readiness; see DESIGN.md §6h.
            ok, reasons = telemetry.slo.health()
            if not ok:
                detail["status"] = "slo_burn"
                detail["slo"] = reasons
                return False, detail
        detail["status"] = "ready"
        return True, detail

    def stats_body(
        self, traces: bool, profile_seconds: Optional[float] = None
    ) -> Dict[str, Any]:
        """The CLI's exact payload: one serialization path for both.

        The cumulative snapshot, plus the telemetry plane's windowed
        view (``windows``) and SLO statuses (``slo``) when the cluster
        runs one.  ``profile_seconds`` (capped at
        :data:`MAX_PROFILE_SECONDS`) samples the live process for that
        long and inlines the profiler report — the request blocks for
        the duration, which is the point: it profiles whatever the
        server is doing *now*.
        """
        snapshot = dict(self.cluster.db.metrics_snapshot())
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            snapshot["windows"] = telemetry.windows_snapshot()
            snapshot["slo"] = telemetry.slo_snapshot()
        if traces:
            snapshot["traces"] = self.metrics.flight.snapshot()
        if profile_seconds is not None and profile_seconds > 0:
            bounded = min(float(profile_seconds), MAX_PROFILE_SECONDS)
            snapshot["profile"] = profile_duration(bounded).report()
        return to_jsonable(snapshot)

    def metrics_text(self) -> str:
        """The full Prometheus exposition (``GET /metrics``)."""
        # metrics_snapshot() refreshes derived gauges (ledger height,
        # chunk-store occupancy) as a side effect before we render.
        self.cluster.db.metrics_snapshot()
        telemetry = getattr(self.cluster, "telemetry", None)
        windows = (
            telemetry.windows_snapshot() if telemetry is not None else None
        )
        shard_registries = getattr(
            self.cluster.db, "shard_registries", None
        )
        shards = None
        if shard_registries:
            shards = {
                f"{shard_id:02d}": registry.exposition_snapshot()
                for shard_id, registry in enumerate(shard_registries)
            }
        return render_prometheus(
            self.metrics.exposition_snapshot(),
            windows=windows,
            shards=shards,
        )

    def digest_body(self) -> Dict[str, Any]:
        return to_jsonable({"digest": self.cluster.db.digest()})

    def _reject(
        self,
        handler: _Handler,
        context: RequestContext,
        rejection: EdgeRejection,
    ) -> None:
        self._c_rejected_edge.inc()
        body = {
            "error": rejection.error,
            "retryable": rejection.retryable,
            "request_id": context.request_id,
        }
        if rejection.retry_after is not None:
            body["retry_after"] = rejection.retry_after
        handler._reply(
            rejection.status, body,
            request_id=context.request_id,
            retry_after=rejection.retry_after,
        )

    def handle_edge(self, handler, context: RequestContext, kind, action) -> None:
        """Run a GET-side route through middleware + tracing.

        ``action`` returns ``(status, body)``; it runs inside the
        request's root span so any cluster work it does parents there.
        """
        self._c_requests.inc()
        start = time.perf_counter()
        tracer = self.metrics.tracer
        # The reply is written *after* the span closes: once a client
        # has the response, its trace is already in the recorder —
        # "one complete trace per request" holds without a race.
        with tracer.span(
            "http.request",
            attributes={"kind": kind, "path": context.path},
        ) as span:
            rejection = self.middleware.run(context)
            if span is not None:
                span.set_attribute("request_id", context.request_id)
                span.set_attribute("client", context.client_id)
            if rejection is not None:
                if span is not None:
                    span.status = (
                        STATUS_SHED if rejection.status == 429
                        else STATUS_ERROR
                    )
            else:
                status, body = action()
                if span is not None and status >= 400:
                    span.status = STATUS_ERROR
        self._h_latency.observe(time.perf_counter() - start)
        if rejection is not None:
            self._reject(handler, context, rejection)
        else:
            body["request_id"] = context.request_id
            handler._reply(status, body, request_id=context.request_id)

    def handle_request_route(
        self, handler, context: RequestContext, body: bytes
    ) -> None:
        """POST /v1/request: decode, middleware, submit, frame, reply."""
        self._c_requests.inc()
        start = time.perf_counter()
        tracer = self.metrics.tracer
        # As in handle_edge: the span closes (and the trace lands in
        # the flight recorder) before the reply goes on the wire.
        with tracer.span(
            "http.request",
            attributes={"kind": "edge", "path": context.path},
        ) as span:
            status, payload, retry_after, outcome = self._process(
                context, body, span
            )
            if span is not None:
                span.status = outcome
                span.set_attribute("request_id", context.request_id)
                span.set_attribute("http_status", status)
        self._h_latency.observe(time.perf_counter() - start)
        if isinstance(payload, dict):
            payload.setdefault("request_id", context.request_id)
        handler._reply(
            status, payload,
            request_id=context.request_id,
            retry_after=retry_after,
        )

    def _process(self, context, body, span):
        """Returns (http_status, json_body, retry_after, span_status)."""
        rejection = self.middleware.run(context)
        if span is not None:
            span.set_attribute("client", context.client_id)
        if rejection is not None:
            self._c_rejected_edge.inc()
            reply = {
                "error": rejection.error,
                "retryable": rejection.retryable,
            }
            if rejection.retry_after is not None:
                reply["retry_after"] = rejection.retry_after
            outcome = (
                STATUS_SHED if rejection.status == 429 else STATUS_ERROR
            )
            return rejection.status, reply, rejection.retry_after, outcome
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return (
                400,
                {"error": f"request body is not JSON: {error}"},
                None,
                STATUS_ERROR,
            )
        try:
            request = decode_request(frame)
        except WireCodecError as error:
            return 400, {"error": str(error)}, None, STATUS_ERROR
        if span is not None:
            span.set_attribute("kind", request.kind.value)
        timeout = self.config.request_timeout
        asked = frame.get("timeout_seconds")
        if isinstance(asked, (int, float)) and asked > 0:
            timeout = min(float(asked), MAX_REQUEST_TIMEOUT)
        try:
            response = self.cluster.submit(request, timeout=timeout)
        except ClusterOverloadedError as error:
            # Admission rejection: shed at the socket edge, with the
            # queue's own backoff suggestion on the wire.
            return 429, _overload_body(error), error.retry_after, STATUS_SHED
        except ClusterStoppedError as error:
            return (
                503,
                {"error": str(error), "stopped": True, "retryable": False},
                None,
                STATUS_ERROR,
            )
        except TimeoutError as error:
            return (
                504,
                {"error": str(error), "retryable": False},
                None,
                STATUS_ERROR,
            )
        reply = encode_response(response)
        if response.ok:
            return 200, reply, None, STATUS_OK
        if response.retryable:
            # Deadline shed inside the queue: 503 + the queue's live
            # backoff suggestion (the shed response itself carries
            # none), so remote clients pace exactly like local ones.
            retry_after = self.cluster.queue.suggested_backoff()
            reply["retry_after"] = retry_after
            return 503, reply, retry_after, STATUS_SHED
        return 200, reply, None, STATUS_ERROR


class ClusterService:
    """One-stop lifecycle: a cluster plus its HTTP front end."""

    def __init__(self, cluster: SpitzCluster, server: SpitzHTTPServer):
        self.cluster = cluster
        self.server = server

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self) -> None:
        self.server.stop()
        self.cluster.stop()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_cluster(
    nodes: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    queue_capacity: Optional[int] = None,
    overload_window: float = 0.05,
    durable_root: Optional[str] = None,
    auth_tokens: Optional[List[str]] = None,
    rate: Optional[float] = None,
    burst: Optional[float] = None,
    request_timeout: float = 10.0,
    metrics=None,
    shards: int = 1,
    indexed_columns=None,
) -> ClusterService:
    """Build, start and front a cluster in one call (CLI and bench)."""
    cluster = SpitzCluster(
        nodes=nodes,
        durable_root=durable_root,
        queue_capacity=queue_capacity,
        overload_window=overload_window,
        metrics=metrics,
        shards=shards,
        indexed_columns=indexed_columns,
    )
    cluster.start()
    server = SpitzHTTPServer(
        cluster,
        ServerConfig(
            host=host,
            port=port,
            auth_tokens=auth_tokens,
            rate=rate,
            burst=burst,
            request_timeout=request_timeout,
        ),
    )
    server.start()
    return ClusterService(cluster, server)


__all__ = [
    "ClusterService",
    "MAX_BODY_BYTES",
    "MAX_REQUEST_TIMEOUT",
    "ServerConfig",
    "SpitzHTTPServer",
    "serve_cluster",
]
