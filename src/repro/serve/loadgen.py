"""Multi-process HTTP load generator for the service plane.

The in-process saturation harness (``repro.core.client.run_saturation``)
shares the GIL, the allocator and the scheduler with the cluster it is
measuring; the numbers it produces are *simulated* offered load.  This
module drives the HTTP server from **separate OS processes** — real
sockets, real serialization, no shared GIL — which is the only
configuration under which "sustained RPS" and "p99 latency" mean what
they say.

Each worker process runs an :class:`~repro.serve.client.HttpClusterClient`
(the standard retry/backoff loop over the wire) against a put/get mix,
records per-request latencies, and ships its tallies back through a
``multiprocessing`` queue.  The parent merges them into a
:class:`LoadReport`: sustained RPS over the overlapping wall-clock
window, exact p50/p99 from the pooled latencies, and the
completed/rejected/rate-limited/shed split that the acceptance
accounting checks against the server's own counters.

Workers are started with the ``spawn`` context: the benchmark parent
runs the server's threads in-process, and forking a multi-threaded
parent can deadlock children on locks held mid-fork.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.request_handler import Request, RequestKind
from repro.errors import (
    ClusterOverloadedError,
    NetworkError,
    RateLimitedError,
)
from repro.serve.client import HttpClusterClient


@dataclass
class LoadReport:
    """Merged outcome of one multi-process run against a server."""

    processes: int
    ops_per_process: int
    offered: int = 0
    completed: int = 0
    #: Admission rejections (429 overloaded) that survived retries.
    rejected_overload: int = 0
    #: Per-client token-bucket rejections (429 rate limited).
    rate_limited: int = 0
    #: Retryable shed responses (503) that survived retries.
    shed: int = 0
    #: Non-retryable error responses (malformed requests, 401...).
    errors: int = 0
    timeouts: int = 0
    network_errors: int = 0
    #: Client-side attempts across all workers (retries included).
    attempts: int = 0
    elapsed_seconds: float = 0.0
    #: Completed-request latencies, pooled (seconds).
    latency_p50: Optional[float] = None
    latency_p99: Optional[float] = None
    latency_mean: Optional[float] = None
    per_worker: List[Dict[str, object]] = field(default_factory=list)

    @property
    def rps(self) -> float:
        """Sustained completed requests per second of wall time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "processes": self.processes,
            "ops_per_process": self.ops_per_process,
            "offered": self.offered,
            "completed": self.completed,
            "rejected_overload": self.rejected_overload,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "network_errors": self.network_errors,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "rps": self.rps,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact rank-``q`` value of a pooled, sorted latency sample."""
    assert sorted_values
    rank = max(1, int(q * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _worker(
    host: str,
    port: int,
    token: Optional[str],
    worker_id: int,
    ops: int,
    put_ratio: float,
    verify_every: int,
    attempts: int,
    backoff: float,
    timeout: float,
    results,  # multiprocessing.Queue
) -> None:
    """One load process: hammer the server, ship tallies back."""
    tally: Dict[str, object] = {
        "worker": worker_id,
        "completed": 0,
        "rejected_overload": 0,
        "rate_limited": 0,
        "shed": 0,
        "errors": 0,
        "timeouts": 0,
        "network_errors": 0,
        "attempts": 0,
        "latencies": [],
    }
    latencies: List[float] = tally["latencies"]  # type: ignore[assignment]
    client = HttpClusterClient(
        host, port, token=token,
        attempts=attempts, backoff=backoff, timeout=timeout,
    )
    started = time.time()
    last_put: Optional[bytes] = None
    for i in range(ops):
        verify = verify_every > 0 and i % verify_every == 0
        # Interleave at per-10-ops granularity; reads target the last
        # written key so a GET never races a key that does not exist.
        if i % 10 < put_ratio * 10 or last_put is None:
            key = f"load:{worker_id}:{i}".encode()
            request = Request(
                RequestKind.PUT,
                {"key": key, "value": b"v%d" % i},
                verify=verify,
            )
            last_put = key
        else:
            request = Request(
                RequestKind.GET, {"key": last_put}, verify=verify
            )
        begin = time.perf_counter()
        try:
            response = client.call(request)
        except RateLimitedError:
            tally["rate_limited"] += 1
            continue
        except ClusterOverloadedError:
            tally["rejected_overload"] += 1
            continue
        except TimeoutError:
            tally["timeouts"] += 1
            continue
        except NetworkError:
            tally["network_errors"] += 1
            continue
        if response.ok:
            tally["completed"] += 1
            latencies.append(time.perf_counter() - begin)
        elif response.retryable:
            tally["shed"] += 1
        else:
            tally["errors"] += 1
    tally["attempts"] = client.stats.attempts
    tally["started"] = started
    tally["finished"] = time.time()
    client.close()
    results.put(tally)


def run_load(
    host: str,
    port: int,
    processes: int = 2,
    ops_per_process: int = 100,
    put_ratio: float = 0.8,
    verify_every: int = 0,
    token: Optional[str] = None,
    attempts: int = 1,
    backoff: float = 0.02,
    timeout: float = 5.0,
    start_timeout: float = 120.0,
) -> LoadReport:
    """Drive ``processes`` separate OS processes at ``host:port``.

    ``verify_every > 0`` turns every N-th operation into a verified
    one (proof shipped back over the wire); ``attempts`` > 1 enables
    the client retry loop, measuring recovered goodput instead of raw
    rejection behaviour.
    """
    if processes < 1:
        raise ValueError("need at least one load process")
    context = multiprocessing.get_context("spawn")
    results = context.Queue()
    workers = [
        context.Process(
            target=_worker,
            args=(
                host, port, token, worker_id, ops_per_process, put_ratio,
                verify_every, attempts, backoff, timeout, results,
            ),
            daemon=True,
        )
        for worker_id in range(processes)
    ]
    for worker in workers:
        worker.start()
    report = LoadReport(processes=processes, ops_per_process=ops_per_process)
    report.offered = processes * ops_per_process
    latencies: List[float] = []
    first_start: Optional[float] = None
    last_finish: Optional[float] = None
    for _ in workers:
        tally = results.get(timeout=start_timeout)
        worker_latencies: List[float] = tally.pop("latencies")
        latencies.extend(worker_latencies)
        report.completed += tally["completed"]
        report.rejected_overload += tally["rejected_overload"]
        report.rate_limited += tally["rate_limited"]
        report.shed += tally["shed"]
        report.errors += tally["errors"]
        report.timeouts += tally["timeouts"]
        report.network_errors += tally["network_errors"]
        report.attempts += tally["attempts"]
        started, finished = tally["started"], tally["finished"]
        first_start = (
            started if first_start is None else min(first_start, started)
        )
        last_finish = (
            finished if last_finish is None else max(last_finish, finished)
        )
        report.per_worker.append(tally)
    for worker in workers:
        worker.join(timeout=10.0)
    if first_start is not None and last_finish is not None:
        report.elapsed_seconds = max(last_finish - first_start, 0.0)
    if latencies:
        latencies.sort()
        report.latency_p50 = _percentile(latencies, 0.50)
        report.latency_p99 = _percentile(latencies, 0.99)
        report.latency_mean = sum(latencies) / len(latencies)
    return report


__all__ = ["LoadReport", "run_load"]
