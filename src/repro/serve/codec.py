"""JSON wire codec for requests, responses, proofs and snapshots.

One serialization path, three consumers: the HTTP server frames every
:class:`~repro.core.request_handler.Response` with it, the HTTP client
decodes back to the same in-memory objects, and the CLI's ``--json``
outputs (``spitz stats``, ``spitz slowest``, the bench harness) run
their snapshot dicts through :func:`to_jsonable` so anything a STATS
endpoint can serve, the CLI prints byte-identically.

Framing rules — JSON has no bytes, so binary values are *tagged*:

- ``bytes`` (keys, values, index-node blobs) →
  ``{"$bytes": "<base64>"}``;
- a 32-byte :class:`~repro.crypto.hashing.Digest` → the same tag (it
  is a ``bytes`` subclass; type identity is restored where the schema
  demands a digest, e.g. inside proofs);
- :class:`~repro.core.ledger.LedgerDigest` → ``{"$ledger_digest":
  {"height", "chain_digest", "tree_root"}}`` with hex digests;
- :class:`~repro.core.proofs.LedgerProof` /
  :class:`~repro.core.proofs.LedgerRangeProof` /
  :class:`~repro.core.proofs.LedgerMultiProof` → ``{"$proof": ...}`` /
  ``{"$range_proof": ...}`` / ``{"$multi_proof": ...}``, every field
  encoded explicitly — **no
  pickle at the envelope layer**, so a malicious response cannot smuggle
  arbitrary objects through the codec itself.  (The SIRI node blobs
  *inside* a proof are the index's own node encoding; the verifier
  decodes them only after their digests check out.)
- :class:`~repro.shard.digest.ShardedDigest` →
  ``{"$sharded_digest": {"num_shards", "height", "root"}}``;
- :class:`~repro.shard.proofs.ShardedProof` /
  :class:`~repro.shard.proofs.ShardedMultiProof` →
  ``{"$sharded_proof": ...}`` / ``{"$sharded_multi_proof": ...}``: the
  inner single-ledger proof frames plus an explicit shard-membership
  branch (shard id, shard digest, Merkle path) per part;
- :class:`~repro.search.proofs.SearchProof` → ``{"$search_proof":
  {"column", "predicate", "matches", "anchor", "evidence"}}``: the
  predicate as plain JSON scalars, the anchor as a point-proof frame,
  the evidence tagged ``point``/``range`` by kind;
- tuples → JSON lists (decoders restore tuples where the proof schema
  requires them).

Decoding a served proof therefore yields the exact object the
in-process path produces, and :class:`~repro.core.verifier.ClientVerifier`
verifies it unchanged — the paper's remote-client story over a real
wire.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Optional

from repro.core.ledger import Block, LedgerDigest
from repro.core.proofs import (
    BlockWitness,
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.request_handler import Request, RequestKind, Response
from repro.crypto.hashing import Digest
from repro.errors import SpitzError
from repro.crypto.merkle import MerkleProof
from repro.indexes.pos_tree import PosMultiProof, PosRangeProof
from repro.indexes.siri import SiriProof
from repro.search.proofs import SearchPredicate, SearchProof
from repro.shard.digest import ShardMembership, ShardedDigest
from repro.shard.proofs import (
    ShardedMultiPart,
    ShardedMultiProof,
    ShardedProof,
)


class WireCodecError(SpitzError):
    """A wire frame could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# value encoding (bytes / digests / proofs / containers)
# ---------------------------------------------------------------------------

def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise WireCodecError(f"invalid base64 frame: {error}") from None


def encode_value(value: Any) -> Any:
    """Encode one payload/result value into JSON-safe form (strict:
    raises :class:`WireCodecError` on types the wire cannot carry)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, LedgerDigest):
        return {"$ledger_digest": _encode_ledger_digest(value)}
    if isinstance(value, LedgerProof):
        return {"$proof": _encode_point_proof(value)}
    if isinstance(value, LedgerRangeProof):
        return {"$range_proof": _encode_range_proof(value)}
    if isinstance(value, LedgerMultiProof):
        return {"$multi_proof": _encode_multi_proof(value)}
    if isinstance(value, ShardedDigest):
        return {"$sharded_digest": _encode_sharded_digest(value)}
    if isinstance(value, ShardedProof):
        return {"$sharded_proof": _encode_sharded_proof(value)}
    if isinstance(value, ShardedMultiProof):
        return {"$sharded_multi_proof": _encode_sharded_multi_proof(value)}
    if isinstance(value, SearchProof):
        return {"$search_proof": _encode_search_proof(value)}
    if isinstance(value, Block):
        # SQL writes return the sealed Block; clients only need the
        # commit receipt, so ship a plain summary (decodes as a dict).
        return {
            "height": value.height,
            "chain_digest": _b64(bytes(value.chain_digest)),
            "write_count": value.write_count,
        }
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": _b64(bytes(value))}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {_encode_key(key): encode_value(item)
                for key, item in value.items()}
    raise WireCodecError(
        f"cannot encode {type(value).__name__} for the wire"
    )


def _encode_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    raise WireCodecError(
        f"wire dict keys must be strings, got {type(key).__name__}"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (lists stay lists)."""
    if isinstance(value, dict):
        if "$bytes" in value:
            return _unb64(value["$bytes"])
        if "$ledger_digest" in value:
            return _decode_ledger_digest(value["$ledger_digest"])
        if "$proof" in value:
            return _decode_point_proof(value["$proof"])
        if "$range_proof" in value:
            return _decode_range_proof(value["$range_proof"])
        if "$multi_proof" in value:
            return _decode_multi_proof(value["$multi_proof"])
        if "$sharded_digest" in value:
            return _decode_sharded_digest(value["$sharded_digest"])
        if "$sharded_proof" in value:
            return _decode_sharded_proof(value["$sharded_proof"])
        if "$sharded_multi_proof" in value:
            return _decode_sharded_multi_proof(value["$sharded_multi_proof"])
        if "$search_proof" in value:
            return _decode_search_proof(value["$search_proof"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def to_jsonable(value: Any) -> Any:
    """Best-effort JSON-safe view for snapshot/report dicts.

    Same framing as :func:`encode_value` for everything it knows;
    anything exotic degrades to ``repr`` instead of raising, because a
    stats surface must never fail to serialize whatever a component
    put in its snapshot.  Non-string dict keys are stringified.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, LedgerDigest):
        return {"$ledger_digest": _encode_ledger_digest(value)}
    if isinstance(value, ShardedDigest):
        return {"$sharded_digest": _encode_sharded_digest(value)}
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": _b64(bytes(value))}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {
            key if isinstance(key, str) else repr(key): to_jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (LedgerProof, LedgerRangeProof, LedgerMultiProof,
                          ShardedProof, ShardedMultiProof, SearchProof)):
        return encode_value(value)
    return repr(value)


# ---------------------------------------------------------------------------
# digests and proofs
# ---------------------------------------------------------------------------

def _encode_digest(digest: Digest) -> str:
    return digest.hex()


def _decode_digest(text: Any) -> Digest:
    if not isinstance(text, str):
        raise WireCodecError("digest frame must be a hex string")
    try:
        return Digest.from_hex(text)
    except ValueError as error:
        raise WireCodecError(f"invalid digest frame: {error}") from None


def _encode_ledger_digest(digest: LedgerDigest) -> Dict[str, Any]:
    return {
        "height": digest.height,
        "chain_digest": _encode_digest(digest.chain_digest),
        "tree_root": _encode_digest(digest.tree_root),
    }


def _decode_ledger_digest(frame: Any) -> LedgerDigest:
    try:
        return LedgerDigest(
            height=int(frame["height"]),
            chain_digest=_decode_digest(frame["chain_digest"]),
            tree_root=_decode_digest(frame["tree_root"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(
            f"malformed ledger-digest frame: {error}"
        ) from None


def _encode_block(block: BlockWitness) -> Dict[str, Any]:
    return {
        "height": block.height,
        "previous_chain_digest": _encode_digest(block.previous_chain_digest),
        "tree_root": _encode_digest(block.tree_root),
        "writes_digest": _encode_digest(block.writes_digest),
        "statements_digest": _encode_digest(block.statements_digest),
        "chain_digest": _encode_digest(block.chain_digest),
    }


def _decode_block(frame: Any) -> BlockWitness:
    try:
        return BlockWitness(
            height=int(frame["height"]),
            previous_chain_digest=_decode_digest(
                frame["previous_chain_digest"]
            ),
            tree_root=_decode_digest(frame["tree_root"]),
            writes_digest=_decode_digest(frame["writes_digest"]),
            statements_digest=_decode_digest(frame["statements_digest"]),
            chain_digest=_decode_digest(frame["chain_digest"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(
            f"malformed block-witness frame: {error}"
        ) from None


def _encode_point_proof(proof: LedgerProof) -> Dict[str, Any]:
    siri = proof.siri
    return {
        "siri": {
            "key": _b64(siri.key),
            "value": None if siri.value is None else _b64(siri.value),
            "nodes": [_b64(node) for node in siri.nodes],
        },
        "block": _encode_block(proof.block),
    }


def _decode_point_proof(frame: Any) -> LedgerProof:
    try:
        siri = frame["siri"]
        value = siri["value"]
        return LedgerProof(
            siri=SiriProof(
                key=_unb64(siri["key"]),
                value=None if value is None else _unb64(value),
                nodes=tuple(_unb64(node) for node in siri["nodes"]),
            ),
            block=_decode_block(frame["block"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(f"malformed proof frame: {error}") from None


def _encode_range_proof(proof: LedgerRangeProof) -> Dict[str, Any]:
    inner = proof.range_proof
    return {
        "low": _b64(inner.low),
        "high": _b64(inner.high),
        "entries": [[_b64(key), _b64(value)] for key, value in inner.entries],
        "nodes": [_b64(node) for node in inner.nodes],
        "root": _encode_digest(inner.root),
        "block": _encode_block(proof.block),
    }


def _decode_range_proof(frame: Any) -> LedgerRangeProof:
    try:
        return LedgerRangeProof(
            range_proof=PosRangeProof(
                low=_unb64(frame["low"]),
                high=_unb64(frame["high"]),
                entries=tuple(
                    (_unb64(key), _unb64(value))
                    for key, value in frame["entries"]
                ),
                nodes=tuple(_unb64(node) for node in frame["nodes"]),
                root=_decode_digest(frame["root"]),
            ),
            block=_decode_block(frame["block"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireCodecError(
            f"malformed range-proof frame: {error}"
        ) from None


def _encode_multi_proof(proof: LedgerMultiProof) -> Dict[str, Any]:
    inner = proof.multi
    return {
        "entries": [
            [_b64(key), None if value is None else _b64(value)]
            for key, value in inner.entries
        ],
        "nodes": [_b64(node) for node in inner.nodes],
        "root": _encode_digest(inner.root),
        "block": _encode_block(proof.block),
    }


def _decode_multi_proof(frame: Any) -> LedgerMultiProof:
    try:
        return LedgerMultiProof(
            multi=PosMultiProof(
                entries=tuple(
                    (_unb64(key), None if value is None else _unb64(value))
                    for key, value in frame["entries"]
                ),
                nodes=tuple(_unb64(node) for node in frame["nodes"]),
                root=_decode_digest(frame["root"]),
            ),
            block=_decode_block(frame["block"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireCodecError(
            f"malformed multi-proof frame: {error}"
        ) from None


# ---------------------------------------------------------------------------
# search proofs
# ---------------------------------------------------------------------------

def _encode_search_evidence(evidence: Any) -> Any:
    if evidence is None:
        return None
    if isinstance(evidence, SiriProof):
        return {
            "kind": "point",
            "key": _b64(evidence.key),
            "value": (
                None if evidence.value is None else _b64(evidence.value)
            ),
            "nodes": [_b64(node) for node in evidence.nodes],
        }
    if isinstance(evidence, PosRangeProof):
        return {
            "kind": "range",
            "low": _b64(evidence.low),
            "high": _b64(evidence.high),
            "entries": [
                [_b64(key), _b64(value)]
                for key, value in evidence.entries
            ],
            "nodes": [_b64(node) for node in evidence.nodes],
            "root": _encode_digest(evidence.root),
        }
    raise WireCodecError(
        f"cannot encode search evidence of type {type(evidence).__name__}"
    )


def _decode_search_evidence(frame: Any) -> Any:
    if frame is None:
        return None
    kind = frame.get("kind") if isinstance(frame, dict) else None
    if kind == "point":
        value = frame["value"]
        return SiriProof(
            key=_unb64(frame["key"]),
            value=None if value is None else _unb64(value),
            nodes=tuple(_unb64(node) for node in frame["nodes"]),
        )
    if kind == "range":
        return PosRangeProof(
            low=_unb64(frame["low"]),
            high=_unb64(frame["high"]),
            entries=tuple(
                (_unb64(key), _unb64(value))
                for key, value in frame["entries"]
            ),
            nodes=tuple(_unb64(node) for node in frame["nodes"]),
            root=_decode_digest(frame["root"]),
        )
    raise WireCodecError(f"unknown search evidence kind {kind!r}")


def _encode_search_proof(proof: SearchProof) -> Dict[str, Any]:
    return {
        "column": proof.column,
        "predicate": proof.predicate.to_payload(),
        "matches": [
            [_b64(value), [_b64(ukey) for ukey in postings]]
            for value, postings in proof.matches
        ],
        "anchor": _encode_point_proof(proof.anchor),
        "evidence": _encode_search_evidence(proof.evidence),
    }


def _decode_search_proof(frame: Any) -> SearchProof:
    try:
        column = frame["column"]
        if not isinstance(column, str):
            raise WireCodecError("search-proof column must be a string")
        return SearchProof(
            column=column,
            predicate=SearchPredicate.from_payload(frame["predicate"]),
            matches=tuple(
                (
                    _unb64(value),
                    tuple(_unb64(ukey) for ukey in postings),
                )
                for value, postings in frame["matches"]
            ),
            anchor=_decode_point_proof(frame["anchor"]),
            evidence=_decode_search_evidence(frame["evidence"]),
        )
    except (KeyError, TypeError, ValueError, SpitzError) as error:
        if isinstance(error, WireCodecError):
            raise
        raise WireCodecError(
            f"malformed search-proof frame: {error}"
        ) from None


# ---------------------------------------------------------------------------
# sharded digests and proofs
# ---------------------------------------------------------------------------

def _encode_sharded_digest(digest: ShardedDigest) -> Dict[str, Any]:
    return {
        "num_shards": digest.num_shards,
        "height": digest.height,
        "root": _encode_digest(digest.root),
    }


def _decode_sharded_digest(frame: Any) -> ShardedDigest:
    try:
        return ShardedDigest(
            num_shards=int(frame["num_shards"]),
            height=int(frame["height"]),
            root=_decode_digest(frame["root"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(
            f"malformed sharded-digest frame: {error}"
        ) from None


def _encode_membership(membership: ShardMembership) -> Dict[str, Any]:
    return {
        "shard_id": membership.shard_id,
        "shard_digest": _encode_ledger_digest(membership.shard_digest),
        "leaf_index": membership.proof.leaf_index,
        "tree_size": membership.proof.tree_size,
        "path": [
            [_encode_digest(sibling), bool(is_left)]
            for sibling, is_left in membership.proof.path
        ],
    }


def _decode_membership(frame: Any) -> ShardMembership:
    try:
        return ShardMembership(
            shard_id=int(frame["shard_id"]),
            shard_digest=_decode_ledger_digest(frame["shard_digest"]),
            proof=MerkleProof(
                leaf_index=int(frame["leaf_index"]),
                tree_size=int(frame["tree_size"]),
                path=tuple(
                    (_decode_digest(sibling), bool(is_left))
                    for sibling, is_left in frame["path"]
                ),
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireCodecError(
            f"malformed shard-membership frame: {error}"
        ) from None


def _encode_sharded_proof(proof: ShardedProof) -> Dict[str, Any]:
    return {
        "inner": _encode_point_proof(proof.inner),
        "membership": _encode_membership(proof.membership),
        "digest": _encode_sharded_digest(proof.digest),
    }


def _decode_sharded_proof(frame: Any) -> ShardedProof:
    try:
        return ShardedProof(
            inner=_decode_point_proof(frame["inner"]),
            membership=_decode_membership(frame["membership"]),
            digest=_decode_sharded_digest(frame["digest"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(
            f"malformed sharded-proof frame: {error}"
        ) from None


def _encode_sharded_multi_proof(proof: ShardedMultiProof) -> Dict[str, Any]:
    return {
        "keys": [_b64(key) for key in proof.keys],
        "parts": [
            {
                "membership": _encode_membership(part.membership),
                "multi": _encode_multi_proof(part.multi),
            }
            for part in proof.parts
        ],
        "digest": _encode_sharded_digest(proof.digest),
    }


def _decode_sharded_multi_proof(frame: Any) -> ShardedMultiProof:
    try:
        return ShardedMultiProof(
            keys=tuple(_unb64(key) for key in frame["keys"]),
            parts=tuple(
                ShardedMultiPart(
                    membership=_decode_membership(part["membership"]),
                    multi=_decode_multi_proof(part["multi"]),
                )
                for part in frame["parts"]
            ),
            digest=_decode_sharded_digest(frame["digest"]),
        )
    except (KeyError, TypeError) as error:
        raise WireCodecError(
            f"malformed sharded-multi-proof frame: {error}"
        ) from None


# ---------------------------------------------------------------------------
# request / response envelopes
# ---------------------------------------------------------------------------

def encode_request(request: Request) -> Dict[str, Any]:
    return {
        "kind": request.kind.value,
        "verify": bool(request.verify),
        "payload": encode_value(dict(request.payload)),
    }


def decode_request(frame: Any) -> Request:
    if not isinstance(frame, dict):
        raise WireCodecError("request frame must be a JSON object")
    try:
        kind = RequestKind(frame["kind"])
    except (KeyError, ValueError):
        raise WireCodecError(
            f"unknown request kind {frame.get('kind')!r}"
        ) from None
    payload = frame.get("payload", {})
    if not isinstance(payload, dict):
        raise WireCodecError("request payload must be a JSON object")
    return Request(
        kind=kind,
        payload=decode_value(payload),
        verify=bool(frame.get("verify", False)),
    )


def encode_response(response: Response) -> Dict[str, Any]:
    return {
        "ok": response.ok,
        "result": encode_value(response.result),
        "proof": encode_value(response.proof),
        "digest": (
            None if response.digest is None
            else encode_value(response.digest)
        ),
        "error": response.error,
        "retryable": bool(response.retryable),
    }


def decode_response(frame: Any) -> Response:
    if not isinstance(frame, dict):
        raise WireCodecError("response frame must be a JSON object")
    digest: Optional[object] = None
    digest_frame = frame.get("digest")
    if digest_frame is not None:
        decoded = decode_value(digest_frame)
        if not isinstance(decoded, (LedgerDigest, ShardedDigest)):
            raise WireCodecError("response digest frame is not a digest")
        digest = decoded
    return Response(
        ok=bool(frame.get("ok", False)),
        result=decode_value(frame.get("result")),
        proof=decode_value(frame.get("proof")),
        digest=digest,
        error=frame.get("error"),
        retryable=bool(frame.get("retryable", False)),
    )


__all__ = [
    "WireCodecError",
    "decode_request",
    "decode_response",
    "decode_value",
    "encode_request",
    "encode_response",
    "encode_value",
    "to_jsonable",
]
