"""HTTP transport speaking the wire codec, plugged into ClusterClient.

The retry discipline must not fork between in-process and networked
callers — that is the whole point of funneling both through
:class:`~repro.core.client.ClusterClient`.  :class:`HttpTransport`
therefore *impersonates a cluster*: it exposes the same
``submit(request, timeout) -> Response`` surface, translating HTTP
statuses back into the exact in-process failure shapes:

- **429 with queue depth/capacity** →
  :class:`~repro.errors.ClusterOverloadedError` carrying the server's
  ``retry_after`` verbatim (the float from the JSON body, not the
  integer-rounded header), so the client's
  ``max(suggested, backoff * 2**attempt)`` schedule sees exactly what
  the queue suggested;
- **429 from the per-client token bucket** →
  :class:`~repro.errors.RateLimitedError` (a retryable subclass);
- **503 framing a retryable shed response** → that decoded
  :class:`~repro.core.request_handler.Response`;
- **503 stopped** → :class:`~repro.errors.ClusterStoppedError`;
- **504** → :class:`TimeoutError`.

:class:`HttpClusterClient` is then just ``ClusterClient`` handed an
:class:`HttpTransport` — same stats, same injectable sleep, same
backoff math, over a socket.  Connections are per-thread and kept
alive (HTTP/1.1), with one transparent reconnect per call for servers
that closed an idle connection.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.client import ClusterClient
from repro.core.request_handler import Request, Response
from repro.errors import (
    ClusterOverloadedError,
    ClusterStoppedError,
    NetworkError,
    RateLimitedError,
)
from repro.serve.codec import decode_response, encode_request
from repro.serve.middleware import AUTH_HEADER


class HttpTransport:
    """A remote cluster behind ``submit()`` (duck-typed SpitzCluster).

    One :class:`http.client.HTTPConnection` per calling thread — the
    load generator runs many client threads per process, and sharing a
    connection would serialize them on the socket.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        connect_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self._token = token
        self._connect_timeout = connect_timeout
        self._local = threading.local()

    # -- connection management -----------------------------------------

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
            conn.connect()
            # Request bodies are sent as a separate write after the
            # headers; Nagle would stall that packet behind the
            # server's delayed ACK.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.conn = conn
        else:
            # Socket timeout must cover this call's cluster timeout.
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's connection (others close on GC)."""
        self._drop_connection()

    # -- HTTP round trips ----------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self._token is not None:
            headers[AUTH_HEADER] = self._token
        return headers

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes], timeout: float
    ) -> tuple:
        """One request/response, reconnecting once on a dead socket."""
        last_error: Optional[Exception] = None
        for fresh in (False, True):
            if fresh:
                self._drop_connection()
            try:
                conn = self._connection(timeout)
                conn.request(method, path, body=body, headers=self._headers())
                response = conn.getresponse()
                data = response.read()
                return response.status, response.headers, data
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                last_error = error
                self._drop_connection()
        raise NetworkError(
            f"{method} {path} to {self.host}:{self.port} failed: "
            f"{last_error}"
        )

    @staticmethod
    def _json_body(data: bytes) -> Dict[str, Any]:
        try:
            frame = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise NetworkError(
                f"server returned a non-JSON body: {error}"
            ) from None
        if not isinstance(frame, dict):
            raise NetworkError("server returned a non-object JSON body")
        return frame

    # -- the cluster-shaped surface ------------------------------------

    def submit(self, request: Request, timeout: float = 10.0) -> Response:
        """POST one request; decode the reply into in-process shapes."""
        frame = encode_request(request)
        frame["timeout_seconds"] = timeout
        body = json.dumps(frame).encode("utf-8")
        # Socket timeout needs headroom over the cluster-side deadline:
        # a request shed exactly at ``timeout`` still has to travel back.
        status, headers, data = self._round_trip(
            "POST", "/v1/request", body, timeout + self._connect_timeout
        )
        reply = self._json_body(data)
        if status == 429:
            retry_after = _retry_after_of(reply, headers)
            if reply.get("overloaded"):
                raise ClusterOverloadedError(
                    depth=int(reply.get("depth", 0)),
                    capacity=max(int(reply.get("capacity", 1)), 1),
                    retry_after=retry_after,
                )
            raise RateLimitedError(
                retry_after=retry_after,
                message=str(reply.get("error", "rate limited")),
            )
        if status == 503 and reply.get("stopped"):
            raise ClusterStoppedError(str(reply.get("error", "stopped")))
        if status == 504:
            raise TimeoutError(str(reply.get("error", "request timed out")))
        if "ok" in reply:
            return decode_response(reply)
        # Edge rejections without a response frame (401, 400, 404...).
        return Response(
            ok=False,
            error=str(reply.get("error", f"HTTP {status}")),
            retryable=bool(reply.get("retryable", False)),
        )

    # -- operational endpoints -----------------------------------------

    def _get_json(self, path: str) -> tuple:
        status, _headers, data = self._round_trip(
            "GET", path, None, self._connect_timeout
        )
        return status, self._json_body(data)

    def healthz(self) -> bool:
        status, _body = self._get_json("/healthz")
        return status == 200

    def readyz(self) -> tuple:
        """(ready, detail) from the readiness endpoint."""
        status, body = self._get_json("/readyz")
        return status == 200, body

    def stats(self, traces: bool = False) -> Dict[str, Any]:
        path = "/v1/stats" + ("?traces=1" if traces else "")
        status, body = self._get_json(path)
        if status != 200:
            raise NetworkError(f"stats endpoint returned HTTP {status}")
        return body

    def digest(self) -> Dict[str, Any]:
        status, body = self._get_json("/v1/digest")
        if status != 200:
            raise NetworkError(f"digest endpoint returned HTTP {status}")
        return body


class HttpClusterClient(ClusterClient):
    """ClusterClient over a socket: same retries, stats and backoff.

    ``sleep`` stays injectable — the regression tests inject a
    recording no-op and assert the wire-delivered ``retry_after``
    flows through the schedule unchanged.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        attempts: int = 4,
        backoff: float = 0.02,
        timeout: float = 10.0,
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ):
        transport = HttpTransport(host, port, token=token)
        super().__init__(
            transport,  # type: ignore[arg-type] (duck-typed cluster)
            attempts=attempts,
            backoff=backoff,
            timeout=timeout,
            sleep=sleep,
        )
        self.transport = transport

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "HttpClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _retry_after_of(reply: Dict[str, Any], headers) -> float:
    """Precise backoff: JSON float first, integer header as fallback."""
    value = reply.get("retry_after")
    if isinstance(value, (int, float)) and value >= 0:
        return float(value)
    header = headers.get("Retry-After") if headers is not None else None
    try:
        return float(header) if header is not None else 0.0
    except ValueError:
        return 0.0


__all__ = ["HttpClusterClient", "HttpTransport"]
