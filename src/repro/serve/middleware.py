"""Edge middleware: request ids, auth tokens, per-client rate limits.

The HTTP layer runs every ``/v1/*`` request through a small pipeline
*before* the cluster sees it, mirroring the service-plane shape of
real verifiable-database front ends: identify the request (request
id), identify the caller (auth token), then decide whether this caller
may spend cluster capacity right now (rate limit).  Each stage either
passes or answers with an :class:`EdgeRejection` — a status code plus
a retryable/``Retry-After`` hint — so *nothing* unauthorized or
over-budget ever touches the message queue.

The pipeline is plain callables over a :class:`RequestContext`; no
sockets involved, so the whole stack is unit-testable without binding
a port.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.serve.ratelimit import RateLimiter

#: Header carrying (or receiving) the request id.
REQUEST_ID_HEADER = "x-request-id"
#: Header carrying the client's auth token.
AUTH_HEADER = "x-spitz-token"


@dataclass
class RequestContext:
    """Everything the edge knows about one in-flight HTTP request."""

    method: str
    path: str
    #: Lower-cased header name → value.
    headers: Dict[str, str] = field(default_factory=dict)
    remote_addr: str = ""
    #: Assigned by :class:`RequestIdMiddleware` (client-supplied id is
    #: honored so retries correlate across attempts).
    request_id: str = ""
    #: Resolved caller identity: the auth token when one was presented,
    #: else the remote address.  Rate-limit bucket key.
    client_id: str = ""

    def header(self, name: str) -> Optional[str]:
        return self.headers.get(name.lower())


@dataclass(frozen=True)
class EdgeRejection:
    """A middleware verdict: answer ``status`` without touching the
    cluster.  ``retry_after`` (seconds) becomes the ``Retry-After``
    header; ``retryable`` tells a :class:`ClusterClient`-shaped caller
    the request is safe to resubmit."""

    status: int
    error: str
    retryable: bool = False
    retry_after: Optional[float] = None


Middleware = Callable[[RequestContext], Optional[EdgeRejection]]


class RequestIdMiddleware:
    """Stamp every request with a unique id (honoring a supplied one).

    Ids are ``<prefix>-<n>`` with a per-server random prefix — unique
    across restarts without a clock, cheap, and readable in traces.
    """

    def __init__(self, prefix: Optional[str] = None):
        self._prefix = prefix if prefix else os.urandom(4).hex()
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def __call__(self, context: RequestContext) -> Optional[EdgeRejection]:
        supplied = context.header(REQUEST_ID_HEADER)
        if supplied:
            context.request_id = supplied[:128]
        else:
            with self._lock:
                context.request_id = f"{self._prefix}-{next(self._counter)}"
        return None


class AuthMiddleware:
    """Bearer-token check against a static token set.

    With no tokens configured the server is open (every caller is
    identified by remote address).  With tokens, a request lacking a
    known ``X-Spitz-Token`` is rejected 401 — *not* retryable: the
    same request will keep failing.
    """

    def __init__(
        self,
        tokens: Optional[List[str]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._tokens = frozenset(tokens) if tokens else frozenset()
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_unauthorized = metrics.counter("serve.unauthorized")

    @property
    def enabled(self) -> bool:
        return bool(self._tokens)

    def __call__(self, context: RequestContext) -> Optional[EdgeRejection]:
        token = context.header(AUTH_HEADER)
        if not self._tokens:
            context.client_id = token or context.remote_addr or "anonymous"
            return None
        if token in self._tokens:
            context.client_id = token
            return None
        self._c_unauthorized.inc()
        return EdgeRejection(
            status=401,
            error="missing or unknown auth token",
        )


class RateLimitMiddleware:
    """Charge the caller's token bucket; 429 + ``Retry-After`` when dry.

    Runs *after* auth so the bucket key is the authenticated identity,
    and the rejection is retryable — the deficit refills at a known
    rate, and ``retry_after`` says exactly when.
    """

    def __init__(self, limiter: RateLimiter):
        self._limiter = limiter

    def __call__(self, context: RequestContext) -> Optional[EdgeRejection]:
        client = context.client_id or context.remote_addr or "anonymous"
        admitted, retry_after = self._limiter.try_acquire(client)
        if admitted:
            return None
        return EdgeRejection(
            status=429,
            error=(
                f"client {client!r} over its request rate; "
                f"retry in ~{retry_after:.3f}s"
            ),
            retryable=True,
            retry_after=retry_after,
        )


def prefers_plain_text(accept: Optional[str]) -> bool:
    """Content negotiation for ``/v1/stats``: does this ``Accept``
    header ask for the Prometheus text format over JSON?

    Minimal q-value handling over comma-separated media ranges:
    ``text/plain`` (and ``text/*``) competes with ``application/json``
    (and ``application/*``/``*/*``, which keep the JSON default).
    Plain text wins only on a strictly higher q — ties keep JSON, so
    browsers (``*/*``) and existing clients are unaffected.
    """
    if not accept:
        return False
    q_text = 0.0
    q_json = 0.0
    for part in accept.split(","):
        fields = part.strip().split(";")
        media = fields[0].strip().lower()
        q = 1.0
        for param in fields[1:]:
            name, _, value = param.strip().partition("=")
            if name.strip() == "q":
                try:
                    q = float(value)
                except ValueError:
                    q = 0.0
        if media in ("text/plain", "text/*"):
            q_text = max(q_text, q)
        elif media in ("application/json", "application/*", "*/*"):
            q_json = max(q_json, q)
    return q_text > q_json


class MiddlewareStack:
    """Run middlewares in order; first rejection wins."""

    def __init__(self, middlewares: List[Middleware]):
        self._middlewares = list(middlewares)

    def run(self, context: RequestContext) -> Optional[EdgeRejection]:
        for middleware in self._middlewares:
            rejection = middleware(context)
            if rejection is not None:
                return rejection
        return None


__all__ = [
    "AUTH_HEADER",
    "AuthMiddleware",
    "EdgeRejection",
    "Middleware",
    "MiddlewareStack",
    "RateLimitMiddleware",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "RequestIdMiddleware",
    "prefers_plain_text",
]
