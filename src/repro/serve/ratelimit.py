"""Per-client token-bucket rate limiting for the service plane.

The queue's admission control (DESIGN.md §6c) protects the *cluster*
from aggregate overload; the rate limiter protects it from *one*
client, before the request ever reaches the queue.  Each client
identity (auth token, or remote address for anonymous callers) gets a
token bucket: ``burst`` tokens deep, refilled at ``rate`` tokens per
second.  A request that finds the bucket empty is rejected at the
socket edge with a ``Retry-After`` telling the client exactly when a
token will exist again.

Determinism: the clock is injectable (``clock=``), so tests drive
refill explicitly instead of sleeping, and the concurrency property —
N threads hammering one bucket can never over-admit past
``burst + elapsed * rate`` tokens — is checkable exactly.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second.

    ``try_acquire`` is the only operation; it refills lazily from the
    injected clock under the bucket's lock, so concurrent callers can
    never both spend the last token.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Spend ``tokens`` if available.

        Returns ``(True, 0.0)`` on admission, else ``(False,
        retry_after)`` where ``retry_after`` is the seconds until the
        deficit refills — the value the server forwards verbatim as
        the 429's ``Retry-After``.
        """
        now = self._clock()
        with self._lock:
            elapsed = now - self._updated
            if elapsed > 0:
                self._tokens = min(
                    self.burst, self._tokens + elapsed * self.rate
                )
                self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0
            return False, (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current balance (refill applies lazily on the next acquire)."""
        with self._lock:
            return self._tokens


class RateLimiter:
    """Per-client buckets behind one registry, bounded in client count.

    Buckets are created on first sight of a client id and evicted
    least-recently-used once ``max_clients`` distinct ids are tracked
    — an eviction forgets a stale client's spent tokens, which only
    ever errs toward admitting, never toward starving an active one.
    A ``rate`` of ``None`` disables limiting entirely (every acquire
    admits), so the server can be configured open.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be positive")
        self.rate = rate
        self.burst = float(burst) if burst is not None else (
            max(1.0, rate) if rate is not None else 1.0
        )
        self._max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_admitted = metrics.counter("serve.ratelimit.admitted")
        self._c_limited = metrics.counter("serve.ratelimit.limited")
        self._g_clients = metrics.gauge("serve.ratelimit.clients")

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def _bucket_for(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is not None:
                self._buckets.move_to_end(client)
                return bucket
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
            self._g_clients.set(len(self._buckets))
            return bucket

    def try_acquire(self, client: str) -> Tuple[bool, float]:
        """Admit one request for ``client`` (see TokenBucket)."""
        if self.rate is None:
            self._c_admitted.inc()
            return True, 0.0
        admitted, retry_after = self._bucket_for(client).try_acquire()
        if admitted:
            self._c_admitted.inc()
        else:
            self._c_limited.inc()
        return admitted, retry_after

    def client_count(self) -> int:
        with self._lock:
            return len(self._buckets)


__all__ = ["RateLimiter", "TokenBucket"]
