"""The network service plane: a real front end over the cluster.

The paper pitches Spitz as a *cloud database service* whose clients
verify proofs remotely; everything below this package is still
in-process threads around the global message queue.  ``repro.serve``
puts a socket in front of it:

- :mod:`repro.serve.codec` — the JSON wire format shared by the HTTP
  server, the HTTP client, and the CLI's ``--json`` outputs (bytes,
  digests and proofs are base64-framed; decoding a served proof yields
  the same object the in-process path produces, so client-side
  verification works unchanged over the wire);
- :mod:`repro.serve.ratelimit` — per-client token buckets with an
  injectable clock;
- :mod:`repro.serve.middleware` — the request-id / auth-token /
  rate-limit pipeline every HTTP request passes through before it may
  touch the cluster;
- :mod:`repro.serve.server` — a threaded stdlib HTTP/1.1 server over
  :class:`~repro.core.node.SpitzCluster`: one endpoint per concern
  (``/healthz``, ``/readyz``, ``/v1/stats``, ``/v1/digest``,
  ``POST /v1/request``), with admission-control rejections and
  deadline sheds mapped to 429/503 + ``Retry-After`` *at the socket
  edge*;
- :mod:`repro.serve.client` — an HTTP transport plugged into the
  existing :class:`~repro.core.client.ClusterClient` retry loop, so
  in-process and over-the-wire callers back off identically;
- :mod:`repro.serve.loadgen` — a multi-process load generator that
  drives the server from *separate processes* and reports sustained
  RPS, p50/p99 latency and the rejected/shed split.
"""

from repro.serve.client import HttpClusterClient, HttpTransport
from repro.serve.codec import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    to_jsonable,
)
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.middleware import AuthMiddleware, RequestContext
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.server import ServerConfig, SpitzHTTPServer, serve_cluster

__all__ = [
    "AuthMiddleware",
    "HttpClusterClient",
    "HttpTransport",
    "LoadReport",
    "RateLimiter",
    "RequestContext",
    "ServerConfig",
    "SpitzHTTPServer",
    "TokenBucket",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "run_load",
    "serve_cluster",
    "to_jsonable",
]
