"""Cryptographic primitives: canonical hashing and Merkle trees.

Everything authenticated in the library reduces to the helpers in this
package: :mod:`repro.crypto.hashing` provides a canonical encoding and a
:class:`~repro.crypto.hashing.Digest` type, and
:mod:`repro.crypto.merkle` provides a classic binary Merkle tree with
inclusion proofs plus an append-only hash chain.
"""

from repro.crypto.hashing import (
    Digest,
    EMPTY_DIGEST,
    canonical_encode,
    hash_bytes,
    hash_many,
    hash_value,
)
from repro.crypto.merkle import HashChain, MerkleProof, MerkleTree

__all__ = [
    "Digest",
    "EMPTY_DIGEST",
    "canonical_encode",
    "hash_bytes",
    "hash_many",
    "hash_value",
    "HashChain",
    "MerkleProof",
    "MerkleTree",
]
