"""Classic binary Merkle tree, inclusion proofs, and an append-only
hash chain.

The baseline system (Section 6.1 of the paper) builds "a ledger
implemented by a Merkle tree" over journal blocks; Spitz chains ledger
blocks with a hash chain and authenticates the whole ledger with the
same Merkle construction.  Both live here.

Domain separation: leaf hashes are prefixed with ``0x00`` and interior
hashes with ``0x01`` so a leaf can never be confused with an interior
node (the classic second-preimage defence).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import Digest, EMPTY_DIGEST
from repro.errors import ProofError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(data: bytes) -> Digest:
    return Digest(hashlib.sha256(_LEAF_PREFIX + data).digest())


def _node_hash(left: bytes, right: bytes) -> Digest:
    return Digest(hashlib.sha256(_NODE_PREFIX + left + right).digest())


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index and the sibling path.

    ``path`` lists ``(sibling_digest, sibling_is_left)`` pairs from the
    leaf up to (but excluding) the root.
    """

    leaf_index: int
    tree_size: int
    path: Tuple[Tuple[Digest, bool], ...]

    def root_from(self, leaf_data: bytes) -> Digest:
        """Recompute the root digest implied by this proof and a leaf."""
        node = _leaf_hash(leaf_data)
        for sibling, sibling_is_left in self.path:
            if sibling_is_left:
                node = _node_hash(sibling, node)
            else:
                node = _node_hash(node, sibling)
        return node

    def verify(self, leaf_data: bytes, root: Digest) -> bool:
        """True iff ``leaf_data`` is proven to be under ``root``."""
        return self.root_from(leaf_data) == root

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the proof (for cost accounting)."""
        return 8 + 8 + len(self.path) * 33


class MerkleTree:
    """A binary Merkle tree over an append-only sequence of leaves.

    The tree is maintained level-by-level; appends are amortized
    O(log n) and proofs are O(log n).  Odd nodes are *promoted* (not
    duplicated) to the next level, matching RFC 6962 and avoiding the
    duplicate-leaf attack of naive constructions.
    """

    def __init__(self, leaves: Optional[Sequence[bytes]] = None):
        self._leaf_data: List[bytes] = []
        # _levels[0] = leaf hashes; _levels[k] = level-k interior hashes.
        self._levels: List[List[Digest]] = [[]]
        if leaves:
            for leaf in leaves:
                self.append(leaf)

    def __len__(self) -> int:
        return len(self._leaf_data)

    def append(self, leaf_data: bytes) -> int:
        """Append a leaf; return its index.

        Only the right spine of the tree can change on an append, so
        the update is O(log n): recompute the parent of the last one or
        two nodes at each level.
        """
        index = len(self._leaf_data)
        self._leaf_data.append(leaf_data)
        self._levels[0].append(_leaf_hash(leaf_data))
        self._update_spine()
        return index

    def _update_spine(self) -> None:
        level_index = 0
        position = len(self._levels[0]) - 1
        while len(self._levels[level_index]) > 1:
            if level_index + 1 == len(self._levels):
                self._levels.append([])
            level = self._levels[level_index]
            parent_level = self._levels[level_index + 1]
            parent_pos = position // 2
            left = level[2 * parent_pos]
            if 2 * parent_pos + 1 < len(level):
                parent = _node_hash(left, level[2 * parent_pos + 1])
            else:
                parent = left  # odd node promoted
            if parent_pos < len(parent_level):
                parent_level[parent_pos] = parent
            else:
                parent_level.append(parent)
            level_index += 1
            position = parent_pos

    def extend(self, leaves: Sequence[bytes]) -> None:
        """Append many leaves (single upper-level rebuild)."""
        for leaf in leaves:
            self._leaf_data.append(leaf)
            self._levels[0].append(_leaf_hash(leaf))
        self._rebuild_upper_levels()

    def _rebuild_upper_levels(self) -> None:
        # Rebuild interior levels from the leaf level.  Incremental
        # maintenance is possible but a full rebuild of *upper* levels
        # only is O(n) per call and O(n log n) total over a bulk load,
        # which is fine for this library's block-batched usage.
        level = self._levels[0]
        self._levels = [level]
        while len(level) > 1:
            nxt: List[Digest] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])  # promote the odd node
            self._levels.append(nxt)
            level = nxt

    @property
    def root(self) -> Digest:
        """Digest of the root (``EMPTY_DIGEST`` for an empty tree)."""
        if not self._leaf_data:
            return EMPTY_DIGEST
        return self._levels[-1][0]

    def leaf(self, index: int) -> bytes:
        """Raw data of leaf ``index``."""
        return self._leaf_data[index]

    def prove(self, index: int) -> MerkleProof:
        """Build an inclusion proof for leaf ``index``."""
        if not 0 <= index < len(self._leaf_data):
            raise ProofError(
                f"leaf index {index} out of range 0..{len(self._leaf_data) - 1}"
            )
        path: List[Tuple[Digest, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling < position))
                position //= 2
            else:
                # Odd node promoted unchanged: position carries over.
                position //= 2
        return MerkleProof(
            leaf_index=index,
            tree_size=len(self._leaf_data),
            path=tuple(path),
        )


@dataclass(frozen=True)
class ChainEntry:
    """One link of a hash chain: payload digest plus cumulative digest."""

    index: int
    payload_digest: Digest
    chain_digest: Digest


class HashChain:
    """An append-only hash chain (blockchain-style block linkage).

    ``chain_digest[i] = H(chain_digest[i-1] || payload_digest[i])`` with
    ``chain_digest[-1] = EMPTY_DIGEST``.  Verifying a prefix of the
    chain against a trusted head digest detects any historical
    rewrite.
    """

    def __init__(self) -> None:
        self._entries: List[ChainEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head(self) -> Digest:
        """Digest of the latest link (``EMPTY_DIGEST`` when empty)."""
        if not self._entries:
            return EMPTY_DIGEST
        return self._entries[-1].chain_digest

    def append(self, payload_digest: Digest) -> ChainEntry:
        """Link a new payload digest onto the chain."""
        entry = ChainEntry(
            index=len(self._entries),
            payload_digest=payload_digest,
            chain_digest=_node_hash(self.head, payload_digest),
        )
        self._entries.append(entry)
        return entry

    def entry(self, index: int) -> ChainEntry:
        return self._entries[index]

    def verify_prefix(self, payload_digests: Sequence[Digest]) -> bool:
        """Recompute the chain over ``payload_digests`` and compare.

        Returns True iff the provided payload digests reproduce this
        chain's stored links exactly (same order, same values).
        """
        if len(payload_digests) > len(self._entries):
            return False
        running = EMPTY_DIGEST
        for i, payload in enumerate(payload_digests):
            running = _node_hash(running, payload)
            if running != self._entries[i].chain_digest:
                return False
        return True
