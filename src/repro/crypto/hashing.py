"""Canonical encoding and SHA-256 digests.

All authenticated structures in the library (Merkle trees, the SIRI
index family, ledger blocks) hash *canonically encoded* values so that
logically equal values always produce identical digests.  The encoding
is a small, self-delimiting tagged format — deliberately simpler than a
full serialization framework, but unambiguous: no two distinct values
share an encoding.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

#: Values the canonical encoder accepts.
Encodable = Union[
    None, bool, int, float, str, bytes, tuple, list, dict, frozenset
]


class Digest(bytes):
    """A 32-byte SHA-256 digest.

    Subclassing :class:`bytes` keeps digests hashable, comparable and
    directly usable as dict keys while giving them a distinct type for
    readability and a short hex ``repr``.
    """

    __slots__ = ()

    def __new__(cls, data: bytes) -> "Digest":
        if len(data) != 32:
            raise ValueError(f"digest must be 32 bytes, got {len(data)}")
        return super().__new__(cls, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Digest({self.hex()[:12]}..)"

    @property
    def short(self) -> str:
        """First 12 hex characters, for logs and error messages."""
        return self.hex()[:12]

    @classmethod
    def from_hex(cls, text: str) -> "Digest":
        """Parse a 64-character hex string into a digest."""
        return cls(bytes.fromhex(text))


def hash_bytes(data: bytes) -> Digest:
    """SHA-256 of raw bytes."""
    return Digest(hashlib.sha256(data).digest())


#: Digest of the empty byte string; used as the root of empty trees.
EMPTY_DIGEST = hash_bytes(b"")


def canonical_encode(value: Encodable) -> bytes:
    """Encode ``value`` into unambiguous, self-delimiting bytes.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes`` (and subclasses such as :class:`Digest`), ``tuple``,
    ``list``, ``dict`` (keys sorted by their own encoding) and
    ``frozenset`` (elements sorted by encoding).  Raises
    :class:`TypeError` for anything else.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Encodable, out: bytearray) -> None:
    # Each case writes a 1-byte tag, then a length-prefixed payload.
    # bool must be checked before int (bool is an int subclass).
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        payload = str(value).encode("ascii")
        out += b"I"
        out += len(payload).to_bytes(4, "big")
        out += payload
    elif isinstance(value, float):
        # repr round-trips floats exactly in Python 3.
        payload = repr(value).encode("ascii")
        out += b"D"
        out += len(payload).to_bytes(4, "big")
        out += payload
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += b"S"
        out += len(payload).to_bytes(4, "big")
        out += payload
    elif isinstance(value, bytes):
        out += b"B"
        out += len(value).to_bytes(4, "big")
        out += value
    elif isinstance(value, (tuple, list)):
        out += b"L"
        out += len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        encoded = sorted(
            (canonical_encode(k), canonical_encode(v))
            for k, v in value.items()
        )
        out += b"M"
        out += len(encoded).to_bytes(4, "big")
        for key_bytes, value_bytes in encoded:
            out += len(key_bytes).to_bytes(4, "big")
            out += key_bytes
            out += len(value_bytes).to_bytes(4, "big")
            out += value_bytes
    elif isinstance(value, frozenset):
        encoded_items = sorted(canonical_encode(item) for item in value)
        out += b"X"
        out += len(encoded_items).to_bytes(4, "big")
        for item_bytes in encoded_items:
            out += len(item_bytes).to_bytes(4, "big")
            out += item_bytes
    else:
        raise TypeError(
            f"cannot canonically encode value of type {type(value).__name__}"
        )


def hash_value(value: Encodable) -> Digest:
    """SHA-256 of the canonical encoding of ``value``."""
    return hash_bytes(canonical_encode(value))


def hash_many(parts: Iterable[bytes]) -> Digest:
    """SHA-256 over length-prefixed concatenation of ``parts``.

    Length prefixes prevent ambiguity between e.g. ``[b"ab", b"c"]`` and
    ``[b"a", b"bc"]``.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return Digest(hasher.digest())
