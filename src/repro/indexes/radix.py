"""Radix tree (compressed byte trie).

Spitz's inverted index "uses a radix tree to reduce space consumption"
for string cell values (Section 5, *Inverted Index*).  Edges are
labeled with byte strings; common prefixes are stored once, which is
the space saving the paper refers to.  Supports exact lookup, prefix
scans and lexicographic iteration.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import KeyNotFoundError


class _RadixNode:
    __slots__ = ("edges", "value", "has_value")

    def __init__(self) -> None:
        # first byte -> (label, child)
        self.edges: Dict[int, Tuple[bytes, "_RadixNode"]] = {}
        self.value: Any = None
        self.has_value = False


def _common_prefix_length(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class RadixTree:
    """A mutable compressed trie mapping byte keys to values."""

    def __init__(self) -> None:
        self._root = _RadixNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        node = self._lookup_node(key)
        return node is not None and node.has_value

    def _lookup_node(self, key: bytes) -> Optional[_RadixNode]:
        node = self._root
        while key:
            edge = node.edges.get(key[0])
            if edge is None:
                return None
            label, child = edge
            if not key.startswith(label):
                return None
            key = key[len(label):]
            node = child
        return node

    def get(self, key: bytes) -> Any:
        node = self._lookup_node(key)
        if node is None or not node.has_value:
            raise KeyNotFoundError(key)
        return node.value

    def get_optional(self, key: bytes, default: Any = None) -> Any:
        node = self._lookup_node(key)
        if node is None or not node.has_value:
            return default
        return node.value

    def insert(self, key: bytes, value: Any) -> None:
        """Insert or overwrite ``key``."""
        node = self._root
        rest = key
        while True:
            if not rest:
                if not node.has_value:
                    self._size += 1
                node.value = value
                node.has_value = True
                return
            edge = node.edges.get(rest[0])
            if edge is None:
                leaf = _RadixNode()
                leaf.value = value
                leaf.has_value = True
                node.edges[rest[0]] = (rest, leaf)
                self._size += 1
                return
            label, child = edge
            shared = _common_prefix_length(label, rest)
            if shared == len(label):
                node = child
                rest = rest[shared:]
                continue
            # Split the edge at the divergence point.
            middle = _RadixNode()
            middle.edges[label[shared]] = (label[shared:], child)
            node.edges[rest[0]] = (label[:shared], middle)
            node = middle
            rest = rest[shared:]

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` if absent.

        Collapses pass-through nodes so the structure stays compressed.
        """
        if not self._delete_from(self._root, key):
            raise KeyNotFoundError(key)
        self._size -= 1

    def _delete_from(self, node: _RadixNode, rest: bytes) -> bool:
        if not rest:
            if not node.has_value:
                return False
            node.has_value = False
            node.value = None
            return True
        edge = node.edges.get(rest[0])
        if edge is None:
            return False
        label, child = edge
        if not rest.startswith(label):
            return False
        if not self._delete_from(child, rest[len(label):]):
            return False
        # Clean up: drop empty children, merge pass-through chains.
        if not child.has_value and not child.edges:
            del node.edges[rest[0]]
        elif not child.has_value and len(child.edges) == 1:
            (inner_label, inner_child) = next(iter(child.edges.values()))
            node.edges[rest[0]] = (label + inner_label, inner_child)
        return True

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """All entries in lexicographic key order."""
        yield from self._iter_node(self._root, b"")

    def _iter_node(
        self, node: _RadixNode, prefix: bytes
    ) -> Iterator[Tuple[bytes, Any]]:
        if node.has_value:
            yield prefix, node.value
        for first in sorted(node.edges):
            label, child = node.edges[first]
            yield from self._iter_node(child, prefix + label)

    def prefix_items(self, prefix: bytes) -> Iterator[Tuple[bytes, Any]]:
        """All entries whose key starts with ``prefix``."""
        node = self._root
        consumed = b""
        rest = prefix
        while rest:
            edge = node.edges.get(rest[0])
            if edge is None:
                return
            label, child = edge
            shared = _common_prefix_length(label, rest)
            if shared == len(rest):
                # Prefix ends inside (or exactly at) this edge.
                yield from self._iter_node(child, consumed + label)
                return
            if shared < len(label):
                return
            consumed += label
            rest = rest[shared:]
            node = child
        yield from self._iter_node(node, consumed)
