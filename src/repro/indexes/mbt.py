"""Merkle Bucket Tree (MBT).

The SIRI member used by Hyperledger Fabric's state database (paper
Section 3.1, ref [5]).  Keys hash into a *fixed* number of buckets;
each bucket holds its entries sorted by key; a perfect binary Merkle
tree over the bucket digests yields the root.  Shape is fixed by the
bucket count, so the root digest depends only on content — structural
invariance for free — but unlike the POS-tree the proof path length is
fixed (``log2(buckets)``) and per-bucket entry lists grow with n,
which is the trade-off [59] analyzes.

Node layout: bucket ``("K", ((key, value), ...))``, interior
``("I", left_digest_bytes, right_digest_bytes)``.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Mapping, Optional, Tuple

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import ProofError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.siri import (
    DELETE,
    SiriIndex,
    SiriProof,
    decode_node,
    encode_node,
)

DEFAULT_BUCKETS = 256


def _bucket_of(key: bytes, buckets: int) -> int:
    return int.from_bytes(hash_bytes(key)[:4], "big") % buckets


class MerkleBucketTree(SiriIndex):
    """An immutable MBT instance.

    ``buckets`` must be a power of two.  The instance keeps the full
    interior level structure in memory (small: ``2 * buckets`` refs);
    updates path-copy one bucket and ``log2(buckets)`` interior nodes.
    """

    def __init__(
        self,
        store: ChunkStore,
        levels: List[List[Digest]],
        buckets: int,
    ):
        self.store = store
        self.buckets = buckets
        # levels[0] = bucket digests (len == buckets);
        # levels[-1] = [root digest].
        self._levels = levels

    @classmethod
    def empty(
        cls, store: ChunkStore, buckets: int = DEFAULT_BUCKETS
    ) -> "MerkleBucketTree":
        if buckets & (buckets - 1) or buckets <= 0:
            raise ValueError("bucket count must be a power of two")
        empty_bucket = store.put(encode_node(("K", ())))
        level: List[Digest] = [empty_bucket] * buckets
        levels = [level]
        while len(levels[-1]) > 1:
            levels.append(cls._pair_level(store, levels[-1]))
        return cls(store, levels, buckets)

    @classmethod
    def from_items(
        cls, store: ChunkStore, items, buckets: int = DEFAULT_BUCKETS
    ) -> "MerkleBucketTree":
        return cls.empty(store, buckets).apply(dict(items))

    @staticmethod
    def _pair_level(store: ChunkStore, level: List[Digest]) -> List[Digest]:
        return [
            store.put(
                encode_node(
                    ("I", bytes(level[i]), bytes(level[i + 1]))
                )
            )
            for i in range(0, len(level), 2)
        ]

    @property
    def root(self) -> Digest:
        return self._levels[-1][0]

    # -- reads -------------------------------------------------------------

    def _bucket_entries(self, index: int) -> List[Tuple[bytes, bytes]]:
        node = decode_node(self.store.get(self._levels[0][index]))
        return list(node[1])

    def get(self, key: bytes) -> Optional[bytes]:
        entries = self._bucket_entries(_bucket_of(key, self.buckets))
        keys = [entry[0] for entry in entries]
        position = bisect.bisect_left(keys, key)
        if position < len(entries) and entries[position][0] == key:
            return entries[position][1]
        return None

    def get_with_proof(self, key: bytes) -> Tuple[Optional[bytes], SiriProof]:
        """Lookup plus the interior path from root to the bucket."""
        bucket = _bucket_of(key, self.buckets)
        nodes: List[bytes] = []
        # Walk root-down choosing by the bucket index bits, collecting
        # interior node bytes, ending with the bucket node itself.
        depth = len(self._levels) - 1
        for level_index in range(depth, 0, -1):
            position = bucket >> level_index
            nodes.append(self.store.get(self._levels[level_index][position]))
        nodes.append(self.store.get(self._levels[0][bucket]))
        value = self.get(key)
        return value, SiriProof(key=key, value=value, nodes=tuple(nodes))

    @classmethod
    def verify_proof(
        cls, proof: SiriProof, root: Digest, buckets: int = DEFAULT_BUCKETS
    ) -> bool:
        """Replay the bucket-bit walk, recomputing digests top-down."""
        try:
            bucket = _bucket_of(proof.key, buckets)
            depth = buckets.bit_length() - 1
            expected = root
            nodes = list(proof.nodes)
            if len(nodes) != depth + 1:
                return False
            for step in range(depth):
                raw = nodes[step]
                if hash_bytes(raw) != expected:
                    return False
                node = decode_node(raw)
                if node[0] != "I":
                    return False
                bit = (bucket >> (depth - 1 - step)) & 1
                expected = Digest(node[2] if bit else node[1])
            raw = nodes[-1]
            if hash_bytes(raw) != expected:
                return False
            node = decode_node(raw)
            if node[0] != "K":
                return False
            found: Optional[bytes] = None
            for entry_key, entry_value in node[1]:
                if entry_key == proof.key:
                    found = entry_value
                    break
            return found == proof.value
        except (ProofError, ValueError, KeyError, TypeError):
            return False

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        everything: List[Tuple[bytes, bytes]] = []
        for index in range(self.buckets):
            everything.extend(self._bucket_entries(index))
        everything.sort()
        return iter(everything)

    # -- updates -----------------------------------------------------------

    def apply(self, updates: Mapping[bytes, object]) -> "MerkleBucketTree":
        if not updates:
            return self
        by_bucket: dict = {}
        for key, value in updates.items():
            by_bucket.setdefault(
                _bucket_of(key, self.buckets), {}
            )[key] = value

        new_levels = [list(level) for level in self._levels]
        for bucket, bucket_updates in by_bucket.items():
            entries = dict(self._bucket_entries(bucket))
            for key, value in bucket_updates.items():
                if value is DELETE:
                    entries.pop(key, None)
                else:
                    entries[key] = value
            node = ("K", tuple(sorted(entries.items())))
            new_levels[0][bucket] = self.store.put(encode_node(node))
            # Recompute the interior path for this bucket.
            position = bucket
            for level_index in range(1, len(new_levels)):
                position //= 2
                left = new_levels[level_index - 1][2 * position]
                right = new_levels[level_index - 1][2 * position + 1]
                new_levels[level_index][position] = self.store.put(
                    encode_node(("I", bytes(left), bytes(right)))
                )
        return MerkleBucketTree(self.store, new_levels, self.buckets)
