"""Index structures: the SIRI family and access-path indexes.

SIRI (Structurally Invariant and Reusable Indexes) members — the
POS-Tree, the Merkle Patricia Trie, and the Merkle Bucket Tree — are
authenticated indexes whose shape depends only on their *content*, so
two instances holding the same entries have the same root digest and
share nodes in the chunk store.  Spitz's ledger stores one SIRI
instance per block (Section 6.1 of the paper).

The access-path indexes — B+-tree, skip list, radix tree, and the
inverted index built from the latter two — serve query processing
(Section 5: Index / Inverted Index).
"""

from repro.indexes.bplus import BPlusTree
from repro.indexes.inverted import InvertedIndex
from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.pos_tree import PosTree
from repro.indexes.radix import RadixTree
from repro.indexes.siri import SiriIndex, SiriProof, verify_siri_proof
from repro.indexes.skiplist import SkipList

__all__ = [
    "BPlusTree",
    "InvertedIndex",
    "MerkleBucketTree",
    "MerklePatriciaTrie",
    "PosTree",
    "RadixTree",
    "SiriIndex",
    "SiriProof",
    "SkipList",
    "verify_siri_proof",
]
