"""Skip list.

Spitz's inverted index "uses a skip list to better support range query"
for numeric cell values (Section 5, *Inverted Index*).  This is a
textbook skip list with a deterministic per-instance PRNG so test runs
are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFoundError

_MAX_LEVEL = 24
_P = 0.25


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_SkipNode"]] = [None] * level


class SkipList:
    """An ordered map with O(log n) expected search/insert/delete."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        node = self._find(key)
        return node is not None

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find(self, key: Any) -> Optional[_SkipNode]:
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < key
            ):
                node = node.forward[level]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node
        return None

    def get(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyNotFoundError(key)
        return node.value

    def get_optional(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        update: List[_SkipNode] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < key
            ):
                node = node.forward[level]
            update[level] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        new_level = self._random_level()
        if new_level > self._level:
            self._level = new_level
        new_node = _SkipNode(key, value, new_level)
        for level in range(new_level):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._size += 1

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` if absent."""
        update: List[_SkipNode] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < key
            ):
                node = node.forward[level]
            update[level] = node
        target = node.forward[0]
        if target is None or target.key != key:
            raise KeyNotFoundError(key)
        for level in range(len(target.forward)):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1

    def range(
        self, low: Any, high: Any, inclusive: bool = True
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield entries with ``low <= key <= high`` (or ``< high``)."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < low
            ):
                node = node.forward[level]
        node = node.forward[0]
        while node is not None:
            if node.key > high or (node.key == high and not inclusive):
                return
            yield node.key, node.value
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]
