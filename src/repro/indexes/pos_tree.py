"""POS-Tree: Pattern-Oriented-Split Tree.

The SIRI member Spitz uses for its ledger (paper Sections 3.1, 5,
6.1).  It is a Merkle-ized B+-tree-like structure over sorted
``(key, value)`` entries whose node boundaries are *content defined*:
an element ends a node exactly when a pattern (low bits all zero)
appears in its hash.  Consequences:

- **structural invariance** — the tree shape, and therefore the root
  digest, is a pure function of the entry set;
- **recyclability** — consecutive versions share every node outside
  the updated key neighbourhood;
- **integrated proofs** — the traversal that answers a lookup *is*
  the authentication path, which is why Spitz's verified reads cost
  roughly one extra hash walk while the baseline pays a separate
  per-record journal search.

Layout: leaf nodes are ``("L", ((key, value), ...))``; branch nodes are
``("B", ((first_key, child_digest_bytes), ...))``.  Nodes live in a
:class:`~repro.forkbase.chunk_store.ChunkStore` under the SHA-256 of
their serialized bytes; the root address is the digest clients pin.
"""

from __future__ import annotations

import bisect
import pickle
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import ProofError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.siri import (
    DELETE,
    SiriIndex,
    SiriProof,
    decode_node,
    encode_node,
    verify_siri_proof,
)

#: Default split pattern width: expected node size is ``2**MASK_BITS``.
DEFAULT_MASK_BITS = 5

#: Everything a tampered proof can raise during verification — node
#: bytes that fail to unpickle, malformed node shapes, and broken
#: path walks.  Proof ``verify`` methods turn all of these into
#: ``False``: tampering is *detected*, never an exception.
_VERIFY_ERRORS = (
    KeyError,
    ProofError,
    ValueError,
    IndexError,
    TypeError,
    EOFError,
    AttributeError,
    pickle.UnpicklingError,
)


@dataclass(frozen=True)
class PosRangeProof:
    """One proof covering every entry of a range scan.

    ``nodes`` holds the raw bytes of all nodes on the root-to-leaf
    paths of every leaf overlapping ``[low, high]``; shared interior
    nodes appear once.  :meth:`verify` re-executes the scan over the
    proof nodes alone and checks both the recomputed digests and the
    claimed entries, so adding, dropping or altering any result row is
    detected.
    """

    low: bytes
    high: bytes
    entries: Tuple[Tuple[bytes, bytes], ...]
    nodes: Tuple[bytes, ...]
    root: Digest

    @property
    def size_bytes(self) -> int:
        return (
            len(self.low)
            + len(self.high)
            + sum(len(node) for node in self.nodes)
            + sum(len(k) + len(v) for k, v in self.entries)
        )

    def verify(self, root: Digest, cache: Optional[dict] = None) -> bool:
        """True iff the claimed entries are exactly the range content.

        ``cache`` (digest → decoded node) carries verified nodes
        across proofs, like point-proof verification.
        """
        if root != self.root:
            return False
        try:
            decoded = _decode_proof_nodes(self.nodes, cache)
            replayed = _replay_range(decoded, root, self.low, self.high)
        except _VERIFY_ERRORS:
            return False
        return tuple(replayed) == self.entries


def _replay_range(
    by_address: Dict[Digest, tuple],
    address: Digest,
    low: bytes,
    high: bytes,
) -> List[Tuple[bytes, bytes]]:
    """Re-run the range scan using only proof-supplied nodes."""
    node = by_address[address]
    results: List[Tuple[bytes, bytes]] = []
    if node[0] == "L":
        for key, value in node[1]:
            if low <= key <= high:
                results.append((key, value))
        return results
    children = node[1]
    first_keys = [child[0] for child in children]
    start = max(bisect.bisect_right(first_keys, low) - 1, 0)
    for index in range(start, len(children)):
        if children[index][0] > high:
            break
        results.extend(
            _replay_range(by_address, Digest(children[index][1]), low, high)
        )
    return results


@dataclass(frozen=True)
class PosMultiProof:
    """One proof covering K point lookups against the same root.

    ``entries`` holds the claimed ``(key, value-or-None)`` pairs in
    request order (``None`` claims proven absence, exactly like a
    point proof).  ``nodes`` holds the raw bytes of every node on any
    queried key's root-to-leaf path — **deduplicated by address**, so
    the root and shared upper levels appear once no matter how many
    keys traverse them.  That dedup is the whole point: K point proofs
    ship the root K times; one multiproof ships it once.

    :meth:`verify` hashes every supplied node, then re-walks each
    key's path from ``root`` using only proof-supplied nodes.  A
    mutated node hashes to a different address and breaks its path
    (missing node); a truncated node set breaks the walk the same way;
    a swapped or forged claim fails the leaf comparison.  All failures
    return False — nothing raises.
    """

    entries: Tuple[Tuple[bytes, Optional[bytes]], ...]
    nodes: Tuple[bytes, ...]
    root: Digest

    @property
    def keys(self) -> Tuple[bytes, ...]:
        return tuple(key for key, _value in self.entries)

    @property
    def size_bytes(self) -> int:
        return (
            sum(len(node) for node in self.nodes)
            + sum(
                len(key) + (len(value) if value is not None else 0)
                for key, value in self.entries
            )
        )

    def verify(self, root: Digest, cache: Optional[dict] = None) -> bool:
        """True iff every claimed entry is the root's answer for its key.

        ``cache`` (digest → decoded node) carries verified nodes across
        proofs, feeding the verifier's cache-hit accounting exactly
        like range proofs do.
        """
        if root != self.root:
            return False
        try:
            decoded = _decode_proof_nodes(self.nodes, cache)
            for key, claimed in self.entries:
                if _replay_lookup(decoded, root, key) != claimed:
                    return False
        except _VERIFY_ERRORS:
            return False
        return True


def _decode_proof_nodes(
    nodes: Tuple[bytes, ...], cache: Optional[dict]
) -> Dict[Digest, tuple]:
    """Hash and decode proof-supplied nodes, keyed by address.

    ``cache`` (digest → decoded node) memoizes decoding across proofs;
    replay still only sees nodes *this* proof supplied, so a cached
    node can never stand in for one a tampered proof dropped.
    """
    decoded: Dict[Digest, tuple] = {}
    for raw in nodes:
        digest = hash_bytes(raw)
        if cache is not None:
            node = cache.get(digest)
            if node is None:
                node = decode_node(raw)
                cache[digest] = node
        else:
            node = decode_node(raw)
        decoded[digest] = node
    return decoded


def _replay_lookup(
    by_address: Dict[Digest, tuple], address: Digest, key: bytes
) -> Optional[bytes]:
    """Re-run one point lookup using only proof-supplied nodes."""
    while True:
        node = by_address[address]
        if node[0] == "L":
            for entry_key, value in node[1]:
                if entry_key == key:
                    return value
            return None
        children = node[1]
        first_keys = [child[0] for child in children]
        index = max(bisect.bisect_right(first_keys, key) - 1, 0)
        address = Digest(children[index][1])


@dataclass(frozen=True)
class _Ref:
    """In-memory reference to one node of one level.

    ``boundary`` caches the content-defined split decision for this
    node's address (under the owning tree's mask), so level re-chunking
    is an attribute walk instead of per-ref integer hashing.
    """

    first_key: bytes
    address: Digest
    count: int
    boundary: bool = False


def _entry_is_boundary(
    key: bytes,
    value: bytes,
    mask: int,
    cache: Optional[dict] = None,
) -> bool:
    # The cache key is a tuple: bytes objects memoize their own hash in
    # CPython, so repeated lookups for unchanged entries cost one dict
    # probe instead of a SHA-256.
    cache_key = (mask, key, value)
    if cache is not None:
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
    digest = hash_bytes(len(key).to_bytes(4, "big") + key + value)
    result = int.from_bytes(digest[:4], "big") & mask == 0
    if cache is not None:
        cache[cache_key] = result
    return result


def _ref_boundary(address: Digest, mask: int) -> bool:
    return int.from_bytes(address[:4], "big") & mask == 0


class PosTree(SiriIndex):
    """An immutable POS-tree instance.

    Instances are cheap handles: they share the chunk store and carry
    per-level node reference lists (derived metadata, rebuildable from
    the root address alone via :meth:`load`).
    """

    def __init__(
        self,
        store: ChunkStore,
        levels: List[List[_Ref]],
        mask_bits: int = DEFAULT_MASK_BITS,
    ):
        self.store = store
        self.mask_bits = mask_bits
        self._mask = (1 << mask_bits) - 1
        # levels[0] = leaves; levels[-1] = [root ref].
        self._levels = levels

    # -- construction ----------------------------------------------------

    @classmethod
    def empty(
        cls, store: ChunkStore, mask_bits: int = DEFAULT_MASK_BITS
    ) -> "PosTree":
        address = store.put(encode_node(("L", ())))
        mask = (1 << mask_bits) - 1
        root = _Ref(
            first_key=b"",
            address=address,
            count=0,
            boundary=_ref_boundary(address, mask),
        )
        return cls(store, [[root]], mask_bits)

    @classmethod
    def from_items(
        cls,
        store: ChunkStore,
        items: Sequence[Tuple[bytes, bytes]],
        mask_bits: int = DEFAULT_MASK_BITS,
    ) -> "PosTree":
        """Bulk-build from (key, value) pairs (later duplicates win)."""
        merged = dict(items)
        entries = sorted(merged.items())
        if not entries:
            return cls.empty(store, mask_bits)
        tree = cls(store, [], mask_bits)
        leaf_refs = tree._store_leaf_groups(tree._split_entries(entries))
        tree._levels = tree._build_upper_levels([leaf_refs])
        return tree

    @classmethod
    def load(
        cls,
        store: ChunkStore,
        root: Digest,
        mask_bits: int = DEFAULT_MASK_BITS,
    ) -> "PosTree":
        """Reconstruct level metadata by walking down from ``root``.

        Used when only a digest is at hand (e.g. a historical ledger
        block); O(number of branch nodes).
        """
        mask = (1 << mask_bits) - 1
        levels_down: List[List[_Ref]] = []
        node = decode_node(store.get(root))
        if node[0] == "L":
            first = node[1][0][0] if node[1] else b""
            ref = _Ref(
                first, root, len(node[1]), _ref_boundary(root, mask)
            )
            return cls(store, [[ref]], mask_bits)
        current = [
            _Ref(node[1][0][0], root, len(node[1]),
                 _ref_boundary(root, mask))
        ]
        levels_down.append(current)
        while True:
            children: List[_Ref] = []
            is_leaf_level = False
            for ref in current:
                parent = decode_node(store.get(ref.address))
                for first_key, child_bytes in parent[1]:
                    child_address = Digest(child_bytes)
                    child = decode_node(store.get(child_address))
                    children.append(
                        _Ref(
                            first_key,
                            child_address,
                            len(child[1]),
                            _ref_boundary(child_address, mask),
                        )
                    )
                    if child[0] == "L":
                        is_leaf_level = True
            levels_down.append(children)
            if is_leaf_level:
                break
            current = children
        return cls(store, levels_down[::-1], mask_bits)

    # -- node helpers ------------------------------------------------------

    def _load_node(self, address: Digest) -> tuple:
        node = self.store.decode_cache.get(address)
        if node is None:
            node = decode_node(self.store.get(address))
            self.store.decode_cache[address] = node
        return node

    def _leaf_entries(self, ref: _Ref) -> List[Tuple[bytes, bytes]]:
        node = self._load_node(ref.address)
        if node[0] != "L":
            raise ProofError("expected a leaf node")
        return list(node[1])

    def _store_leaf(self, entries: Sequence[Tuple[bytes, bytes]]) -> _Ref:
        node = ("L", tuple(entries))
        address = self.store.put(encode_node(node))
        # Freshly written leaves are the likeliest next reads; caching
        # the decoded form now saves the unpickle on that read.
        self.store.decode_cache[address] = node
        first = entries[0][0] if entries else b""
        return _Ref(
            first_key=first,
            address=address,
            count=len(entries),
            boundary=_ref_boundary(address, self._mask),
        )

    def _store_branch(self, children: Sequence[_Ref]) -> _Ref:
        node = (
            "B",
            tuple(
                (child.first_key, bytes(child.address))
                for child in children
            ),
        )
        address = self.store.put(encode_node(node))
        self.store.decode_cache[address] = node
        return _Ref(
            first_key=children[0].first_key,
            address=address,
            count=len(children),
            boundary=_ref_boundary(address, self._mask),
        )

    # -- content-defined splitting ----------------------------------------

    def _split_entries(
        self, entries: Sequence[Tuple[bytes, bytes]]
    ) -> List[List[Tuple[bytes, bytes]]]:
        cache = self.store.boundary_cache
        groups: List[List[Tuple[bytes, bytes]]] = []
        current: List[Tuple[bytes, bytes]] = []
        for key, value in entries:
            current.append((key, value))
            if _entry_is_boundary(key, value, self._mask, cache):
                groups.append(current)
                current = []
        if current:
            groups.append(current)
        return groups

    def _split_refs(self, refs: Sequence[_Ref]) -> List[List[_Ref]]:
        groups: List[List[_Ref]] = []
        current: List[_Ref] = []
        for ref in refs:
            current.append(ref)
            if ref.boundary:
                groups.append(current)
                current = []
        if current:
            groups.append(current)
        return groups

    def _store_leaf_groups(
        self, groups: Sequence[Sequence[Tuple[bytes, bytes]]]
    ) -> List[_Ref]:
        return [self._store_leaf(group) for group in groups]

    def _build_upper_levels(
        self, levels: List[List[_Ref]]
    ) -> List[List[_Ref]]:
        """Chunk level lists upward until a single root remains."""
        while len(levels[-1]) > 1:
            groups = self._split_refs(levels[-1])
            levels.append([self._store_branch(group) for group in groups])
        return levels

    # -- reads -------------------------------------------------------------

    @property
    def root(self) -> Digest:
        return self._levels[-1][0].address

    @property
    def height(self) -> int:
        """Number of levels (1 = a lone leaf)."""
        return len(self._levels)

    @property
    def count(self) -> int:
        """Number of entries."""
        return sum(ref.count for ref in self._levels[0])

    def __len__(self) -> int:
        return self.count

    def _leaf_index_for(self, key: bytes) -> int:
        index = bisect.bisect_right(self._leaf_first_keys(), key) - 1
        return max(index, 0)

    def get(self, key: bytes) -> Optional[bytes]:
        ref = self._levels[0][self._leaf_index_for(key)]
        for entry_key, value in self._leaf_entries(ref):
            if entry_key == key:
                return value
        return None

    def get_with_proof(self, key: bytes) -> Tuple[Optional[bytes], SiriProof]:
        """Lookup plus authentication path in a single traversal.

        This is the "unified index" behaviour the paper credits for
        Spitz's verified-read advantage: the proof is the list of node
        bytes the lookup touched anyway.
        """
        nodes: List[bytes] = []
        address = self.root
        value: Optional[bytes] = None
        while True:
            raw = self.store.get(address)
            nodes.append(raw)
            node = self.store.decode_cache.get(address)
            if node is None:
                node = decode_node(raw)
                self.store.decode_cache[address] = node
            if node[0] == "B":
                children = node[1]
                first_keys = [child[0] for child in children]
                index = max(bisect.bisect_right(first_keys, key) - 1, 0)
                address = Digest(children[index][1])
            else:
                for entry_key, entry_value in node[1]:
                    if entry_key == key:
                        value = entry_value
                        break
                break
        proof = SiriProof(key=key, value=value, nodes=tuple(nodes))
        return value, proof

    def get_many_with_proof(
        self, keys: Sequence[bytes]
    ) -> Tuple[List[Optional[bytes]], "PosMultiProof"]:
        """Batch lookup plus one multiproof for all of ``keys``.

        Each key's root-to-leaf walk collects its nodes into one
        address-keyed set, so the root and any shared upper-level
        nodes appear exactly once in the proof regardless of K.
        Values come back in request order (None for absent keys).
        """
        collected: Dict[Digest, bytes] = {}
        entries: List[Tuple[bytes, Optional[bytes]]] = []
        values: List[Optional[bytes]] = []
        for key in keys:
            address = self.root
            value: Optional[bytes] = None
            while True:
                if address not in collected:
                    collected[address] = self.store.get(address)
                node = self._load_node(address)
                if node[0] == "B":
                    children = node[1]
                    first_keys = [child[0] for child in children]
                    index = max(
                        bisect.bisect_right(first_keys, key) - 1, 0
                    )
                    address = Digest(children[index][1])
                else:
                    for entry_key, entry_value in node[1]:
                        if entry_key == key:
                            value = entry_value
                            break
                    break
            values.append(value)
            entries.append((key, value))
        proof = PosMultiProof(
            entries=tuple(entries),
            nodes=tuple(collected.values()),
            root=self.root,
        )
        return values, proof

    @staticmethod
    def _find_child(node: tuple, key: bytes):
        if node[0] == "B":
            children = node[1]
            first_keys = [child[0] for child in children]
            index = max(bisect.bisect_right(first_keys, key) - 1, 0)
            return Digest(children[index][1])
        for entry_key, entry_value in node[1]:
            if entry_key == key:
                return entry_value
        return None

    @classmethod
    def verify_proof(
        cls,
        proof: SiriProof,
        root: Digest,
        cache: Optional[dict] = None,
    ) -> bool:
        """True iff ``proof`` authenticates its claim under ``root``.

        ``cache`` memoizes already-verified nodes across proofs (see
        :func:`~repro.indexes.siri.verify_siri_proof`).
        """
        return verify_siri_proof(proof, root, cls._find_child, cache)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for ref in self._levels[0]:
            yield from self._leaf_entries(ref)

    def scan(
        self, low: bytes, high: bytes
    ) -> List[Tuple[bytes, bytes]]:
        """Entries with ``low <= key <= high`` in key order."""
        results: List[Tuple[bytes, bytes]] = []
        start = max(bisect.bisect_right(self._leaf_first_keys(), low) - 1, 0)
        for ref in self._levels[0][start:]:
            if ref.first_key > high and results:
                break
            for key, value in self._leaf_entries(ref):
                if key > high:
                    return results
                if key >= low:
                    results.append((key, value))
        return results

    def scan_with_proof(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], "PosRangeProof"]:
        """Range scan plus a single proof covering the whole run.

        The proof is the set of nodes on the root-to-leaf paths of every
        leaf overlapping the range — shared interior nodes appear once.
        This batched retrieval is the Section 6.2.2 advantage over the
        baseline's per-record proof searches.
        """
        collected: Dict[Digest, bytes] = {}
        entries = self._collect_range(
            self.root, low, high, collected
        )
        proof = PosRangeProof(
            low=low,
            high=high,
            entries=tuple(entries),
            nodes=tuple(collected.values()),
            root=self.root,
        )
        return entries, proof

    def _collect_range(
        self,
        address: Digest,
        low: bytes,
        high: bytes,
        collected: Dict[Digest, bytes],
    ) -> List[Tuple[bytes, bytes]]:
        raw = self.store.get(address)
        collected[address] = raw
        node = self.store.decode_cache.get(address)
        if node is None:
            node = decode_node(raw)
            self.store.decode_cache[address] = node
        results: List[Tuple[bytes, bytes]] = []
        if node[0] == "L":
            for key, value in node[1]:
                if low <= key <= high:
                    results.append((key, value))
            return results
        children = node[1]
        first_keys = [child[0] for child in children]
        start = max(bisect.bisect_right(first_keys, low) - 1, 0)
        for index in range(start, len(children)):
            if children[index][0] > high:
                break
            results.extend(
                self._collect_range(
                    Digest(children[index][1]), low, high, collected
                )
            )
        return results

    # -- updates -------------------------------------------------------------

    def apply(self, updates: Mapping[bytes, object]) -> "PosTree":
        """Batch update; returns a new tree sharing unchanged nodes.

        ``updates`` maps keys to byte values or the
        :data:`~repro.indexes.siri.DELETE` sentinel.

        Updates are grouped by the leaf they land in and each affected
        leaf region is rebuilt independently (with boundary-cascade
        into following leaves when a region's final entry stops being
        a split point).  The changed spans are then spliced upward
        level by level, so cost is proportional to the number of
        touched nodes — O(batch * height) — independent of tree size.
        """
        if not updates:
            return self
        if len(self._levels[0]) == 1 and self._levels[0][0].count == 0:
            inserts = [
                (key, value)
                for key, value in updates.items()
                if value is not DELETE
            ]
            return PosTree.from_items(self.store, inserts, self.mask_bits)

        old_leaves = self._levels[0]
        first_keys = self._leaf_first_keys()
        by_leaf: Dict[int, Dict[bytes, object]] = {}
        for key, value in updates.items():
            index = max(bisect.bisect_right(first_keys, key) - 1, 0)
            by_leaf.setdefault(index, {})[key] = value

        pending = sorted(by_leaf)
        new_leaves: List[_Ref] = []
        spans: List[Tuple[int, int, List[_Ref]]] = []
        consumed = 0
        position = 0
        while position < len(pending):
            start = pending[position]
            new_leaves.extend(old_leaves[consumed:start])
            entries = list(self._leaf_entries(old_leaves[start]))
            region_updates = dict(by_leaf[start])
            applied: set = set()
            end = start + 1
            position += 1
            while True:
                # Pull in any later update groups the region has grown
                # over (their leaves are already absorbed).
                while position < len(pending) and pending[position] < end:
                    region_updates.update(by_leaf[pending[position]])
                    position += 1
                for key, value in region_updates.items():
                    if key in applied and value is not DELETE:
                        continue
                    _apply_entry(entries, key, value)
                    applied.add(key)
                if end >= len(old_leaves):
                    break
                if entries and _entry_is_boundary(
                    entries[-1][0],
                    entries[-1][1],
                    self._mask,
                    self.store.boundary_cache,
                ):
                    break
                # Cascade: the region no longer ends on a split point,
                # so the next old leaf merges into it.
                entries.extend(self._leaf_entries(old_leaves[end]))
                end += 1
            region_refs = self._store_leaf_groups(
                self._split_entries(entries)
            )
            if not _same_refs(old_leaves, start, end, region_refs):
                spans.append((start, end, region_refs))
            new_leaves.extend(region_refs)
            consumed = end
        new_leaves.extend(old_leaves[consumed:])
        if not new_leaves:
            return PosTree.empty(self.store, self.mask_bits)
        if not spans:
            return self  # every region rebuilt to its previous address

        new_levels: List[List[_Ref]] = [new_leaves]
        child_spans = spans
        level_index = 1
        while len(new_levels[-1]) > 1:
            if level_index >= len(self._levels):
                # The tree grew taller: chunk the remainder upward.
                return PosTree(
                    self.store,
                    self._build_upper_levels(new_levels),
                    self.mask_bits,
                )
            if not child_spans:
                # Changes converged to identical nodes; the remaining
                # old levels are still valid above this point.
                new_levels.extend(self._levels[level_index:])
                return PosTree(self.store, new_levels, self.mask_bits)
            parents, child_spans = self._splice_parents(
                old_children=self._levels[level_index - 1],
                old_parents=self._levels[level_index],
                spans=child_spans,
            )
            new_levels.append(parents)
            level_index += 1
        return PosTree(self.store, new_levels, self.mask_bits)

    def _splice_parents(
        self,
        old_children: List[_Ref],
        old_parents: List[_Ref],
        spans: List[Tuple[int, int, List[_Ref]]],
    ) -> Tuple[List[_Ref], List[Tuple[int, int, List[_Ref]]]]:
        """Rebuild only the parents covering changed child spans.

        ``spans`` lists disjoint ascending replacements at the child
        level: ``old_children[start:end]`` became ``refs``.  Returns
        the new parent list plus the equivalent spans one level up.
        """
        offsets: List[int] = []
        total = 0
        for parent in old_parents:
            offsets.append(total)
            total += parent.count

        def parent_of(child_index: int) -> int:
            return max(bisect.bisect_right(offsets, child_index) - 1, 0)

        new_parents: List[_Ref] = []
        parent_spans: List[Tuple[int, int, List[_Ref]]] = []
        consumed_parent = 0
        i = 0
        while i < len(spans):
            span_start, span_end, span_refs = spans[i]
            start_parent = max(parent_of(span_start), consumed_parent)
            region: List[_Ref] = list(
                old_children[offsets[start_parent]:span_start]
            )
            region.extend(span_refs)
            cursor = span_end
            end_parent = parent_of(max(span_end - 1, span_start)) + 1
            end_parent = max(end_parent, start_parent + 1)
            i += 1
            while True:
                region_child_end = (
                    offsets[end_parent]
                    if end_parent < len(old_parents)
                    else len(old_children)
                )
                if i < len(spans) and spans[i][0] < region_child_end:
                    next_start, next_end, next_refs = spans[i]
                    i += 1
                    region.extend(old_children[cursor:next_start])
                    region.extend(next_refs)
                    cursor = next_end
                    end_parent = max(
                        end_parent,
                        parent_of(max(next_end - 1, next_start)) + 1,
                    )
                    continue
                region.extend(old_children[cursor:region_child_end])
                cursor = region_child_end
                if region and region[-1].boundary:
                    break
                if end_parent >= len(old_parents):
                    break
                end_parent += 1
            new_parents.extend(old_parents[consumed_parent:start_parent])
            region_parents = [
                self._store_branch(group)
                for group in self._split_refs(region)
            ]
            if not _same_refs(
                old_parents, start_parent, end_parent, region_parents
            ):
                parent_spans.append(
                    (start_parent, end_parent, region_parents)
                )
            new_parents.extend(region_parents)
            consumed_parent = end_parent
        new_parents.extend(old_parents[consumed_parent:])
        return new_parents, parent_spans

    def _leaf_first_keys(self) -> List[bytes]:
        """Memoized first-key list of the leaf level."""
        cached = getattr(self, "_first_keys_cache", None)
        if cached is None:
            cached = [ref.first_key for ref in self._levels[0]]
            self._first_keys_cache = cached
        return cached


def _same_refs(
    old_level: List[_Ref], start: int, end: int, new_refs: List[_Ref]
) -> bool:
    """True when a rebuilt region reproduced the old node addresses."""
    if end - start != len(new_refs):
        return False
    for offset, ref in enumerate(new_refs):
        if old_level[start + offset].address != ref.address:
            return False
    return True


def _apply_entry(
    entries: List[Tuple[bytes, bytes]], key: bytes, value: object
) -> None:
    """In-place sorted insert/replace/delete of one entry."""
    keys = [entry[0] for entry in entries]
    index = bisect.bisect_left(keys, key)
    present = index < len(entries) and entries[index][0] == key
    if value is DELETE:
        if present:
            entries.pop(index)
    elif present:
        entries[index] = (key, value)  # type: ignore[arg-type]
    else:
        entries.insert(index, (key, value))  # type: ignore[arg-type]
