"""The SIRI contract and the common proof format.

"Structurally Invariant and Reusable Indexes" (Yue et al., SIGMOD 2020,
cited as [59] by the paper) characterizes indexes whose physical shape
is a pure function of their logical content:

1. **Structural invariance** — the same key/value set yields the same
   root digest regardless of insertion order or batching;
2. **Recyclability** — an update creates a new instance that shares all
   unchanged nodes with its predecessor;
3. **Integrated proofs** — a lookup yields an authentication path as a
   by-product of the traversal.

Every member here stores nodes in a
:class:`~repro.forkbase.chunk_store.ChunkStore` under the SHA-256 of
their serialized bytes, so the root *address* doubles as the digest and
node sharing across versions is automatic.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import ProofError
from repro.forkbase.chunk_store import ChunkStore

#: Sentinel marking a key for deletion in a batch update.
DELETE = object()


def encode_node(node: tuple) -> bytes:
    """Serialize an index node deterministically.

    Plain ``pickle.dumps`` memoizes repeated object references, so the
    byte output depends on object *identity* (two equal values that
    happen to be one object serialize differently from two equal
    copies) — fatal for content addressing.  ``fast`` mode disables
    the memo; nodes are acyclic trees of bytes/str/int/None, so no
    cycle risk exists.
    """
    import io

    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=4)
    pickler.fast = True
    pickler.dump(node)
    return buffer.getvalue()


def decode_node(data: bytes) -> tuple:
    """Inverse of :func:`encode_node`."""
    return pickle.loads(data)


@dataclass(frozen=True)
class SiriProof:
    """An authentication path for one key.

    ``nodes`` holds the raw bytes of every node from the root down to
    (and including) the node that answers the query, in root-first
    order.  ``key`` and ``value`` state the claim: ``value is None``
    claims absence.  Verification recomputes each node's digest and
    checks parent-to-child linkage, so any tampering with the value,
    the key, or any node on the path is detected.
    """

    key: bytes
    value: Optional[bytes]
    nodes: Tuple[bytes, ...]

    @property
    def size_bytes(self) -> int:
        """Approximate wire size, for cost accounting."""
        return len(self.key) + sum(len(n) for n in self.nodes) + 16


class SiriIndex(ABC):
    """Interface shared by POS-tree, MPT and MBT."""

    store: ChunkStore

    @property
    @abstractmethod
    def root(self) -> Digest:
        """Content digest of the whole index."""

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Value for ``key`` or None."""

    @abstractmethod
    def get_with_proof(self, key: bytes) -> Tuple[Optional[bytes], SiriProof]:
        """Value (or None) together with its authentication path."""

    @abstractmethod
    def apply(self, updates: Mapping[bytes, object]) -> "SiriIndex":
        """Return a new instance with ``updates`` applied.

        Values are bytes; the :data:`DELETE` sentinel removes a key.
        The receiver is unchanged (persistence); the result shares all
        untouched nodes with the receiver (recyclability).
        """

    @abstractmethod
    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries in key order."""

    def __len__(self) -> int:
        return sum(1 for _item in self.items())

    # -- convenience -----------------------------------------------------

    def set(self, key: bytes, value: bytes) -> "SiriIndex":
        return self.apply({key: value})

    def delete(self, key: bytes) -> "SiriIndex":
        return self.apply({key: DELETE})


def check_linkage(parent_bytes: bytes, child_address: Digest) -> None:
    """Raise :class:`ProofError` unless ``parent_bytes`` references
    ``child_address``.

    Works for any node layout produced by :func:`encode_node` because
    node references are stored as raw digest bytes inside the pickle.
    """
    if bytes(child_address) not in parent_bytes:
        raise ProofError(
            f"proof node does not link to child {child_address.hex()[:12]}"
        )


def verify_siri_proof(
    proof: SiriProof,
    root: Digest,
    find_child: "callable",
    cache: Optional[dict] = None,
) -> bool:
    """Generic skeleton for SIRI proof verification.

    ``find_child(node, key)`` returns the digest of the next node on
    the path, or the proven value / None at the terminal node.  Each
    concrete index wraps this with its own ``find_child``; the shared
    part — recomputing digests root-down and checking linkage — lives
    here.  Returns False (never raises) on any mismatch, so callers can
    treat the result as a pure predicate.

    ``cache`` (digest → decoded node) memoizes nodes whose bytes were
    already hashed to their address.  Content addressing makes this
    sound: a digest match is a property of the bytes alone, so a node
    verified under one proof never needs re-hashing under another.
    This is what makes Spitz's deferred/batched verification cheap —
    consecutive proofs share the ledger index's upper levels.
    """
    if not proof.nodes:
        return False
    try:
        expected = root
        outcome: Optional[bytes] = None
        for raw in proof.nodes:
            node = cache.get(expected) if cache is not None else None
            if node is None:
                if hash_bytes(raw) != expected:
                    return False
                node = decode_node(raw)
                if cache is not None:
                    cache[expected] = node
            step = find_child(node, proof.key)
            if isinstance(step, Digest):
                expected = step
            else:
                outcome = step
                break
        else:
            # Path ended exactly at a terminal node; outcome set in loop.
            return False
        return outcome == proof.value
    except (ProofError, ValueError, KeyError, IndexError, TypeError):
        return False
