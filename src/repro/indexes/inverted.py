"""Inverted index over cell values.

Section 5 (*Inverted Index*): "the system uses an inverted index to
quickly locate the rows ... the value recorded in each cell as index
key and the universal key of the corresponding cell as value.  For
numeric type, the system uses a skip list to better support range
query, whereas for string type, it uses a radix tree to reduce space
consumption."

This module implements exactly that dispatch: one posting structure
per column, chosen by value type.  A *posting* is the set of universal
keys whose cells carry the indexed value.

Canonical-ordering and aliasing guarantees (the search plane commits
these postings under a Merkle root, so both matter):

- every query method returns a **fresh list** in a **deterministic
  order** — ascending value order, then ascending universal-key order
  within one value.  Mutating a returned list can never corrupt the
  index (the internal posting sets are never handed out).
- values are type-checked on **every** ``add`` (not only at column
  creation), ``NaN`` is rejected (it has no total order, so it would
  silently corrupt the skip list), and ``remove`` with a wrong-typed
  or unindexable value is a no-op — such a value can never have been
  indexed, so there is nothing to remove.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.errors import QueryError
from repro.indexes.radix import RadixTree
from repro.indexes.skiplist import SkipList


def _check_indexable(value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise QueryError(
            f"cannot index value of type {type(value).__name__}"
        )
    if isinstance(value, float) and math.isnan(value):
        raise QueryError("cannot index NaN: it has no total order")


class _NumericPostings:
    """Skip-list-backed postings for numeric values."""

    def __init__(self) -> None:
        self._list = SkipList()

    def add(self, value: float, ukey: bytes) -> None:
        posting: Optional[Set[bytes]] = self._list.get_optional(value)
        if posting is None:
            self._list.insert(value, {ukey})
        else:
            posting.add(ukey)

    def remove(self, value: float, ukey: bytes) -> None:
        posting: Optional[Set[bytes]] = self._list.get_optional(value)
        if posting is None:
            return
        posting.discard(ukey)
        if not posting:
            self._list.delete(value)

    def lookup(self, value: float) -> List[bytes]:
        posting = self._list.get_optional(value)
        return sorted(posting) if posting else []

    def range(self, low: float, high: float) -> List[bytes]:
        results: List[bytes] = []
        for _value, posting in self._list.range(low, high):
            results.extend(sorted(posting))
        return results

    def values(self) -> Iterator[float]:
        for value, _posting in self._list.items():
            yield value


class _StringPostings:
    """Radix-tree-backed postings for string values."""

    def __init__(self) -> None:
        self._tree = RadixTree()

    def add(self, value: str, ukey: bytes) -> None:
        encoded = value.encode("utf-8")
        posting: Optional[Set[bytes]] = self._tree.get_optional(encoded)
        if posting is None:
            self._tree.insert(encoded, {ukey})
        else:
            posting.add(ukey)

    def remove(self, value: str, ukey: bytes) -> None:
        encoded = value.encode("utf-8")
        posting: Optional[Set[bytes]] = self._tree.get_optional(encoded)
        if posting is None:
            return
        posting.discard(ukey)
        if not posting:
            self._tree.delete(encoded)

    def lookup(self, value: str) -> List[bytes]:
        posting = self._tree.get_optional(value.encode("utf-8"))
        return sorted(posting) if posting else []

    def prefix(self, prefix: str) -> List[bytes]:
        results: List[bytes] = []
        for _key, posting in self._tree.prefix_items(prefix.encode("utf-8")):
            results.extend(sorted(posting))
        return results

    def range(self, low: str, high: str) -> List[bytes]:
        low_encoded = low.encode("utf-8")
        high_encoded = high.encode("utf-8")
        results: List[bytes] = []
        for key, posting in self._tree.items():
            if low_encoded <= key <= high_encoded:
                results.extend(sorted(posting))
        return results

    def values(self) -> Iterator[str]:
        for key, _posting in self._tree.items():
            yield key.decode("utf-8")


class InvertedIndex:
    """Per-column value → universal-key postings.

    The posting structure is chosen by the first value indexed for a
    column: int/float → skip list, str → radix tree.  Mixing types in
    one column raises :class:`~repro.errors.QueryError`, mirroring a
    typed schema.
    """

    def __init__(self) -> None:
        self._columns: Dict[str, object] = {}

    def _postings_for(self, column: str, value: Any):
        _check_indexable(value)
        postings = self._columns.get(column)
        if postings is None:
            postings = (
                _StringPostings()
                if isinstance(value, str)
                else _NumericPostings()
            )
            self._columns[column] = postings
            return postings
        if isinstance(value, str) != isinstance(postings, _StringPostings):
            raise QueryError(
                f"column {column!r} mixes string and numeric values"
            )
        return postings

    def add(self, column: str, value: Any, ukey: bytes) -> None:
        """Index ``ukey`` under ``value`` in ``column``'s postings."""
        self._postings_for(column, value).add(value, ukey)

    def remove(self, column: str, value: Any, ukey: bytes) -> None:
        """Drop one posting (no-op if absent).

        A wrong-typed or unindexable ``value`` is also a no-op: such a
        value can never have been indexed, so there is nothing to
        remove — it must not raise from deep inside the posting
        structure.
        """
        postings = self._columns.get(column)
        if postings is None:
            return
        try:
            _check_indexable(value)
        except QueryError:
            return
        if isinstance(value, str) != isinstance(postings, _StringPostings):
            return
        postings.remove(value, ukey)

    def lookup(self, column: str, value: Any) -> List[bytes]:
        """Universal keys whose ``column`` cell equals ``value``."""
        postings = self._columns.get(column)
        if postings is None:
            return []
        return postings.lookup(value)

    def range(self, column: str, low: Any, high: Any) -> List[bytes]:
        """Universal keys with ``low <= value <= high`` in ``column``."""
        postings = self._columns.get(column)
        if postings is None:
            return []
        return postings.range(low, high)

    def prefix(self, column: str, prefix: str) -> List[bytes]:
        """String-column prefix search."""
        postings = self._columns.get(column)
        if postings is None:
            return []
        if not isinstance(postings, _StringPostings):
            raise QueryError(f"column {column!r} is not a string column")
        return postings.prefix(prefix)

    def values(self, column: str) -> Iterator[Any]:
        """Distinct indexed values of ``column``, in ascending order.

        The committed search index rebuilds from this (every value's
        posting is re-read via :meth:`lookup`), so the iteration order
        is part of the canonical-ordering contract.
        """
        postings = self._columns.get(column)
        if postings is None:
            return iter(())
        return postings.values()

    def columns(self) -> List[str]:
        return sorted(self._columns)
