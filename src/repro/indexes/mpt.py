"""Merkle Patricia Trie (MPT).

The SIRI member used by Ethereum (paper Section 3.1, ref [53]).  Keys
are split into 4-bit nibbles; three node kinds keep the structure
canonical — a given key/value set always produces the same trie, hence
the same root digest:

- leaf      ``("LF", nibbles, value)``
- extension ``("EX", nibbles, child_digest_bytes)`` (child is a branch)
- branch    ``("BR", (child_or_None,)*16, value_or_None)``

Deletion re-normalizes (collapses single-child branches, merges
extension chains), which is what preserves structural invariance.
Nodes live in the chunk store under the SHA-256 of their bytes.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Tuple

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import ProofError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.siri import (
    DELETE,
    SiriIndex,
    SiriProof,
    decode_node,
    encode_node,
)

_EMPTY_NODE = ("NULL",)


def _nibbles(key: bytes) -> Tuple[int, ...]:
    out: List[int] = []
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def _nibbles_to_bytes(nibbles: Tuple[int, ...]) -> bytes:
    if len(nibbles) % 2 != 0:
        raise ValueError("key nibble path must have even length")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def _common_prefix(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class MerklePatriciaTrie(SiriIndex):
    """An immutable MPT instance over a shared chunk store."""

    def __init__(self, store: ChunkStore, root: Digest):
        self.store = store
        self._root = root

    @classmethod
    def empty(cls, store: ChunkStore) -> "MerklePatriciaTrie":
        return cls(store, store.put(encode_node(_EMPTY_NODE)))

    @classmethod
    def from_items(
        cls, store: ChunkStore, items
    ) -> "MerklePatriciaTrie":
        trie = cls.empty(store)
        return trie.apply(dict(items))

    @property
    def root(self) -> Digest:
        return self._root

    # -- node io ---------------------------------------------------------

    def _load(self, address: Digest) -> tuple:
        return decode_node(self.store.get(address))

    def _save(self, node: tuple) -> Digest:
        return self.store.put(encode_node(node))

    # -- reads -----------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        value, _proof = self._walk(key, collect=False)
        return value

    def get_with_proof(self, key: bytes) -> Tuple[Optional[bytes], SiriProof]:
        value, nodes = self._walk(key, collect=True)
        return value, SiriProof(key=key, value=value, nodes=tuple(nodes))

    def _walk(self, key: bytes, collect: bool):
        path = _nibbles(key)
        nodes: List[bytes] = []
        address = self._root
        while True:
            raw = self.store.get(address)
            if collect:
                nodes.append(raw)
            node = decode_node(raw)
            kind = node[0]
            if kind == "NULL":
                return None, nodes
            if kind == "LF":
                _kind, suffix, value = node
                found = value if suffix == path else None
                return found, nodes
            if kind == "EX":
                _kind, shared, child = node
                if path[:len(shared)] != tuple(shared):
                    return None, nodes
                path = path[len(shared):]
                address = Digest(child)
                continue
            # branch
            _kind, children, value = node
            if not path:
                return value, nodes
            child = children[path[0]]
            if child is None:
                return None, nodes
            path = path[1:]
            address = Digest(child)

    @classmethod
    def verify_proof(cls, proof: SiriProof, root: Digest) -> bool:
        """Stateful verification: replays the nibble walk over the
        proof nodes, recomputing digests top-down."""
        try:
            path = _nibbles(proof.key)
            expected = root
            nodes = list(proof.nodes)
            if not nodes:
                return False
            index = 0
            while True:
                if index >= len(nodes):
                    return False
                raw = nodes[index]
                index += 1
                if hash_bytes(raw) != expected:
                    return False
                node = decode_node(raw)
                kind = node[0]
                if kind == "NULL":
                    return proof.value is None
                if kind == "LF":
                    _kind, suffix, value = node
                    found = value if tuple(suffix) == path else None
                    return found == proof.value
                if kind == "EX":
                    _kind, shared, child = node
                    if path[:len(shared)] != tuple(shared):
                        return proof.value is None
                    path = path[len(shared):]
                    expected = Digest(child)
                    continue
                _kind, children, value = node
                if not path:
                    return value == proof.value
                child = children[path[0]]
                if child is None:
                    return proof.value is None
                path = path[1:]
                expected = Digest(child)
        except (ProofError, ValueError, KeyError, TypeError):
            return False

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        yield from self._iter_node(self._root, ())

    def _iter_node(
        self, address: Digest, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[bytes, bytes]]:
        node = self._load(address)
        kind = node[0]
        if kind == "NULL":
            return
        if kind == "LF":
            _kind, suffix, value = node
            yield _nibbles_to_bytes(prefix + tuple(suffix)), value
        elif kind == "EX":
            _kind, shared, child = node
            yield from self._iter_node(Digest(child), prefix + tuple(shared))
        else:
            _kind, children, value = node
            if value is not None:
                yield _nibbles_to_bytes(prefix), value
            for nibble, child in enumerate(children):
                if child is not None:
                    yield from self._iter_node(
                        Digest(child), prefix + (nibble,)
                    )

    # -- updates -----------------------------------------------------------

    def apply(self, updates: Mapping[bytes, object]) -> "MerklePatriciaTrie":
        root: Optional[Digest] = self._root
        if self._load(root)[0] == "NULL":
            root = None
        for key, value in sorted(updates.items()):
            path = _nibbles(key)
            if value is DELETE:
                root = self._delete(root, path)
            else:
                root = self._insert(root, path, value)
        if root is None:
            return MerklePatriciaTrie.empty(self.store)
        return MerklePatriciaTrie(self.store, root)

    def _insert(
        self,
        address: Optional[Digest],
        path: Tuple[int, ...],
        value: bytes,
    ) -> Digest:
        if address is None:
            return self._save(("LF", path, value))
        node = self._load(address)
        kind = node[0]
        if kind == "LF":
            _kind, suffix, old_value = node
            suffix = tuple(suffix)
            if suffix == path:
                return self._save(("LF", path, value))
            return self._split_leaf(suffix, old_value, path, value)
        if kind == "EX":
            _kind, shared, child = node
            shared = tuple(shared)
            cp = _common_prefix(shared, path)
            if cp == len(shared):
                new_child = self._insert(
                    Digest(child), path[cp:], value
                )
                return self._save(("EX", shared, bytes(new_child)))
            # Diverge inside the extension: build a branch at cp.
            children: List[Optional[bytes]] = [None] * 16
            branch_value: Optional[bytes] = None
            ext_rest = shared[cp:]
            if len(ext_rest) == 1:
                children[ext_rest[0]] = child
            else:
                inner = self._save(("EX", ext_rest[1:], child))
                children[ext_rest[0]] = bytes(inner)
            path_rest = path[cp:]
            if not path_rest:
                branch_value = value
            else:
                leaf = self._save(("LF", path_rest[1:], value))
                children[path_rest[0]] = bytes(leaf)
            branch = self._save(("BR", tuple(children), branch_value))
            if cp:
                return self._save(("EX", shared[:cp], bytes(branch)))
            return branch
        # branch
        _kind, children, branch_value = node
        if not path:
            return self._save(("BR", tuple(children), value))
        slot = path[0]
        child_address = (
            Digest(children[slot]) if children[slot] is not None else None
        )
        new_child = self._insert(child_address, path[1:], value)
        new_children = list(children)
        new_children[slot] = bytes(new_child)
        return self._save(("BR", tuple(new_children), branch_value))

    def _split_leaf(
        self,
        old_path: Tuple[int, ...],
        old_value: bytes,
        new_path: Tuple[int, ...],
        new_value: bytes,
    ) -> Digest:
        cp = _common_prefix(old_path, new_path)
        children: List[Optional[bytes]] = [None] * 16
        branch_value: Optional[bytes] = None
        for path, value in ((old_path, old_value), (new_path, new_value)):
            rest = path[cp:]
            if not rest:
                branch_value = value
            else:
                leaf = self._save(("LF", rest[1:], value))
                children[rest[0]] = bytes(leaf)
        branch = self._save(("BR", tuple(children), branch_value))
        if cp:
            return self._save(("EX", old_path[:cp], bytes(branch)))
        return branch

    def _delete(
        self, address: Optional[Digest], path: Tuple[int, ...]
    ) -> Optional[Digest]:
        if address is None:
            return None
        node = self._load(address)
        kind = node[0]
        if kind == "LF":
            _kind, suffix, _value = node
            return None if tuple(suffix) == path else address
        if kind == "EX":
            _kind, shared, child = node
            shared = tuple(shared)
            if path[:len(shared)] != shared:
                return address
            new_child = self._delete(Digest(child), path[len(shared):])
            if new_child is None:
                return None
            if new_child == Digest(child):
                return address
            return self._normalize_extension(shared, new_child)
        _kind, children, branch_value = node
        new_children = list(children)
        if not path:
            if branch_value is None:
                return address
            branch_value = None
        else:
            slot = path[0]
            if children[slot] is None:
                return address
            new_child = self._delete(Digest(children[slot]), path[1:])
            if new_child is None:
                new_children[slot] = None
            elif new_child == Digest(children[slot]):
                return address
            else:
                new_children[slot] = bytes(new_child)
        return self._normalize_branch(new_children, branch_value)

    def _normalize_extension(
        self, shared: Tuple[int, ...], child_address: Digest
    ) -> Digest:
        child = self._load(child_address)
        kind = child[0]
        if kind == "BR":
            return self._save(("EX", shared, bytes(child_address)))
        if kind == "LF":
            _kind, suffix, value = child
            return self._save(("LF", shared + tuple(suffix), value))
        # extension chains merge
        _kind, inner_shared, inner_child = child
        return self._save(("EX", shared + tuple(inner_shared), inner_child))

    def _normalize_branch(
        self,
        children: List[Optional[bytes]],
        branch_value: Optional[bytes],
    ) -> Optional[Digest]:
        live = [
            (slot, child)
            for slot, child in enumerate(children)
            if child is not None
        ]
        if not live and branch_value is None:
            return None
        if not live:
            return self._save(("LF", (), branch_value))
        if len(live) == 1 and branch_value is None:
            slot, child = live[0]
            return self._normalize_extension((slot,), Digest(child))
        return self._save(("BR", tuple(children), branch_value))
