"""In-memory B+-tree.

Spitz "uses a B+-tree for query processing ... efficient for both point
and range queries" (Section 5, *Index*), and the baseline materializes
journal blocks into B+-tree indexed views (Section 6.1).  This is a
classic mutable B+-tree: values live only in leaves, leaves are chained
for range scans, and deletion rebalances by borrowing or merging.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFoundError

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool):
        self.keys: List[Any] = []
        # Interior nodes use children; leaves use values + next_leaf.
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.values: Optional[List[Any]] = [] if leaf else None
        self.next_leaf: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """A mutable B+-tree mapping ordered keys to values.

    ``order`` is the maximum number of keys per node; nodes split at
    ``order`` and rebalance below ``order // 2``.
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get_optional(key, _MISSING) is not _MISSING

    # -- search ------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Any) -> Any:
        """Value for ``key``; raises :class:`KeyNotFoundError` if absent."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        raise KeyNotFoundError(key)

    def get_optional(self, key: Any, default: Any = None) -> Any:
        try:
            return self.get(key)
        except KeyNotFoundError:
            return default

    def range(
        self, low: Any, high: Any, inclusive: bool = True
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) with ``low <= key <= high`` (or ``< high``)."""
        leaf = self._find_leaf(low)
        index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high or (key == high and not inclusive):
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def min_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        if not node.keys:
            raise KeyNotFoundError("<empty tree>")
        return node.keys[0]

    def max_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        if not node.keys:
            raise KeyNotFoundError("<empty tree>")
        return node.keys[-1]

    # -- insert ------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(
        self, node: _Node, key: Any, value: Any
    ) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_interior(node)

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # -- delete ------------------------------------------------------------

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` if absent."""
        found = self._delete_from(self._root, key)
        if not found:
            raise KeyNotFoundError(key)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]

    def _min_keys(self) -> int:
        return self.order // 2

    def _delete_from(self, node: _Node, key: Any) -> bool:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            node.keys.pop(index)
            node.values.pop(index)
            self._size -= 1
            return True
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        found = self._delete_from(child, key)
        if found:
            self._rebalance(node, index)
        return found

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        if len(child.keys) >= self._min_keys():
            return
        left = parent.children[index - 1] if index > 0 else None
        right = (
            parent.children[index + 1]
            if index + 1 < len(parent.children)
            else None
        )
        if left is not None and len(left.keys) > self._min_keys():
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > self._min_keys():
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(
        self, parent: _Node, index: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node, index: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(
        self, parent: _Node, left_index: int, left: _Node, right: _Node
    ) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
