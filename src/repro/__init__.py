"""Spitz: A Verifiable Database System — a full Python reproduction.

Reproduces Zhang, Xie, Yue, Zhong, *"Spitz: A Verifiable Database
System"*, PVLDB 13(12), 2020 — the Spitz system itself plus every
substrate and comparator its evaluation depends on.  See DESIGN.md for
the inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import SpitzDatabase, ClientVerifier

    db = SpitzDatabase()
    db.put(b"patient:42", b"blood_type=O+")
    value, proof = db.get_verified(b"patient:42")

    client = ClientVerifier()
    client.trust(db.digest())
    client.verify_or_raise(proof)   # raises TamperDetectedError if forged
"""

from repro.core.audit import compare_replicas, make_bundle, verify_bundle
from repro.core.database import SpitzDatabase
from repro.core.documents import DocumentStore
from repro.core.persistence import load_database, save_database
from repro.core.ledger import Block, LedgerDigest, SpitzLedger
from repro.core.proofs import (
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.schema import Column, TableSchema
from repro.core.verifier import ClientVerifier
from repro.baseline.ledger_db import BaselineLedgerDB
from repro.forkbase.store import ForkBase
from repro.integration.intrusive import IntrusiveVDB, migrate_kvs_to_spitz
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.kvstore.kvs import ImmutableKVS
from repro.errors import (
    ClusterOverloadedError,
    SpitzError,
    TamperDetectedError,
    TransactionAborted,
    VerificationError,
)

__version__ = "0.1.0"

__all__ = [
    "BaselineLedgerDB",
    "DocumentStore",
    "compare_replicas",
    "load_database",
    "make_bundle",
    "save_database",
    "verify_bundle",
    "Block",
    "ClientVerifier",
    "ClusterOverloadedError",
    "Column",
    "ForkBase",
    "ImmutableKVS",
    "IntrusiveVDB",
    "LedgerDigest",
    "LedgerMultiProof",
    "LedgerProof",
    "LedgerRangeProof",
    "NonIntrusiveVDB",
    "SpitzDatabase",
    "SpitzError",
    "SpitzLedger",
    "TableSchema",
    "TamperDetectedError",
    "TransactionAborted",
    "VerificationError",
    "migrate_kvs_to_spitz",
]
