"""Verifiable search plane: Merkle-committed secondary indexes.

Spitz's inverted indexes (Section 5, *Inverted Index*) locate rows by
cell value, but by themselves they answer queries *unproven*: a
malicious server could drop or fabricate matches.  This package
commits the secondary structure itself — each indexed column's
postings become a POS-tree over canonical ``value → sorted-posting``
leaves, the per-column roots are folded into a manifest anchored under
a reserved ledger key, and every search answer ships a
:class:`~repro.search.proofs.SearchProof` binding the matches (and
their *completeness*) to the chain digest clients already pin.

See DESIGN.md §6i for the commitment layout, the completeness-proof
rules, and the tamper matrix.
"""

from repro.search.committed import (
    SEARCH_ROOT_KEY,
    CommittedSearchIndex,
    decode_manifest,
    decode_postings,
    decode_search_value,
    encode_manifest,
    encode_postings,
    encode_search_value,
    index_root_of,
)
from repro.search.proofs import (
    SearchPredicate,
    SearchProof,
    build_search_proof,
    evaluate_on_inverted,
)

__all__ = [
    "SEARCH_ROOT_KEY",
    "CommittedSearchIndex",
    "SearchPredicate",
    "SearchProof",
    "build_search_proof",
    "decode_manifest",
    "decode_postings",
    "decode_search_value",
    "encode_manifest",
    "encode_postings",
    "encode_search_value",
    "evaluate_on_inverted",
    "index_root_of",
]
