"""Deterministic commitment over secondary-index postings.

Each indexed column becomes one POS-tree whose leaves are canonical
``encoded-value → encoded-sorted-posting-list`` entries.  The encoding
is order-preserving (range predicates become tree scans) and strictly
canonical (one byte string per logical state), so the column root is a
pure function of the column's current postings — the structural
invariance the POS-tree already guarantees for the primary ledger
index ("Analysis of Indexing Structures for Immutable Data" motivates
committing the secondary structure the same way).

The per-column roots are folded into a *manifest* — a sorted, length-
prefixed binary listing of ``(column name, root)`` pairs — and the
manifest bytes are written under :data:`SEARCH_ROOT_KEY` inside every
sealed ledger block.  The block's tree root therefore commits to the
manifest, the chain digest commits to the block, and the digest a
client pins commits to every column index transitively.  A search
proof anchors itself with an ordinary ledger point proof of the
reserved key; ``index_root`` (the hash of the manifest bytes) is the
single-digest form reported in stats and CLI output.

Value encoding:

- numeric (int/float, never bool): tag ``n`` + 8 bytes of the IEEE-754
  big-endian bit pattern with the usual order-preserving transform
  (flip all bits when negative, else set the sign bit).  NaN is
  rejected at indexing time — it has no total order, so it can neither
  live in the skip list nor be committed canonically.
- string: tag ``s`` + UTF-8 bytes (byte order equals code-point
  order, which equals Python ``str`` comparison order).

Posting lists are encoded sorted and deduplicated, each universal key
length-prefixed; decoding *enforces* the canonical form (strictly
increasing entries, exact consumption) so a non-canonical byte string
can never round-trip silently.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import QueryError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.pos_tree import DEFAULT_MASK_BITS, PosTree
from repro.indexes.siri import DELETE

#: Reserved logical key the search manifest is sealed under.  The
#: prefix is disjoint from the KV/table/document prefixes, so the key
#: can never collide with user data and never flows through the cell
#: store (it is injected at block-seal time only).
SEARCH_PREFIX = b"s\x00"
SEARCH_ROOT_KEY = SEARCH_PREFIX + b"__index_root__"

_NUMERIC_TAG = b"n"
_STRING_TAG = b"s"

#: Scan bounds bracketing every possible encoded value of one type.
#: Numeric encodings are exactly 9 bytes, so ``n`` + 8×0xff is an
#: inclusive upper bound; strings are unbounded in length, so the
#: upper bound is the next tag byte (``t`` > ``s`` + any suffix).
NUMERIC_MIN = _NUMERIC_TAG + b"\x00" * 8
NUMERIC_MAX = _NUMERIC_TAG + b"\xff" * 8
STRING_MIN = _STRING_TAG
STRING_MAX = b"t"

_MANIFEST_MAGIC = b"SIDX1"


def encode_search_value(value) -> bytes:
    """Canonical order-preserving encoding of one indexable value."""
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise QueryError(
            f"cannot index value of type {type(value).__name__}"
        )
    if isinstance(value, str):
        return _STRING_TAG + value.encode("utf-8")
    number = float(value)
    if math.isnan(number):
        raise QueryError("cannot index NaN: it has no total order")
    bits = struct.unpack(">Q", struct.pack(">d", number))[0]
    if bits & 0x8000_0000_0000_0000:
        bits ^= 0xFFFF_FFFF_FFFF_FFFF
    else:
        bits |= 0x8000_0000_0000_0000
    return _NUMERIC_TAG + struct.pack(">Q", bits)


def decode_search_value(data: bytes):
    """Inverse of :func:`encode_search_value` (numerics come back as
    ``float``); raises ``ValueError`` on any malformed input."""
    if not data:
        raise ValueError("empty encoded search value")
    tag, body = data[:1], data[1:]
    if tag == _STRING_TAG:
        return body.decode("utf-8")
    if tag != _NUMERIC_TAG:
        raise ValueError(f"unknown search value tag {tag!r}")
    if len(body) != 8:
        raise ValueError("numeric search value must be 9 bytes")
    bits = struct.unpack(">Q", body)[0]
    if bits & 0x8000_0000_0000_0000:
        bits &= 0x7FFF_FFFF_FFFF_FFFF
    else:
        bits ^= 0xFFFF_FFFF_FFFF_FFFF
    number = struct.unpack(">d", struct.pack(">Q", bits))[0]
    if math.isnan(number):
        raise ValueError("encoded numeric decodes to NaN")
    return number


def encode_postings(ukeys: Iterable[bytes]) -> bytes:
    """Canonical posting-list bytes: sorted, deduplicated, each entry
    length-prefixed.  Canonicalization happens here, so callers may
    pass postings in any order."""
    entries = sorted(set(ukeys))
    parts = [struct.pack(">I", len(entries))]
    for ukey in entries:
        if len(ukey) > 0xFFFF:
            raise QueryError("posting entry exceeds 65535 bytes")
        parts.append(struct.pack(">H", len(ukey)))
        parts.append(ukey)
    return b"".join(parts)


def decode_postings(data: bytes) -> Tuple[bytes, ...]:
    """Strict inverse of :func:`encode_postings`.

    Raises ``ValueError`` unless the bytes are exactly canonical:
    declared count, strictly increasing entries, nothing trailing.
    """
    if len(data) < 4:
        raise ValueError("posting list too short")
    (count,) = struct.unpack(">I", data[:4])
    offset = 4
    entries: List[bytes] = []
    previous: Optional[bytes] = None
    for _ in range(count):
        if offset + 2 > len(data):
            raise ValueError("truncated posting list")
        (length,) = struct.unpack(">H", data[offset:offset + 2])
        offset += 2
        if offset + length > len(data):
            raise ValueError("truncated posting entry")
        entry = data[offset:offset + length]
        offset += length
        if previous is not None and entry <= previous:
            raise ValueError("posting list is not canonically sorted")
        previous = entry
        entries.append(entry)
    if offset != len(data):
        raise ValueError("trailing bytes after posting list")
    return tuple(entries)


def encode_manifest(roots: Mapping[str, Digest]) -> bytes:
    """Canonical manifest bytes: sorted ``(column, root)`` pairs."""
    parts = [_MANIFEST_MAGIC, struct.pack(">I", len(roots))]
    for name in sorted(roots):
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise QueryError("column name exceeds 65535 bytes")
        root = roots[name]
        if len(root) != 32:
            raise QueryError("column root must be a 32-byte digest")
        parts.append(struct.pack(">H", len(encoded)))
        parts.append(encoded)
        parts.append(bytes(root))
    return b"".join(parts)


def decode_manifest(data: bytes) -> Dict[str, Digest]:
    """Strict inverse of :func:`encode_manifest` (``ValueError`` on
    anything non-canonical: bad magic, unsorted or duplicate column
    names, trailing bytes)."""
    if data[:5] != _MANIFEST_MAGIC:
        raise ValueError("bad search manifest magic")
    if len(data) < 9:
        raise ValueError("search manifest too short")
    (count,) = struct.unpack(">I", data[5:9])
    offset = 9
    roots: Dict[str, Digest] = {}
    previous: Optional[str] = None
    for _ in range(count):
        if offset + 2 > len(data):
            raise ValueError("truncated search manifest")
        (length,) = struct.unpack(">H", data[offset:offset + 2])
        offset += 2
        if offset + length + 32 > len(data):
            raise ValueError("truncated search manifest entry")
        name = data[offset:offset + length].decode("utf-8")
        offset += length
        root = Digest(data[offset:offset + 32])
        offset += 32
        if previous is not None and name <= previous:
            raise ValueError("search manifest is not canonically sorted")
        previous = name
        roots[name] = root
    if offset != len(data):
        raise ValueError("trailing bytes after search manifest")
    return roots


def index_root_of(manifest: bytes) -> Digest:
    """The single combined ``index_root`` digest over all columns."""
    return hash_bytes(manifest)


class CommittedSearchIndex:
    """Merkle commitment over the postings of the configured columns.

    One POS-tree per column over the shared chunk store.  Incremental
    maintenance is two-phase to match the database's commit pipeline:
    :meth:`note_change` records which ``(column, value)`` postings a
    commit touched (O(1), on the write path), and :meth:`seal` folds
    every touched posting's *current* state — read back from the
    inverted index, the single source of truth — into the trees at
    block-seal time, O(touched × height) via :meth:`PosTree.apply`.
    """

    def __init__(
        self,
        store: ChunkStore,
        columns: Sequence[str],
        mask_bits: int = DEFAULT_MASK_BITS,
    ):
        names = list(columns)
        if not names:
            raise QueryError("indexed_columns must name at least one column")
        if len(set(names)) != len(names):
            raise QueryError("indexed_columns contains duplicates")
        for name in names:
            if "." not in name:
                raise QueryError(
                    f"indexed column {name!r} must be a table cell "
                    "column (\"table.column\"); KV cells are not "
                    "value-indexed"
                )
        self.store = store
        self.mask_bits = mask_bits
        self._trees: Dict[str, PosTree] = {
            name: PosTree.empty(store, mask_bits) for name in sorted(names)
        }
        self._dirty: Dict[str, set] = {name: set() for name in self._trees}
        self._manifest: Optional[bytes] = None

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self._trees)

    def covers(self, column: str) -> bool:
        return column in self._trees

    def tree(self, column: str) -> Optional[PosTree]:
        return self._trees.get(column)

    def root(self, column: str) -> Optional[Digest]:
        tree = self._trees.get(column)
        return tree.root if tree is not None else None

    def note_change(self, column: str, value) -> None:
        """Record one touched posting; folded at the next :meth:`seal`."""
        dirty = self._dirty.get(column)
        if dirty is None:
            return
        if isinstance(value, bool) or not isinstance(
            value, (int, float, str)
        ):
            return  # unindexable values never reach the inverted index
        dirty.add(value)
        self._manifest = None

    @property
    def pending_changes(self) -> int:
        return sum(len(values) for values in self._dirty.values())

    def seal(self, inverted) -> bytes:
        """Fold touched postings into the trees; return manifest bytes.

        ``inverted`` is the :class:`~repro.indexes.inverted
        .InvertedIndex` holding the authoritative postings.  A value
        whose posting emptied is deleted from the tree, keeping the
        committed leaf set exactly the set of live postings.
        """
        for column, values in self._dirty.items():
            if not values:
                continue
            updates: Dict[bytes, object] = {}
            for value in values:
                postings = inverted.lookup(column, value)
                key = encode_search_value(value)
                updates[key] = (
                    encode_postings(postings) if postings else DELETE
                )
            self._trees[column] = self._trees[column].apply(updates)
            values.clear()
        return self.manifest_bytes()

    def manifest_bytes(self) -> bytes:
        """Current manifest bytes (cached until a tree changes).

        Note this reflects *sealed* state only — call :meth:`seal`
        first if changes are pending.
        """
        if self._manifest is None:
            self._manifest = encode_manifest(
                {name: tree.root for name, tree in self._trees.items()}
            )
        return self._manifest

    @property
    def index_root(self) -> Digest:
        return index_root_of(self.manifest_bytes())

    def bulk_load(
        self, column: str, postings_by_value: Mapping[object, Sequence[bytes]]
    ) -> None:
        """Replace one column's tree from a full postings mapping.

        The benchmark's 1M-key path: :meth:`PosTree.from_items` bulk
        build instead of per-commit :meth:`apply` churn.
        """
        if column not in self._trees:
            raise QueryError(f"column {column!r} is not indexed")
        items = [
            (encode_search_value(value), encode_postings(ukeys))
            for value, ukeys in postings_by_value.items()
            if ukeys
        ]
        self._trees[column] = PosTree.from_items(
            self.store, items, self.mask_bits
        )
        self._dirty[column].clear()
        self._manifest = None

    def rebuild_from(self, inverted) -> None:
        """Rebuild every column tree from the inverted index.

        Used when search is enabled on a database that already holds
        data (``SpitzDatabase.enable_search``): the committed trees
        must reflect the *full* current postings, not just changes
        observed from now on.
        """
        for column in self._trees:
            postings: Dict[object, List[bytes]] = {}
            for value in inverted.values(column):
                postings[value] = inverted.lookup(column, value)
            if postings:
                self.bulk_load(column, postings)
            else:
                self._trees[column] = PosTree.empty(
                    self.store, self.mask_bits
                )
                self._dirty[column].clear()
                self._manifest = None


__all__ = [
    "SEARCH_PREFIX",
    "SEARCH_ROOT_KEY",
    "NUMERIC_MIN",
    "NUMERIC_MAX",
    "STRING_MIN",
    "STRING_MAX",
    "CommittedSearchIndex",
    "decode_manifest",
    "decode_postings",
    "decode_search_value",
    "encode_manifest",
    "encode_postings",
    "encode_search_value",
    "index_root_of",
]
