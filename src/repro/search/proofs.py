"""Search predicates and the verifiable search proof.

A :class:`SearchProof` binds a predicate's *complete* answer to the
chain digest a client pins, in three layers:

1. **anchor** — an ordinary :class:`~repro.core.proofs.LedgerProof`
   for :data:`~repro.search.committed.SEARCH_ROOT_KEY`, whose value is
   the search manifest (per-column roots).  The chain digest commits
   to the block, the block to the ledger tree, the tree to the
   manifest — so a stale or forged index root breaks here.
2. **column evidence** — against the column's manifest root: a
   :class:`~repro.indexes.siri.SiriProof` point proof for equality /
   keyword predicates (``value=None`` proves *absence*, i.e. a
   verified empty result), or a
   :class:`~repro.indexes.pos_tree.PosRangeProof` for range
   predicates, whose verification *replays the scan* over the proof
   nodes alone — dropping any leaf (boundary or interior) breaks a
   hash path, so completeness is structural, not asserted.
3. **match recomputation** — the verifier re-derives the claimed
   matches from the proven entries (decoding each value, re-applying
   the predicate — strict bounds ship their boundary neighbor and the
   verifier re-excludes it) and requires exact equality.  A dropped or
   fabricated match therefore fails even though every shipped entry
   is individually authentic.

Tamper semantics match :class:`~repro.indexes.pos_tree.PosMultiProof`:
anything undecodable or inconsistent returns ``False`` from
:meth:`SearchProof.verify` — tampering is detected at verification,
never raised at decoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.crypto.hashing import Digest
from repro.errors import QueryError
from repro.indexes.pos_tree import _VERIFY_ERRORS, PosRangeProof, PosTree
from repro.indexes.siri import SiriProof
from repro.core.proofs import LedgerProof
from repro.search.committed import (
    NUMERIC_MAX,
    NUMERIC_MIN,
    SEARCH_ROOT_KEY,
    STRING_MAX,
    STRING_MIN,
    decode_manifest,
    decode_postings,
    decode_search_value,
    encode_search_value,
)

#: Everything a tampered search proof can raise during verification —
#: the POS-tree set plus the strict binary codecs (struct) and the
#: predicate/encoding guards (QueryError).
_SEARCH_VERIFY_ERRORS = _VERIFY_ERRORS + (QueryError, struct.error)

_OPS = ("eq", "ge", "gt", "le", "lt", "between")
_OP_TOKENS = (
    ("==", "eq"),
    (">=", "ge"),
    ("<=", "le"),
    (">", "gt"),
    ("<", "lt"),
    ("=", "eq"),
)


def _check_operand(value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise QueryError(
            f"predicate operand of type {type(value).__name__} is not "
            "searchable (int, float or str required)"
        )


@dataclass(frozen=True)
class SearchPredicate:
    """One search predicate: keyword equality or a value range.

    ``op`` is one of ``eq``/``ge``/``gt``/``le``/``lt``/``between``.
    Single-operand forms use ``value``; ``between`` (inclusive both
    ends) uses ``low``/``high``.
    """

    op: str
    value: Optional[Union[int, float, str]] = None
    low: Optional[Union[int, float, str]] = None
    high: Optional[Union[int, float, str]] = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise QueryError(f"unknown predicate op {self.op!r}")
        if self.op == "between":
            if self.value is not None:
                raise QueryError("between takes low/high, not value")
            _check_operand(self.low)
            _check_operand(self.high)
            if isinstance(self.low, str) != isinstance(self.high, str):
                raise QueryError("between bounds mix string and numeric")
            if self.low > self.high:  # type: ignore[operator]
                raise QueryError("between bounds are inverted")
        else:
            if self.low is not None or self.high is not None:
                raise QueryError(f"{self.op} takes value, not low/high")
            _check_operand(self.value)

    # -- construction ---------------------------------------------------

    @classmethod
    def eq(cls, value) -> "SearchPredicate":
        return cls("eq", value=value)

    @classmethod
    def ge(cls, value) -> "SearchPredicate":
        return cls("ge", value=value)

    @classmethod
    def gt(cls, value) -> "SearchPredicate":
        return cls("gt", value=value)

    @classmethod
    def le(cls, value) -> "SearchPredicate":
        return cls("le", value=value)

    @classmethod
    def lt(cls, value) -> "SearchPredicate":
        return cls("lt", value=value)

    @classmethod
    def between(cls, low, high) -> "SearchPredicate":
        return cls("between", low=low, high=high)

    @classmethod
    def parse(cls, text: str) -> "SearchPredicate":
        """Parse the CLI grammar: ``= foo`` (or ``== foo``), ``>= 10``,
        ``< 2.5``, ``between 3 7``, or a bare literal (equality).
        Quote a literal (``'10'``) to force a string."""
        stripped = text.strip()
        if not stripped:
            raise QueryError("empty predicate")
        lowered = stripped.lower()
        if lowered.startswith("between"):
            tokens = stripped[len("between"):].split()
            if len(tokens) != 2:
                raise QueryError(
                    "between needs exactly two operands: 'between LOW HIGH'"
                )
            return cls.between(_literal(tokens[0]), _literal(tokens[1]))
        for token, op in _OP_TOKENS:
            if stripped.startswith(token):
                operand = stripped[len(token):].strip()
                if not operand:
                    raise QueryError(f"missing operand after {token!r}")
                return cls(op, value=_literal(operand))
        return cls.eq(_literal(stripped))

    # -- semantics ------------------------------------------------------

    @property
    def is_string(self) -> bool:
        sample = self.low if self.op == "between" else self.value
        return isinstance(sample, str)

    def matches(self, candidate) -> bool:
        """Whether an *indexed* value satisfies this predicate."""
        if isinstance(candidate, bool) or not isinstance(
            candidate, (int, float, str)
        ):
            return False
        if isinstance(candidate, str) != self.is_string:
            return False
        if self.op == "eq":
            return candidate == self.value
        if self.op == "ge":
            return candidate >= self.value  # type: ignore[operator]
        if self.op == "gt":
            return candidate > self.value  # type: ignore[operator]
        if self.op == "le":
            return candidate <= self.value  # type: ignore[operator]
        if self.op == "lt":
            return candidate < self.value  # type: ignore[operator]
        return self.low <= candidate <= self.high  # type: ignore[operator]

    def bounds(self) -> Tuple[bytes, bytes]:
        """Canonical encoded scan bounds for range-shaped predicates.

        Strict bounds (``gt``/``lt``) scan *inclusively* from/to the
        operand's encoding — the boundary value's entry rides along in
        the proof as the omission-detecting neighbor, and both server
        and verifier re-exclude it via :meth:`matches`.
        """
        if self.op == "eq":
            raise QueryError("equality predicates have no scan bounds")
        type_min = STRING_MIN if self.is_string else NUMERIC_MIN
        type_max = STRING_MAX if self.is_string else NUMERIC_MAX
        if self.op == "between":
            return (
                encode_search_value(self.low),
                encode_search_value(self.high),
            )
        pivot = encode_search_value(self.value)
        if self.op in ("ge", "gt"):
            return pivot, type_max
        return type_min, pivot

    def describe(self) -> str:
        if self.op == "between":
            return f"between {self.low!r} {self.high!r}"
        symbol = {"eq": "==", "ge": ">=", "gt": ">", "le": "<=", "lt": "<"}
        return f"{symbol[self.op]} {self.value!r}"

    def to_payload(self) -> dict:
        """Wire shape (plain JSON scalars)."""
        payload: dict = {"op": self.op}
        if self.op == "between":
            payload["low"] = self.low
            payload["high"] = self.high
        else:
            payload["value"] = self.value
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SearchPredicate":
        return cls(
            op=payload["op"],
            value=payload.get("value"),
            low=payload.get("low"),
            high=payload.get("high"),
        )


def _literal(token: str):
    """CLI literal: quoted → string; else int, float, string."""
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "\"'":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        value = float(token)
    except ValueError:
        return token
    return value


#: Match rows as carried in the proof: ``(encoded value, postings)``
#: in encoded-value order — the canonical result ordering.
Matches = Tuple[Tuple[bytes, Tuple[bytes, ...]], ...]


@dataclass(frozen=True)
class SearchProof:
    """Verifiable answer to one search predicate (see module doc)."""

    column: str
    predicate: SearchPredicate
    matches: Matches
    anchor: LedgerProof
    evidence: Optional[Union[SiriProof, PosRangeProof]]

    @property
    def ukeys(self) -> Tuple[bytes, ...]:
        """All matched universal keys, flattened in canonical order."""
        return tuple(
            ukey for _value, postings in self.matches for ukey in postings
        )

    @property
    def result_count(self) -> int:
        return sum(len(postings) for _value, postings in self.matches)

    @property
    def size_bytes(self) -> int:
        total = self.anchor.size_bytes + len(self.column)
        if self.evidence is not None:
            total += self.evidence.size_bytes
        for value, postings in self.matches:
            total += len(value) + sum(len(ukey) for ukey in postings)
        return total

    @property
    def label(self) -> str:
        return (
            f"search:{self.column}:{self.predicate.describe()}"
            f"@block{self.anchor.block.height}"
        )

    @property
    def cacheable_nodes(self) -> Tuple[bytes, ...]:
        """Index nodes eligible for the verifier's node cache."""
        nodes = tuple(self.anchor.siri.nodes)
        if self.evidence is not None:
            nodes += tuple(self.evidence.nodes)
        return nodes

    def verify(
        self,
        trusted_chain_digest: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        """True iff the claimed matches are the complete, authentic
        answer under the trusted chain digest.  Every tamper shape —
        dropped/fabricated match, narrowed range, stale root,
        undecodable node — returns ``False``; nothing raises."""
        try:
            if self.anchor.key != SEARCH_ROOT_KEY:
                return False
            if not self.anchor.verify(
                trusted_chain_digest, node_cache, block_cache
            ):
                return False
            raw_manifest = self.anchor.value
            if raw_manifest is None:
                # Proven absence of the manifest: the ledger has no
                # search plane, so no claim can be supported.
                return False
            manifest = decode_manifest(raw_manifest)
            root = manifest.get(self.column)
            if root is None:
                # The manifest is exhaustive and hash-bound, so a
                # missing column *proves* it is unindexed — the only
                # supportable claim is the empty result.
                return self.matches == () and self.evidence is None
            if self.predicate.op == "eq":
                return self._verify_point(root, node_cache)
            return self._verify_range(root, node_cache)
        except _SEARCH_VERIFY_ERRORS:
            return False

    def _verify_point(self, root: Digest, node_cache: Optional[dict]) -> bool:
        evidence = self.evidence
        if not isinstance(evidence, SiriProof):
            return False
        key = encode_search_value(self.predicate.value)
        if evidence.key != key:
            return False
        if not PosTree.verify_proof(evidence, root, node_cache):
            return False
        if evidence.value is None:
            return self.matches == ()
        postings = decode_postings(evidence.value)
        return self.matches == ((key, postings),)

    def _verify_range(self, root: Digest, node_cache: Optional[dict]) -> bool:
        evidence = self.evidence
        if not isinstance(evidence, PosRangeProof):
            return False
        low, high = self.predicate.bounds()
        if evidence.low != low or evidence.high != high:
            return False
        if not evidence.verify(root, node_cache):
            return False
        expected: List[Tuple[bytes, Tuple[bytes, ...]]] = []
        for key, raw in evidence.entries:
            value = decode_search_value(key)
            if self.predicate.matches(value):
                expected.append((key, decode_postings(raw)))
        return self.matches == tuple(expected)


def build_search_proof(
    ledger, index, column: str, predicate: SearchPredicate
) -> SearchProof:
    """Build one search proof against the current sealed state.

    ``ledger`` must already hold the manifest under the reserved key
    (:meth:`SpitzDatabase.search_verified` seals it first); ``index``
    is the :class:`~repro.search.committed.CommittedSearchIndex`.
    Shared by the database facade and the benchmark's bulk-built path.
    """
    manifest, anchor = ledger.get_with_proof(SEARCH_ROOT_KEY)
    if manifest is None:
        raise QueryError(
            "search index root is not sealed in the ledger; commit (or "
            "flush) at least once with search enabled"
        )
    tree = index.tree(column)
    if tree is None:
        return SearchProof(column, predicate, (), anchor, None)
    if predicate.op == "eq":
        key = encode_search_value(predicate.value)
        raw, evidence = tree.get_with_proof(key)
        matches: Matches = (
            ((key, decode_postings(raw)),) if raw is not None else ()
        )
        return SearchProof(column, predicate, matches, anchor, evidence)
    low, high = predicate.bounds()
    entries, evidence = tree.scan_with_proof(low, high)
    matches = tuple(
        (key, decode_postings(raw))
        for key, raw in entries
        if predicate.matches(decode_search_value(key))
    )
    return SearchProof(column, predicate, matches, anchor, evidence)


def evaluate_on_inverted(
    inverted, column: str, predicate: SearchPredicate
) -> List[bytes]:
    """Unverified evaluation straight off the inverted index.

    Returns universal keys in the index's deterministic order (value
    order, then ukey order).  A predicate whose type does not match
    the column's yields no matches, mirroring the verified path.
    """
    try:
        if predicate.op == "eq":
            return inverted.lookup(column, predicate.value)
        if predicate.op == "between":
            return inverted.range(column, predicate.low, predicate.high)
        if predicate.is_string:
            type_min: object = ""
            type_max: object = "\U0010ffff" * 4
        else:
            type_min, type_max = float("-inf"), float("inf")
        if predicate.op in ("ge", "gt"):
            ukeys = inverted.range(column, predicate.value, type_max)
        else:
            ukeys = inverted.range(column, type_min, predicate.value)
        if predicate.op in ("gt", "lt"):
            # Results concatenate per-value posting blocks in value
            # order, so the boundary value's postings are exactly the
            # leading (gt) or trailing (lt) block — slice it off
            # positionally.  Subtracting by ukey bytes would also drop
            # a ukey that legitimately recurs under another value.
            boundary = len(inverted.lookup(column, predicate.value))
            if boundary:
                ukeys = (
                    ukeys[boundary:]
                    if predicate.op == "gt"
                    else ukeys[:-boundary]
                )
        return ukeys
    except TypeError:
        # Predicate type vs column type mismatch inside the posting
        # structure (e.g. a string bound against a skip list).
        return []


__all__ = [
    "Matches",
    "SearchPredicate",
    "SearchProof",
    "build_search_proof",
    "evaluate_on_inverted",
]
