"""Prometheus text-format exposition of the metrics registry.

Renders the whole registry — counters, gauges, histogram buckets with
cumulative ``le`` labels, windowed rates from the telemetry plane, and
per-shard series under a ``shard="NN"`` label — in the Prometheus
text format (version 0.0.4).  Served as ``GET /metrics`` on the
service plane and printed by ``spitz stats --prom``.

Also ships :func:`parse_prometheus`, a deliberately small strict
parser used by CI to validate live scrapes: it rejects duplicate
series, malformed names, and unparsable values, and lets the workflow
assert counter monotonicity across two scrapes
(``python -m repro.obs.exposition scrape1.txt scrape2.txt``).
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import BUCKET_BOUNDS

#: Content type Prometheus scrapers expect for the text format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SERIES_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)


def _metric_name(name: str, prefix: str) -> str:
    """Registry name -> Prometheus name: dots become underscores."""
    flat = name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{flat}" if prefix else flat


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


class _Renderer:
    """Accumulates lines, emitting each ``# TYPE`` header only once
    per metric name (shard-labelled series of the same name share
    one header)."""

    def __init__(self):
        self.lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def declare(self, name: str, kind: str) -> None:
        seen = self._typed.get(name)
        if seen is None:
            self._typed[name] = kind
            self.lines.append(f"# TYPE {name} {kind}")
        elif seen != kind:
            raise ValueError(
                f"metric {name} declared as both {seen} and {kind}"
            )

    def sample(
        self, name: str,
        labels: List[Tuple[str, str]],
        value: float,
    ) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_fmt(value)}")


def _render_registry(
    out: _Renderer,
    snapshot: Dict[str, Dict[str, object]],
    prefix: str,
    extra_labels: List[Tuple[str, str]],
) -> None:
    """Render one registry exposition snapshot (see
    ``MetricsRegistry.exposition_snapshot``)."""
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, prefix)
        # Prometheus counter convention, without doubling it for
        # registry names that already end in "total" (requests.total).
        if not metric.endswith("_total"):
            metric += "_total"
        out.declare(metric, "counter")
        out.sample(metric, extra_labels, float(value))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, prefix)
        out.declare(metric, "gauge")
        out.sample(metric, extra_labels, float(value))
    for name, state in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, prefix)
        out.declare(metric, "histogram")
        buckets = state.get("buckets", {})
        count = int(state.get("count", 0))
        total = float(state.get("sum", 0.0) or 0.0)
        cumulative = 0
        for index in sorted(buckets):
            cumulative += buckets[index]
            bound = (
                BUCKET_BOUNDS[index]
                if index < len(BUCKET_BOUNDS)
                else BUCKET_BOUNDS[-1]
            )
            out.sample(
                f"{metric}_bucket",
                extra_labels + [("le", _fmt(float(bound)))],
                float(cumulative),
            )
        out.sample(
            f"{metric}_bucket",
            extra_labels + [("le", "+Inf")],
            float(count),
        )
        out.sample(f"{metric}_sum", extra_labels, total)
        out.sample(f"{metric}_count", extra_labels, float(count))


def _render_windows(
    out: _Renderer,
    windows: Dict[str, object],
    prefix: str,
) -> None:
    """Windowed rates and percentiles from
    ``TelemetryPlane.windows_snapshot()`` as labelled gauges."""
    for label, view in sorted(windows.get("windows", {}).items()):
        window_labels = [("window", label)]
        for name, rate in sorted(view.get("rates", {}).items()):
            metric = _metric_name(name, prefix) + "_rate"
            out.declare(metric, "gauge")
            out.sample(metric, window_labels, float(rate))
        for name, summary in sorted(view.get("histograms", {}).items()):
            if not summary.get("count"):
                continue
            base = _metric_name(name, prefix)
            for q in ("p50", "p95", "p99"):
                if q in summary:
                    metric = f"{base}_{q}"
                    out.declare(metric, "gauge")
                    out.sample(metric, window_labels, float(summary[q]))


def render_prometheus(
    snapshot: Dict[str, Dict[str, object]],
    windows: Optional[Dict[str, object]] = None,
    shards: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
    prefix: str = "spitz",
) -> str:
    """Render the full telemetry surface as Prometheus text.

    ``snapshot`` is the facade registry's ``exposition_snapshot()``;
    ``windows`` the telemetry plane's windowed view; ``shards`` maps
    shard id (``"00"``...) to that shard registry's exposition
    snapshot, rendered with a ``shard`` label.
    """
    out = _Renderer()
    _render_registry(out, snapshot, prefix, [])
    if windows:
        _render_windows(out, windows, prefix)
    for shard_id, shard_snapshot in sorted((shards or {}).items()):
        _render_registry(
            out, shard_snapshot, f"{prefix}_shard",
            [("shard", shard_id)],
        )
    return "\n".join(out.lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Strictly parse text-format exposition into series -> value.

    A series key is ``name{labels}`` verbatim.  Raises ``ValueError``
    on duplicate series, malformed metric names, or unparsable sample
    values — the properties CI asserts on live ``/metrics`` scrapes.
    """
    series: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SERIES_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        name, labels, value_text = match.groups()
        if not _NAME_RE.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        key = name + (labels or "")
        if key in series:
            raise ValueError(f"line {lineno}: duplicate series {key}")
        try:
            series[key] = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r} for {key}"
            ) from None
    return series


def check_monotone(
    before: Dict[str, float], after: Dict[str, float]
) -> List[str]:
    """Counter series (``*_total``) that moved backwards between two
    scrapes — empty list means monotone."""
    regressions = []
    for key, value in after.items():
        base = key.split("{", 1)[0]
        if not base.endswith("_total"):
            continue
        if key in before and value < before[key]:
            regressions.append(
                f"{key}: {before[key]} -> {value}"
            )
    return regressions


def _main(argv: List[str]) -> int:
    """CI validator: ``python -m repro.obs.exposition A.txt [B.txt]``.

    Validates each scrape; with two, additionally asserts counters
    are monotone from A to B.
    """
    if not argv:
        print("usage: python -m repro.obs.exposition SCRAPE [SCRAPE2]")
        return 2
    parsed = []
    for path in argv:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        series = parse_prometheus(text)
        if not series:
            print(f"{path}: no series")
            return 1
        print(f"{path}: {len(series)} series ok")
        parsed.append(series)
    if len(parsed) == 2:
        regressions = check_monotone(parsed[0], parsed[1])
        if regressions:
            for line in regressions:
                print(f"counter regression: {line}")
            return 1
        print("counters monotone across scrapes")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(_main(sys.argv[1:]))


__all__ = [
    "PROM_CONTENT_TYPE",
    "check_monotone",
    "parse_prometheus",
    "render_prometheus",
]
