"""Opt-in wall-clock sampling profiler over ``sys._current_frames()``.

A daemon thread wakes every ``interval`` seconds, snapshots every
thread's current frame stack, and aggregates *folded* stacks —
``thread;outer;...;leaf count`` lines, the input format of Brendan
Gregg's ``flamegraph.pl`` and of speedscope's folded importer.  Being
a sampler it observes wall-clock time (including lock waits and I/O,
which is what a served database mostly does), costs nothing between
samples, and never touches the instrumented hot paths.

Exposed as ``spitz profile`` (drive a workload under the profiler,
print folded output) and as the ``?profile_seconds=`` option on
``/v1/stats`` (sample the live server for a bounded interval, capped
at :data:`MAX_PROFILE_SECONDS`, and inline the report).

Overhead budget (DESIGN.md §6h): at the default 5ms interval the
sampler takes ~200 stack walks/second across all threads; the
``--figure obs`` ladder keeps the profiler-on read path within a few
percent of profiler-off.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional

#: Default sampling interval (seconds): 200 Hz.
DEFAULT_INTERVAL = 0.005

#: Upper bound on server-side ``?profile_seconds=`` requests.
MAX_PROFILE_SECONDS = 10.0


def _frame_label(frame) -> str:
    code = frame.f_code
    return (
        f"{code.co_name} "
        f"({os.path.basename(code.co_filename)}:{code.co_firstlineno})"
    )


class SamplingProfiler:
    """Aggregating wall-clock stack sampler.

    ``start()`` launches the sampling thread; ``stop()`` joins it.
    :meth:`folded` returns the aggregate at any point — also while
    running, since aggregation happens under a lock per sample.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._lock = threading.Lock()
        self._stacks: Dict[str, int] = {}
        self._samples = 0
        self._started_at: Optional[float] = None
        self._elapsed = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling -------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample of every thread except the sampler itself."""
        me = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        folded: List[str] = []
        for ident, frame in frames.items():
            if ident == me:
                continue
            stack: List[str] = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            stack.reverse()
            thread_name = names.get(ident, f"thread-{ident}")
            folded.append(";".join([thread_name] + stack))
        with self._lock:
            self._samples += 1
            for key in folded:
                self._stacks[key] = self._stacks.get(key, 0) + 1

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="spitz-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._started_at is not None:
            self._elapsed += time.monotonic() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- output ---------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def folded(self, limit: Optional[int] = None) -> str:
        """Flamegraph-compatible folded stacks, hottest first."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        if limit is not None:
            items = items[:limit]
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def report(self, limit: int = 40) -> Dict[str, object]:
        """JSON-ready summary for ``/v1/stats?profile_seconds=``."""
        with self._lock:
            samples = self._samples
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )[:limit]
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += time.monotonic() - self._started_at
        return {
            "interval": self.interval,
            "samples": samples,
            "elapsed": round(elapsed, 3),
            "unique_stacks": len(self._stacks),
            "hottest": [
                {"stack": stack, "count": count} for stack, count in items
            ],
        }


def profile_duration(
    seconds: float, interval: float = DEFAULT_INTERVAL
) -> SamplingProfiler:
    """Sample for a bounded wall-clock duration and return the
    (stopped) profiler.  Used by the server's ``?profile_seconds=``."""
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    time.sleep(seconds)
    profiler.stop()
    return profiler


__all__ = [
    "DEFAULT_INTERVAL",
    "MAX_PROFILE_SECONDS",
    "SamplingProfiler",
    "profile_duration",
]
