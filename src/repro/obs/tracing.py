"""Propagating tracing spans over the metrics registry.

A span times one named operation.  Unlike the first-generation tracer
(per-thread only, parent tracked by *name*), spans now carry real
identity — ``trace_id``/``span_id``/``parent_id`` — plus a status
(``ok``/``error``/``shed``) and key-value attributes, so a trace can
follow one request across thread boundaries: the client thread opens
the root ``client.submit`` span inside the message queue, the
:class:`~repro.core.node.Envelope` carries that span across the
queue, and the processor node's serve thread parents its
``node.serve`` span under it.

Completed spans do three things:

1. feed the histogram ``span.<name>`` in the owning
   :class:`~repro.obs.metrics.MetricsRegistry` (so p50/p95/p99 of any
   traced stage appear in every metrics snapshot),
2. land in a bounded per-tracer ring buffer (:meth:`Tracer.recent`),
   and
3. accumulate under their ``trace_id``; when the trace's *root* span
   finishes, the whole tree is assembled into a :class:`Trace` (with
   per-stage self-time attribution) and handed to the registry's
   :class:`~repro.obs.flight.FlightRecorder`.

Two entry points with different costs:

- :meth:`Tracer.span` — a full span: always recorded, creates a new
  trace when no parent exists.  Use for request-level operations
  (``client.submit``, ``node.serve``).
- :meth:`Tracer.stage` — a *child-only* span for hot leaf stages
  (``chunks.put``, ``wal.fsync``, ``ledger.append``...).  Inside an
  active trace it records a real child span; outside one it only
  observes the ``span.<name>`` histogram, so bulk-load write paths
  never flood the trace buffers with single-span traces.

Thread propagation model: each thread keeps a stack of active spans
(``span``/``stage`` push and pop around their body).  Cross-thread
parenting is explicit — pass ``parent=`` a :class:`Span` or
:class:`SpanContext` captured on the other side of the boundary.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

#: Span statuses.  ``shed`` marks an envelope completed-unprocessed
#: after its client deadline expired (see DESIGN.md §6c).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span — what crosses thread (and,
    conceptually, process) boundaries to parent remote children."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One traced operation (mutable while open, inert once finished)."""

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float = 0.0
    status: str = STATUS_OK
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value


@dataclass
class Trace:
    """A completed span tree, finalized when its root span finished.

    ``stages`` attributes the end-to-end time to stage names by *self
    time* (a span's duration minus its children's), clamped and — in
    the rare case clock jitter makes children overrun their parent —
    scaled so the stage durations always sum to at most the root
    span's duration.  That invariant is what makes the critical-path
    table trustworthy: fractions of end-to-end time per stage can
    never add up past 100%.
    """

    root: Span
    spans: List[Span]
    children: Dict[int, List[Span]]
    stages: Dict[str, float]

    @property
    def trace_id(self) -> int:
        return self.root.trace_id

    @property
    def kind(self) -> Optional[str]:
        kind = self.root.attributes.get("kind")
        return str(kind) if kind is not None else None

    @property
    def status(self) -> str:
        return self.root.status

    @property
    def duration(self) -> float:
        return self.root.duration

    def children_of(self, span: Span) -> List[Span]:
        return self.children.get(span.span_id, [])

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (the shape ``spitz trace --json``,
        the STATS extension and the bench harness all emit)."""
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "status": self.status,
            "duration_seconds": self.duration,
            "stages": dict(self.stages),
            "root": self._span_dict(self.root),
        }

    def _span_dict(self, span: Span) -> Dict[str, object]:
        return {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "duration_seconds": span.duration,
            "status": span.status,
            "attributes": dict(span.attributes),
            "children": [
                self._span_dict(child) for child in self.children_of(span)
            ],
        }

    def render(self) -> str:
        """Indented one-line-per-span tree for terminals."""
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{key}={_fmt_attr(value)}"
                for key, value in sorted(span.attributes.items())
            )
            lines.append(
                "  " * depth
                + f"{span.name}  {span.duration * 1e3:.3f}ms  {span.status}"
                + (f"  {attrs}" if attrs else "")
            )
            for child in self.children_of(span):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def _fmt_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def build_trace(spans: Sequence[Span]) -> Optional[Trace]:
    """Assemble finished spans (sharing one trace_id) into a tree."""
    root: Optional[Span] = None
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is None:
            root = span
        else:
            children.setdefault(span.parent_id, []).append(span)
    if root is None:
        return None
    for kids in children.values():
        kids.sort(key=lambda span: span.start)
    stages: Dict[str, float] = {}
    for span in spans:
        child_total = sum(
            child.duration for child in children.get(span.span_id, ())
        )
        self_time = span.duration - child_total
        if self_time < 0.0:
            self_time = 0.0
        stages[span.name] = stages.get(span.name, 0.0) + self_time
    total = sum(stages.values())
    if total > root.duration > 0.0:
        scale = root.duration / total
        stages = {name: seconds * scale for name, seconds in stages.items()}
    return Trace(root=root, spans=list(spans), children=children,
                 stages=stages)


class _NoopContext:
    """Shared do-nothing span context manager (disabled registries)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_CONTEXT = _NoopContext()


class _ActiveSpan:
    """Context manager running one span on the current thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Optional[Span]:
        if self._span is not None:
            self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        if span is None:
            return False
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if exc_type is not None and span.status == STATUS_OK:
            span.status = STATUS_ERROR
        self._tracer.finish(span)
        return False


class _HistogramStage:
    """Histogram-only timing for a stage outside any active trace."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram

    def __enter__(self):
        self._start = time.perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb):
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class Tracer:
    """Allocates, nests and records spans; assembles finished traces.

    ``flight`` (a :class:`~repro.obs.flight.FlightRecorder`) receives
    every finalized trace.  ``max_open_traces`` bounds memory held for
    traces whose root never finishes (a leaked root is a bug, but it
    must not become a leak here): the oldest open trace is evicted
    once the bound is hit.
    """

    def __init__(
        self,
        registry,
        capacity: int = 512,
        flight=None,
        max_open_traces: int = 1024,
    ):
        self._registry = registry
        self._spans: Deque[Span] = deque(maxlen=capacity)
        #: name -> pre-bound ``span.<name>`` histogram.  Stage sites on
        #: hot read paths (``ledger.prove``, ``verifier.verify``) go
        #: through here every operation; paying an f-string plus the
        #: registry lock per call costs several µs/op, which is what
        #: the <5% instrumentation budget is spent guarding against.
        self._stage_hists: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._active = threading.local()
        self._next_id = 1
        #: trace_id -> finished spans awaiting their root.
        self._open: Dict[int, List[Span]] = {}
        self._max_open = max_open_traces
        self.flight = flight

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def _stage_histogram(self, name: str):
        # Benign race: two threads may both miss, but the registry
        # hands back the same instrument for the same name.
        hist = self._stage_hists.get(name)
        if hist is None:
            hist = self._registry.histogram("span." + name)
            self._stage_hists[name] = hist
        return hist

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        return stack

    def current_context(self) -> Optional[SpanContext]:
        """This thread's active span context (None outside any span)."""
        stack = getattr(self._active, "stack", None)
        return stack[-1].context if stack else None

    def _allocate(self, name, parent, attributes) -> Span:
        with self._lock:
            span_id = self._next_id
            if parent is None:
                trace_id = self._next_id + 1
                self._next_id += 2
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
                self._next_id += 1
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=time.perf_counter(),
            attributes=dict(attributes) if attributes else {},
        )

    def start_span(
        self,
        name: str,
        parent: Optional[object] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Optional[Span]:
        """Open a span for manual :meth:`finish` (cross-thread roots).

        ``parent`` is a :class:`Span` or :class:`SpanContext`; when
        None the current thread's active span (if any) is used, and
        with no active span a fresh trace begins.  Returns None on a
        disabled registry (``finish(None)`` is a no-op).
        """
        if not self._registry.enabled:
            return None
        if parent is None:
            stack = getattr(self._active, "stack", None)
            if stack:
                parent = stack[-1]
        return self._allocate(name, parent, attributes)

    def finish(self, span: Optional[Span], status: Optional[str] = None) -> None:
        """Close ``span``: record it and, if it was the trace root,
        finalize the trace and hand it to the flight recorder."""
        if span is None or not self._registry.enabled:
            return
        span.duration = time.perf_counter() - span.start
        if status is not None:
            span.status = status
        self._stage_histogram(span.name).observe(span.duration)
        finished: Optional[List[Span]] = None
        with self._lock:
            self._spans.append(span)
            bucket = self._open.get(span.trace_id)
            if bucket is None:
                bucket = self._open[span.trace_id] = []
            bucket.append(span)
            if span.parent_id is None:
                finished = self._open.pop(span.trace_id)
            elif len(self._open) > self._max_open:
                # Evict the oldest open trace (insertion order) that is
                # not the one just touched.
                for stale in self._open:
                    if stale != span.trace_id:
                        del self._open[stale]
                        break
        if finished is not None:
            trace = build_trace(finished)
            if trace is not None and self.flight is not None:
                self.flight.record(trace)

    def span(
        self,
        name: str,
        parent: Optional[object] = None,
        attributes: Optional[Dict[str, object]] = None,
    ):
        """Context manager timing one full span (roots a new trace when
        there is no parent).  Yields the :class:`Span` (or None when
        disabled); an escaping exception marks it ``error``."""
        if not self._registry.enabled:
            return _NOOP_CONTEXT
        return _ActiveSpan(
            self, self.start_span(name, parent=parent, attributes=attributes)
        )

    def stage(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
    ):
        """Child-only span for hot leaf stages.

        Inside an active trace: a real child span.  Outside one: only
        the ``span.<name>`` histogram is observed — no trace-buffer
        traffic, which is what keeps bulk loads (thousands of
        ``chunks.put`` calls per second with no request in flight)
        cheap and the flight recorder free of single-span noise.
        """
        if not self._registry.enabled:
            return _NOOP_CONTEXT
        stack = getattr(self._active, "stack", None)
        if not stack:
            return _HistogramStage(self._stage_histogram(name))
        return _ActiveSpan(
            self, self._allocate(name, stack[-1], attributes)
        )

    def stage_in_trace(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
    ):
        """Like :meth:`stage`, but a complete no-op outside an active
        trace — for call sites too hot to pay even histogram-only
        timing per operation (e.g. ``chunks.put``, which sits under
        every index-node write during bulk loads)."""
        if not self._registry.enabled:
            return _NOOP_CONTEXT
        stack = getattr(self._active, "stack", None)
        if not stack:
            return _NOOP_CONTEXT
        return _ActiveSpan(
            self, self._allocate(name, stack[-1], attributes)
        )

    # -- inspection -----------------------------------------------------

    def recent(self, name: Optional[str] = None) -> List[Span]:
        """Most recent completed spans, oldest first."""
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def open_trace_count(self) -> int:
        with self._lock:
            return len(self._open)

    # -- pickling -------------------------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        del state["_active"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._active = threading.local()
