"""Lightweight tracing spans over the metrics registry.

A span times one named operation.  Completed spans do two things:

1. feed the histogram ``span.<name>`` in the owning
   :class:`~repro.obs.metrics.MetricsRegistry` (so p50/p95/p99 of any
   traced operation appear in every metrics snapshot), and
2. land in a small per-tracer ring buffer with their parent span, so a
   test or an operator can see *request shapes* — e.g. that one
   ``node.serve`` span contains a ``request.handle`` child which
   contains a ``db.commit`` child.

Nesting is tracked per thread (each processor node serves from its own
thread), with no context propagation across threads — this is a
single-process reproduction, not a distributed tracer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, List, Optional


@dataclass(frozen=True)
class Span:
    """One completed traced operation."""

    name: str
    parent: Optional[str]
    start: float
    duration: float


class Tracer:
    """Records nested spans into a bounded ring buffer."""

    def __init__(self, registry, capacity: int = 512):
        self._registry = registry
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._active = threading.local()

    @contextmanager
    def span(self, name: str):
        """Time one operation; records on exit even if it raises."""
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        parent = stack[-1] if stack else None
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            self._registry.histogram(f"span.{name}").observe(duration)
            if self._registry.enabled:
                with self._lock:
                    self._spans.append(
                        Span(
                            name=name,
                            parent=parent,
                            start=start,
                            duration=duration,
                        )
                    )

    def recent(self, name: Optional[str] = None) -> List[Span]:
        """Most recent completed spans, oldest first."""
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    # -- pickling -------------------------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        del state["_active"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._active = threading.local()
