"""Dependency-free metrics: counters, gauges, log-bucketed histograms.

Section 6 of the paper evaluates Spitz entirely through latency,
throughput and proof-size measurements; ForkBase (PVLDB'18) quantifies
its claims through per-operation counters (dedup ratios, node reuse).
This module is the reproduction's measurement substrate: every layer
holds a :class:`MetricsRegistry` and records into it, and the same
snapshot is served three ways — a ``RequestKind.STATS`` request, the
``spitz stats`` CLI subcommand, and the benchmark harness's JSON
output.

Design constraints, in order:

1. **Zero dependencies** — stdlib only, like the rest of the repo.
2. **Cheap on hot paths** — instruments are pre-bound objects (one
   lock acquire + one arithmetic op per event); the raw storage-layer
   point read is deliberately *not* instrumented per-operation, which
   is what keeps ``bench_fig6_read`` overhead under the 5% budget
   guarded in ``tests/integration/test_bench_shapes.py``.
3. **Deterministic summaries** — histograms use fixed geometric
   buckets (factor ``2**(1/4)``), so p50/p95/p99 are reproducible
   functions of the observed values, never sampled.
4. **Picklable** — databases are snapshotted with ``pickle``
   (checkpoints, the legacy snapshot CLI), so the registry drops its
   lock on ``__getstate__`` and re-creates it on ``__setstate__``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional

#: Geometric bucket upper bounds: 2**(k/4) for k in [-120, 160] covers
#: ~1e-9 (nanosecond latencies) through ~1e12 (giga-byte sizes) with
#: ~19% relative resolution per bucket.
_BUCKET_BOUNDS: List[float] = [2.0 ** (k / 4.0) for k in range(-120, 161)]

#: Public alias: the time-series and exposition layers translate
#: bucket *indexes* (what :meth:`Histogram.bucket_snapshot` carries)
#: back into upper bounds with this table.
BUCKET_BOUNDS: List[float] = _BUCKET_BOUNDS


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        # Read under the shared lock: an unlocked read can observe a
        # torn update on implementations without atomic ints and, more
        # practically, lets a reader interleave between the ``+=``'s
        # load and store — the same class of race PR 4 fixed for
        # ``Histogram.percentile``/``summary``.
        with self._lock:
            return self._value

    def __getstate__(self):
        return (self.name, self._value)

    def __setstate__(self, state):
        self.name, self._value = state
        # Re-linked to the registry's shared lock by
        # MetricsRegistry.__setstate__ right after unpickling.
        self._lock = threading.Lock()


class Gauge:
    """A point-in-time value (queue depth, cache size, dedup ratio)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __getstate__(self):
        return (self.name, self._value)

    def __setstate__(self, state):
        self.name, self._value = state
        self._lock = threading.Lock()


class Histogram:
    """Fixed-bucket histogram with deterministic percentile summaries.

    Values land in geometric buckets (see :data:`_BUCKET_BOUNDS`);
    ``percentile(q)`` returns the upper bound of the bucket holding the
    rank-``q`` observation, clamped to the exact observed min/max, so
    two runs that observe the same values report the same p50/p95/p99.
    """

    __slots__ = ("name", "_lock", "_buckets", "count", "total", "min", "max")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect_left(_BUCKET_BOUNDS, value)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def _state(self):
        """Consistent copy of mutable state, taken under the lock.

        Readers (``percentile``/``summary``) must never iterate
        ``self._buckets`` live: a concurrent ``observe`` inserting a
        fresh bucket raises ``RuntimeError: dictionary changed size
        during iteration`` — seen in practice when a STATS snapshot
        races a hot write path.
        """
        with self._lock:
            return dict(self._buckets), self.count, self.min, self.max, \
                self.total

    @staticmethod
    def _rank_estimate(buckets, count, lo, hi, q: float) -> Optional[float]:
        rank = max(1, int(q * count + 0.999999))
        seen = 0
        for index in sorted(buckets):
            seen += buckets[index]
            if seen >= rank:
                bound = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS)
                    else hi
                )
                assert lo is not None and hi is not None
                return min(max(bound, lo), hi)
        return hi

    def percentile(self, q: float) -> Optional[float]:
        """Deterministic rank-``q`` estimate (``q`` in (0, 1])."""
        buckets, count, lo, hi, _ = self._state()
        if count == 0:
            return None
        return self._rank_estimate(buckets, count, lo, hi, q)

    def bucket_snapshot(self) -> Dict[str, object]:
        """Raw bucket state, consistently copied under the lock.

        The time-series layer diffs successive copies to get per-window
        bucket deltas, and the Prometheus exposition renders them as
        cumulative ``le`` buckets; ``summary()`` alone is too lossy for
        either (no per-bucket counts).
        """
        buckets, count, lo, hi, total = self._state()
        return {
            "buckets": buckets,
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
        }

    def summary(self) -> Dict[str, float]:
        buckets, count, lo, hi, total = self._state()
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "p50": self._rank_estimate(buckets, count, lo, hi, 0.50),
            "p95": self._rank_estimate(buckets, count, lo, hi, 0.95),
            "p99": self._rank_estimate(buckets, count, lo, hi, 0.99),
        }

    def __getstate__(self):
        return (
            self.name, self._buckets, self.count, self.total,
            self.min, self.max,
        )

    def __setstate__(self, state):
        (
            self.name, self._buckets, self.count, self.total,
            self.min, self.max,
        ) = state
        self._lock = threading.Lock()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> Optional[float]:
        return None

    def summary(self) -> Dict[str, float]:
        return {"count": 0}

    def bucket_snapshot(self) -> Dict[str, object]:
        return {
            "buckets": {}, "count": 0, "sum": 0.0, "min": None, "max": None,
        }


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock.

    Instruments are created on first use and returned by reference, so
    hot paths bind them once (``self._c_commits =
    metrics.counter("db.commits")``) and pay one lock acquire per
    event.  A registry built with ``enabled=False`` hands out shared
    no-op instruments — the mechanism behind the "uninstrumented"
    configuration the overhead guard test compares against.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Imported here: tracing builds on the registry's histograms.
        from repro.obs.flight import FlightRecorder
        from repro.obs.tracing import Tracer

        self.flight = FlightRecorder()
        self.tracer = Tracer(self, flight=self.flight)

    # -- instrument factories (get-or-create) ---------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name, self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name, self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, self._lock)
                self._histograms[name] = instrument
            return instrument

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-serializable view of every instrument.

        This exact structure is what ``RequestKind.STATS``, ``spitz
        stats`` and the benchmark harness's JSON output all emit.
        """
        with self._lock:
            counters = {
                name: c._value for name, c in sorted(self._counters.items())
            }
            gauges = {
                name: g._value for name, g in sorted(self._gauges.items())
            }
            histogram_refs = sorted(self._histograms.items())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: h.summary() for name, h in histogram_refs
            },
        }

    def counter_values(self) -> Dict[str, int]:
        """Point-in-time copy of every counter (time-series sampling)."""
        with self._lock:
            return {name: c._value for name, c in self._counters.items()}

    def gauge_values(self) -> Dict[str, float]:
        with self._lock:
            return {name: g._value for name, g in self._gauges.items()}

    def histogram_states(self) -> Dict[str, Dict[str, object]]:
        """Raw bucket state of every histogram.

        References are copied under the registry lock, then each
        histogram copies its buckets under the same (shared) lock — the
        result is a consistent sample the time-series ticker can diff
        against its previous one.
        """
        with self._lock:
            refs = list(self._histograms.items())
        return {name: h.bucket_snapshot() for name, h in refs}

    def exposition_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything the Prometheus exposition needs in one pass:
        counters, gauges, and *bucket-level* histogram state (the
        regular :meth:`snapshot` carries only percentile summaries)."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": self.histogram_states(),
        }

    # -- pickling (snapshots/checkpoints pickle whole databases) --------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        lock = threading.Lock()
        self._lock = lock
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                instrument._lock = lock


def snapshot_delta(
    before: Dict[str, Dict[str, object]],
    after: Dict[str, Dict[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Counter/histogram-count deltas between two snapshots.

    Gauges are point-in-time, so the *after* value is reported as-is.
    The benchmark harness stores one delta per figure so a
    ``BENCH_*.json`` run carries "what the system did" alongside "how
    fast it went".
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        counters[name] = value - before.get("counters", {}).get(name, 0)
    histograms = {}
    for name, summary in after.get("histograms", {}).items():
        previous = before.get("histograms", {}).get(name, {"count": 0})
        histograms[name] = {
            "count": summary.get("count", 0) - previous.get("count", 0),
            "sum": summary.get("sum", 0.0) - previous.get("sum", 0.0),
            "p50": summary.get("p50"),
            "p95": summary.get("p95"),
            "p99": summary.get("p99"),
        }
    return {
        "counters": {k: v for k, v in counters.items() if v},
        "gauges": dict(after.get("gauges", {})),
        "histograms": {
            k: v for k, v in histograms.items() if v["count"]
        },
    }


#: Shared disabled registry: hand this to a component to opt out of
#: instrumentation entirely (no-op instruments, empty snapshots).
NULL_REGISTRY = MetricsRegistry(enabled=False)
