"""Observability layer: metrics registry and tracing spans.

The cluster-wide measurement substrate (see DESIGN.md, "Observability
layer").  Everything here is dependency-free and picklable; the same
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` structure is
served by ``RequestKind.STATS``, the ``spitz stats`` CLI subcommand,
and the benchmark harness's ``--json`` output.

Admission-control instruments (DESIGN.md, "Admission control"):
``queue.capacity`` (gauge; 0 = unbounded), ``queue.rejected_overload``
(submits refused fast under sustained overload) and ``queue.shed``
(accepted envelopes completed-unprocessed after their client deadline
expired).  Together with ``queue.submitted``, ``node.processed`` and
``cluster.failed_on_stop`` they close the accounting invariant:
processed + shed + failed-on-stop == submitted.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "Tracer",
    "snapshot_delta",
]
