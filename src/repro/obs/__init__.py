"""Observability layer: metrics registry, propagating tracer, flight
recorder.

The cluster-wide measurement substrate (see DESIGN.md, "Observability
layer" and "Tracing layer").  Everything here is dependency-free and
picklable; the same
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` structure is
served by ``RequestKind.STATS``, the ``spitz stats`` CLI subcommand,
and the benchmark harness's ``--json`` output.  Traces follow the same
three-surface rule: ``RequestKind.STATS`` with
``payload={"traces": true}``, ``spitz trace`` / ``spitz slowest``, and
the harness's per-figure stage breakdown.

Admission-control instruments (DESIGN.md, "Admission control"):
``queue.capacity`` (gauge; 0 = unbounded), ``queue.rejected_overload``
(submits refused fast under sustained overload) and ``queue.shed``
(accepted envelopes completed-unprocessed after their client deadline
expired).  Together with ``queue.submitted``, ``node.processed`` and
``cluster.failed_on_stop`` they close the accounting invariant:
processed + shed + failed-on-stop == submitted.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)
from repro.obs.tracing import Span, SpanContext, Trace, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "SpanContext",
    "Trace",
    "Tracer",
    "snapshot_delta",
]
