"""Observability layer: metrics registry and tracing spans.

The cluster-wide measurement substrate (see DESIGN.md, "Observability
layer").  Everything here is dependency-free and picklable; the same
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` structure is
served by ``RequestKind.STATS``, the ``spitz stats`` CLI subcommand,
and the benchmark harness's ``--json`` output.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "Tracer",
    "snapshot_delta",
]
