"""Observability layer: metrics registry, propagating tracer, flight
recorder.

The cluster-wide measurement substrate (see DESIGN.md, "Observability
layer" and "Tracing layer").  Everything here is dependency-free and
picklable; the same
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` structure is
served by ``RequestKind.STATS``, the ``spitz stats`` CLI subcommand,
and the benchmark harness's ``--json`` output.  Traces follow the same
three-surface rule: ``RequestKind.STATS`` with
``payload={"traces": true}``, ``spitz trace`` / ``spitz slowest``, and
the harness's per-figure stage breakdown.

The time-series telemetry plane (DESIGN.md §6h) layers live signals
over the cumulative substrate: :mod:`repro.obs.timeseries` (fixed-slot
windowed rates and percentiles), :mod:`repro.obs.slo` (multi-window
burn-rate health gating ``/readyz``), :mod:`repro.obs.exposition`
(Prometheus text format for ``GET /metrics``), and
:mod:`repro.obs.profiler` (opt-in folded-stack wall-clock sampler).

Admission-control instruments (DESIGN.md, "Admission control"):
``queue.capacity`` (gauge; 0 = unbounded), ``queue.rejected_overload``
(submits refused fast under sustained overload) and ``queue.shed``
(accepted envelopes completed-unprocessed after their client deadline
expired).  Together with ``queue.submitted``, ``node.processed`` and
``cluster.failed_on_stop`` they close the accounting invariant:
processed + shed + failed-on-stop == submitted.
"""

from repro.obs.exposition import (
    PROM_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    snapshot_delta,
)
from repro.obs.profiler import SamplingProfiler, profile_duration
from repro.obs.slo import SloEvaluator, SloObjective, default_objectives
from repro.obs.timeseries import TelemetryPlane, TimeSeries
from repro.obs.tracing import Span, SpanContext, Trace, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PROM_CONTENT_TYPE",
    "SamplingProfiler",
    "SloEvaluator",
    "SloObjective",
    "Span",
    "SpanContext",
    "TelemetryPlane",
    "TimeSeries",
    "Trace",
    "Tracer",
    "default_objectives",
    "parse_prometheus",
    "profile_duration",
    "render_prometheus",
    "snapshot_delta",
]
