"""Per-request-kind SLOs with multi-window burn-rate evaluation.

An SLO here is a statement like "GETs serve 99% of requests without
error" or "PUT p99 stays under 1s".  The evaluator measures each
objective over the *windowed* signals from
:class:`repro.obs.timeseries.TimeSeries` — never the cumulative
counters, which would take hours to recover from one bad minute — and
reports a **burn rate**: how fast the error budget is being spent
relative to plan.  Burn 1.0 means "exactly on budget"; burn 14.4 over
a 1m window means the monthly budget would be gone in two days.

The alerting rule is the standard multi-window, multi-burn-rate shape
(SRE workbook ch. 5), shrunk to two windows:

- ``critical`` (flips ``/readyz`` to 503) requires the burn to exceed
  ``hard_burn`` in **both** the fast (1m) and slow (10m) windows *and*
  the fast window to hold at least ``min_requests`` requests.  The
  fast window makes recovery quick — once the burst stops, 1m of
  clean traffic drops the fast burn and readiness returns even while
  the slow window is still hot.  The slow window keeps a 2-second
  blip from ever paging.  The volume gate keeps one failed request
  out of ten from tripping anything during quiet periods.
- ``warn`` is advisory only: hard burn in exactly one window.

Evaluated states and burns are exported as gauges on the cluster
registry (``slo.<name>.burn_fast`` etc.), so ``/metrics`` exposes the
whole SLO plane with no extra wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TimeSeries

#: Burn rate above which an objective is considered hard-burning.
#: 14.4x burn over a 30-day budget exhausts it in ~2 days — the
#: classic page-now threshold.
HARD_BURN = 14.4

#: Minimum requests in the fast window before an availability SLO may
#: go critical.  Below this, ratios are too noisy to act on.
MIN_REQUESTS = 25

STATE_OK = "ok"
STATE_WARN = "warn"
STATE_CRITICAL = "critical"

_STATE_CODES = {STATE_OK: 0, STATE_WARN: 1, STATE_CRITICAL: 2}


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective over a request kind.

    ``objective="availability"``: ``threshold`` is the error *budget*
    as a ratio (0.01 = 99% availability); burn = observed error ratio
    / budget.

    ``objective="latency"``: ``threshold`` is the target for the
    ``quantile`` latency in seconds; burn = observed quantile /
    target.  Latency burns use ``hard_burn=1.0`` by default — the
    threshold itself is the line.
    """

    name: str
    kind: str
    objective: str = "availability"
    threshold: float = 0.01
    quantile: float = 0.99
    hard_burn: float = HARD_BURN

    def __post_init__(self):
        if self.objective not in ("availability", "latency"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


def default_objectives() -> List[SloObjective]:
    """The stock SLO set for a served cluster.

    Budgets are deliberately loose (99% availability, generous p99
    targets): these gate *readiness*, and a flapping readyz is worse
    than a slow one.  Operators tighten per deployment.
    """
    objectives = [
        SloObjective(
            name=f"{kind}-availability", kind=kind,
            objective="availability", threshold=0.01,
        )
        for kind in ("get", "put", "multi_get")
    ]
    objectives.append(
        SloObjective(
            name="get-latency-p99", kind="get",
            objective="latency", threshold=0.5, quantile=0.99,
            hard_burn=1.0,
        )
    )
    objectives.append(
        SloObjective(
            name="put-latency-p99", kind="put",
            objective="latency", threshold=1.0, quantile=0.99,
            hard_burn=1.0,
        )
    )
    return objectives


@dataclass(frozen=True)
class SloStatus:
    """One objective's evaluated state at a point in time."""

    objective: SloObjective
    state: str
    fast_burn: float
    slow_burn: float
    fast_requests: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "objective": self.objective.objective,
            "threshold": self.objective.threshold,
            "state": self.state,
            "fast_burn": round(self.fast_burn, 4),
            "slow_burn": round(self.slow_burn, 4),
            "fast_requests": self.fast_requests,
            "detail": self.detail,
        }


class SloEvaluator:
    """Evaluates a set of objectives against a time series.

    ``evaluate()`` is called once per telemetry tick; queries between
    ticks read the cached statuses, so readiness checks never touch
    the slot ring.
    """

    def __init__(
        self,
        timeseries: "TimeSeries",
        objectives: List[SloObjective],
        fast_window: float = 60.0,
        slow_window: float = 600.0,
        min_requests: int = MIN_REQUESTS,
        registry: Optional["MetricsRegistry"] = None,
    ):
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError("duplicate objective names")
        self.timeseries = timeseries
        self.objectives = list(objectives)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.min_requests = min_requests
        self._statuses: List[SloStatus] = []
        self._gauges = {}
        if registry is not None:
            for obj in self.objectives:
                self._gauges[obj.name] = (
                    registry.gauge(f"slo.{obj.name}.burn_fast"),
                    registry.gauge(f"slo.{obj.name}.burn_slow"),
                    registry.gauge(f"slo.{obj.name}.state"),
                )

    # -- measurement ----------------------------------------------------

    def _availability_burn(
        self, obj: SloObjective, window: float
    ) -> Tuple[float, int]:
        """(burn rate, request volume) for an availability objective."""
        total = self.timeseries.count(f"requests.kind.{obj.kind}", window)
        if total <= 0:
            return 0.0, 0
        errors = self.timeseries.count(
            f"requests.kind.{obj.kind}.errors", window
        )
        return (errors / total) / obj.threshold, total

    def _latency_burn(
        self, obj: SloObjective, window: float
    ) -> Tuple[float, int]:
        """(burn rate, sample volume) for a latency objective."""
        buckets, count, _total = self.timeseries.window_histogram(
            f"request.kind.{obj.kind}.latency_seconds", window
        )
        if count <= 0:
            return 0.0, 0
        value = self.timeseries.percentile(
            f"request.kind.{obj.kind}.latency_seconds",
            obj.quantile, window,
        )
        if value is None:
            return 0.0, count
        del buckets
        return value / obj.threshold, count

    def evaluate(self) -> List[SloStatus]:
        """Re-measure every objective; cache and return the statuses."""
        statuses = []
        for obj in self.objectives:
            if obj.objective == "availability":
                fast_burn, fast_n = self._availability_burn(
                    obj, self.fast_window
                )
                slow_burn, _slow_n = self._availability_burn(
                    obj, self.slow_window
                )
            else:
                fast_burn, fast_n = self._latency_burn(obj, self.fast_window)
                slow_burn, _slow_n = self._latency_burn(obj, self.slow_window)
            fast_hot = fast_burn >= obj.hard_burn
            slow_hot = slow_burn >= obj.hard_burn
            enough = fast_n >= self.min_requests
            if fast_hot and slow_hot and enough:
                state = STATE_CRITICAL
                detail = (
                    f"burn {fast_burn:.1f}x (1m) / {slow_burn:.1f}x (10m) "
                    f"over {fast_n} requests"
                )
            elif (fast_hot or slow_hot) and enough:
                state = STATE_WARN
                detail = (
                    f"burn {fast_burn:.1f}x (1m) / {slow_burn:.1f}x (10m)"
                )
            else:
                state = STATE_OK
                detail = ""
            status = SloStatus(
                objective=obj, state=state,
                fast_burn=fast_burn, slow_burn=slow_burn,
                fast_requests=fast_n, detail=detail,
            )
            statuses.append(status)
            gauges = self._gauges.get(obj.name)
            if gauges is not None:
                g_fast, g_slow, g_state = gauges
                g_fast.set(round(fast_burn, 4))
                g_slow.set(round(slow_burn, 4))
                g_state.set(_STATE_CODES[state])
        self._statuses = statuses
        return statuses

    # -- cached queries --------------------------------------------------

    @property
    def statuses(self) -> List[SloStatus]:
        return list(self._statuses)

    def health(self) -> Tuple[bool, List[str]]:
        """(serve traffic?, reasons) from the last evaluation.

        Only ``critical`` objectives fail readiness; ``warn`` is
        surfaced in stats but keeps serving.
        """
        reasons = [
            f"{s.objective.name}: {s.detail}"
            for s in self._statuses
            if s.state == STATE_CRITICAL
        ]
        return not reasons, reasons

    def snapshot(self) -> Dict[str, object]:
        ok, reasons = self.health()
        return {
            "ok": ok,
            "reasons": reasons,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "min_requests": self.min_requests,
            "objectives": [s.to_dict() for s in self._statuses],
        }


__all__ = [
    "HARD_BURN",
    "MIN_REQUESTS",
    "STATE_CRITICAL",
    "STATE_OK",
    "STATE_WARN",
    "SloEvaluator",
    "SloObjective",
    "SloStatus",
    "default_objectives",
]
