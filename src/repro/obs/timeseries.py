"""Fixed-slot time-series windows over the metrics registry.

The registry (:mod:`repro.obs.metrics`) is *cumulative*: counters only
grow and histograms only accumulate, which answers "what has this
process done since boot" but not "what is the RPS / p99 / error rate
*right now*".  This module closes that gap without touching any hot
path: a :class:`TimeSeries` samples the registry at a fixed cadence
(the *tick*), stores per-slot **deltas** in a bounded ring, and answers
windowed queries by summing the slots that fall inside the window.

Design points:

- **Zero hot-path cost.**  Instruments are untouched; the only new
  work is one registry-wide sample per tick (a lock acquire and a dict
  copy), performed by a background thread the cluster owns.  The
  ``--figure obs`` bench ladder holds this under the repo's 5%
  read-path overhead budget.
- **Windowed percentiles by bucket-delta subtraction.**  Histograms
  are geometric fixed-bucket (:data:`~repro.obs.metrics.BUCKET_BOUNDS`),
  so the difference of two cumulative bucket vectors *is* the
  histogram of the interval between the samples.  Summing per-slot
  bucket deltas over a window yields the window's histogram, and the
  same deterministic rank walk the registry uses yields its p50/p99 —
  accurate to one ~19% bucket, guaranteed by a Hypothesis property
  test.
- **Deterministic clock injection.**  Like the token bucket
  (DESIGN.md §6e), the clock is a constructor argument; tests drive
  ``tick()`` with a fake clock and assert exact window contents — no
  sleeps.  An injected clock also switches :class:`TelemetryPlane`
  into manual mode (no background thread), so windows only ever move
  when the test says so.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry

#: Default sampling cadence, seconds per slot.
DEFAULT_SLOT_SECONDS = 1.0
#: Default ring length: 600 one-second slots = the 10m slow window.
DEFAULT_RETENTION_SLOTS = 600
#: The two SLO evaluation windows (seconds): fast trips quickly on an
#: error burst, slow keeps a burst from paging on a blip (DESIGN.md
#: §6h).
FAST_WINDOW_SECONDS = 60.0
SLOW_WINDOW_SECONDS = 600.0


@dataclass(frozen=True)
class _Slot:
    """One sampling interval's worth of activity."""

    #: Clock reading when the slot was sealed (its right edge).
    end: float
    #: Seconds covered by the slot (end minus the previous tick).
    elapsed: float
    #: Counter increments during the slot (zero deltas omitted).
    counters: Dict[str, int]
    #: Histogram activity during the slot: name -> (bucket index ->
    #: new observations, count delta, sum delta).
    histograms: Dict[str, Tuple[Dict[int, int], int, float]]


def _window_rank(buckets: Dict[int, int], count: int, q: float) -> float:
    """Rank-``q`` bucket upper bound over a merged window histogram.

    The registry's rank walk clamps to the exact observed min/max; a
    window has no min/max (only bucket deltas), so the answer here is
    the pure bucket bound — still within one geometric bucket of the
    exact quantile, which the property suite pins.
    """
    rank = max(1, int(q * count + 0.999999))
    seen = 0
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= rank:
            if index < len(BUCKET_BOUNDS):
                return BUCKET_BOUNDS[index]
            return BUCKET_BOUNDS[-1]
    return BUCKET_BOUNDS[-1]


class TimeSeries:
    """A ring of per-slot registry deltas answering windowed queries.

    ``tick()`` seals one slot: it samples every counter and histogram,
    diffs against the previous sample, and appends the delta.  Queries
    (:meth:`rate`, :meth:`percentile`, :meth:`window_counts`) sum the
    slots whose right edge lies inside ``[now - window, now]``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
        retention_slots: int = DEFAULT_RETENTION_SLOTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        if retention_slots < 1:
            raise ValueError("retention_slots must be positive")
        self._registry = registry
        self.slot_seconds = float(slot_seconds)
        self.retention_slots = int(retention_slots)
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: "deque[_Slot]" = deque(maxlen=retention_slots)
        self._last_counters: Dict[str, int] = {}
        self._last_histograms: Dict[str, Tuple[Dict[int, int], int, float]] = {}
        self._last_tick: Optional[float] = None
        self.ticks = 0

    # -- sampling -------------------------------------------------------

    def tick(self) -> None:
        """Seal one slot (no-op until the clock has advanced).

        The first tick establishes the baseline sample and seals
        nothing: a delta needs two samples.
        """
        now = self._clock()
        counters = self._registry.counter_values()
        histograms = {
            name: (state["buckets"], state["count"], state["sum"])
            for name, state in self._registry.histogram_states().items()
        }
        with self._lock:
            if self._last_tick is not None:
                elapsed = now - self._last_tick
                if elapsed <= 0:
                    return
                counter_deltas = {
                    name: value - self._last_counters.get(name, 0)
                    for name, value in counters.items()
                    if value - self._last_counters.get(name, 0)
                }
                hist_deltas = {}
                for name, (buckets, count, total) in histograms.items():
                    prev_buckets, prev_count, prev_total = (
                        self._last_histograms.get(name, ({}, 0, 0.0))
                    )
                    count_delta = count - prev_count
                    if not count_delta:
                        continue
                    bucket_deltas = {
                        index: buckets[index] - prev_buckets.get(index, 0)
                        for index in buckets
                        if buckets[index] - prev_buckets.get(index, 0)
                    }
                    hist_deltas[name] = (
                        bucket_deltas, count_delta, total - prev_total
                    )
                self._slots.append(
                    _Slot(
                        end=now,
                        elapsed=elapsed,
                        counters=counter_deltas,
                        histograms=hist_deltas,
                    )
                )
                self.ticks += 1
            self._last_tick = now
            self._last_counters = counters
            self._last_histograms = histograms

    # -- windowed queries -----------------------------------------------

    def _window_slots(self, window: float) -> Tuple[List[_Slot], float]:
        """Slots inside the window plus the seconds they cover."""
        now = self._clock()
        cutoff = now - window
        with self._lock:
            slots = [slot for slot in self._slots if slot.end > cutoff]
        return slots, sum(slot.elapsed for slot in slots)

    def window_counts(self, window: float) -> Tuple[Dict[str, int], float]:
        """(counter increments inside the window, seconds covered)."""
        slots, covered = self._window_slots(window)
        totals: Dict[str, int] = {}
        for slot in slots:
            for name, delta in slot.counters.items():
                totals[name] = totals.get(name, 0) + delta
        return totals, covered

    def count(self, name: str, window: float) -> int:
        """Counter increments for ``name`` inside the window."""
        slots, _covered = self._window_slots(window)
        return sum(slot.counters.get(name, 0) for slot in slots)

    def rate(self, name: str, window: float) -> float:
        """Per-second increment rate of counter ``name`` over the
        window (0.0 while the window holds no sealed slots)."""
        slots, covered = self._window_slots(window)
        if covered <= 0:
            return 0.0
        return sum(slot.counters.get(name, 0) for slot in slots) / covered

    def rates(self, window: float) -> Dict[str, float]:
        """Per-second rates of every counter active in the window."""
        totals, covered = self.window_counts(window)
        if covered <= 0:
            return {}
        return {name: total / covered for name, total in totals.items()}

    def window_histogram(
        self, name: str, window: float
    ) -> Tuple[Dict[int, int], int, float]:
        """Merged (buckets, count, sum) for ``name`` over the window."""
        slots, _covered = self._window_slots(window)
        buckets: Dict[int, int] = {}
        count = 0
        total = 0.0
        for slot in slots:
            delta = slot.histograms.get(name)
            if delta is None:
                continue
            slot_buckets, slot_count, slot_sum = delta
            for index, n in slot_buckets.items():
                buckets[index] = buckets.get(index, 0) + n
            count += slot_count
            total += slot_sum
        return buckets, count, total

    def percentile(
        self, name: str, q: float, window: float
    ) -> Optional[float]:
        """Windowed rank-``q`` estimate via bucket-delta subtraction."""
        buckets, count, _total = self.window_histogram(name, window)
        if count == 0:
            return None
        return _window_rank(buckets, count, q)

    def histogram_summary(
        self, name: str, window: float
    ) -> Dict[str, object]:
        buckets, count, total = self.window_histogram(name, window)
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "sum": total,
            "p50": _window_rank(buckets, count, 0.50),
            "p95": _window_rank(buckets, count, 0.95),
            "p99": _window_rank(buckets, count, 0.99),
        }

    def snapshot(
        self, windows: Iterable[float] = (
            FAST_WINDOW_SECONDS, SLOW_WINDOW_SECONDS,
        )
    ) -> Dict[str, object]:
        """JSON-ready windowed view: per-window counter rates and
        histogram summaries, keyed ``"60s"`` / ``"600s"``.

        This rides inside ``/v1/stats`` (and ``spitz top`` renders
        it), alongside — never replacing — the cumulative snapshot.
        """
        out: Dict[str, object] = {
            "slot_seconds": self.slot_seconds,
            "retention_slots": self.retention_slots,
            "ticks": self.ticks,
            "windows": {},
        }
        active_hists = set()
        with self._lock:
            for slot in self._slots:
                active_hists.update(slot.histograms)
        for window in windows:
            label = f"{window:g}s"
            rates = self.rates(window)
            out["windows"][label] = {
                "seconds": window,
                "rates": dict(sorted(rates.items())),
                "histograms": {
                    name: self.histogram_summary(name, window)
                    for name in sorted(active_hists)
                },
            }
        return out


class TelemetryPlane:
    """The cluster's live-signals plane: ticker + windows + SLOs.

    Owns one :class:`TimeSeries` over the cluster registry and one
    :class:`~repro.obs.slo.SloEvaluator` over the time series.  In
    normal operation a daemon thread ticks every ``slot_seconds``;
    with an injected ``clock`` the plane is *manual* — ``start()`` is
    a no-op and tests drive :meth:`tick` themselves, so every window
    edge is deterministic.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
        retention_slots: int = DEFAULT_RETENTION_SLOTS,
        fast_window: float = FAST_WINDOW_SECONDS,
        slow_window: float = SLOW_WINDOW_SECONDS,
        clock: Optional[Callable[[], float]] = None,
        objectives: Optional[list] = None,
    ):
        # Imported here: slo builds on this module's TimeSeries.
        from repro.obs.slo import SloEvaluator, default_objectives

        self.manual = clock is not None
        self.registry = registry
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.timeseries = TimeSeries(
            registry,
            slot_seconds=slot_seconds,
            retention_slots=retention_slots,
            clock=clock if clock is not None else time.monotonic,
        )
        self.slo = SloEvaluator(
            self.timeseries,
            objectives=(
                objectives if objectives is not None else default_objectives()
            ),
            fast_window=fast_window,
            slow_window=slow_window,
            registry=registry,
        )
        self._c_ticks = registry.counter("telemetry.ticks")
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def tick(self) -> None:
        """Seal one slot and re-evaluate every SLO against it."""
        self.timeseries.tick()
        self.slo.evaluate()
        self._c_ticks.inc()

    # -- background ticker (real-clock mode only) ----------------------

    def start(self) -> None:
        if self.manual or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="spitz-telemetry", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.timeseries.slot_seconds):
            self.tick()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # -- serving --------------------------------------------------------

    def windows_snapshot(self) -> Dict[str, object]:
        return self.timeseries.snapshot(
            (self.fast_window, self.slow_window)
        )

    def slo_snapshot(self) -> Dict[str, object]:
        return self.slo.snapshot()


__all__ = [
    "DEFAULT_RETENTION_SLOTS",
    "DEFAULT_SLOT_SECONDS",
    "FAST_WINDOW_SECONDS",
    "SLOW_WINDOW_SECONDS",
    "TelemetryPlane",
    "TimeSeries",
]
