"""Flight recorder: bounded retention of interesting request traces.

A metrics snapshot tells you *that* p99 regressed; the flight recorder
tells you *why*, by keeping the full span trees most worth reading:

- the slowest-N requests ever seen (min-heap on end-to-end duration),
- every failed or shed request, in a bounded ring (oldest evicted),
- the most recent completed requests, in a bounded ring.

It also accumulates per-request-kind critical-path totals from *every*
completed request trace (not only retained ones), so the attribution
table — fraction of end-to-end time per stage, per request kind — is
computed over the full population.

Only *request* traces are retained: the tracer hands over every
finalized trace, and the recorder keeps the ones whose root span
carries a ``kind`` attribute (stamped by ``MessageQueue.submit``).
Standalone stage roots (e.g. a ``txn.commit`` opened outside any
request during bulk load) still feed ``span.*`` histograms but would
drown the rings in single-span noise here.

Like the metrics registry, the recorder is thread-safe, dependency
free, picklable (locks dropped on pickle), and exposed three ways:
``RequestKind.STATS`` with ``payload={"traces": true}``, the
``spitz trace`` / ``spitz slowest`` CLI subcommands, and the benchmark
harness's ``--json`` report.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.tracing import STATUS_OK, Trace


class FlightRecorder:
    """Retains slow/failed/recent traces and per-kind stage totals."""

    def __init__(
        self,
        slowest_capacity: int = 32,
        failure_capacity: int = 128,
        recent_capacity: int = 256,
    ):
        self._lock = threading.Lock()
        self._slowest_capacity = slowest_capacity
        #: Min-heap of (duration, tiebreak, trace) — the root of the
        #: heap is the *fastest* of the retained slowest, so a new
        #: trace only displaces it when strictly slower.
        self._slowest: List[Tuple[float, int, Trace]] = []
        self._counter = itertools.count()
        self._failures: Deque[Trace] = deque(maxlen=failure_capacity)
        self._recent: Deque[Trace] = deque(maxlen=recent_capacity)
        #: kind -> {"requests", "total_seconds", "statuses", "stages"}
        self._kinds: Dict[str, Dict[str, object]] = {}

    # -- ingest ---------------------------------------------------------

    def record(self, trace: Trace) -> None:
        """Ingest one finalized trace (called by the tracer)."""
        kind = trace.kind
        if kind is None:
            return
        with self._lock:
            self._recent.append(trace)
            if trace.status != STATUS_OK:
                self._failures.append(trace)
            tiebreak = next(self._counter)
            if len(self._slowest) < self._slowest_capacity:
                heapq.heappush(
                    self._slowest, (trace.duration, tiebreak, trace)
                )
            elif trace.duration > self._slowest[0][0]:
                heapq.heapreplace(
                    self._slowest, (trace.duration, tiebreak, trace)
                )
            acc = self._kinds.get(kind)
            if acc is None:
                acc = self._kinds[kind] = {
                    "requests": 0,
                    "total_seconds": 0.0,
                    "statuses": {},
                    "stages": {},
                }
            acc["requests"] += 1
            acc["total_seconds"] += trace.duration
            statuses: Dict[str, int] = acc["statuses"]
            statuses[trace.status] = statuses.get(trace.status, 0) + 1
            stages: Dict[str, float] = acc["stages"]
            for stage, seconds in trace.stages.items():
                stages[stage] = stages.get(stage, 0.0) + seconds

    # -- inspection -----------------------------------------------------

    def slowest(self, limit: Optional[int] = None) -> List[Trace]:
        """Retained slowest traces, slowest first."""
        with self._lock:
            traces = [item[2] for item in self._slowest]
        traces.sort(key=lambda trace: trace.duration, reverse=True)
        return traces[:limit] if limit is not None else traces

    def failures(self, limit: Optional[int] = None) -> List[Trace]:
        """Retained failed/shed traces, newest first."""
        with self._lock:
            traces = list(self._failures)
        traces.reverse()
        return traces[:limit] if limit is not None else traces

    def recent(self, limit: Optional[int] = None) -> List[Trace]:
        """Most recent completed traces, newest first."""
        with self._lock:
            traces = list(self._recent)
        traces.reverse()
        return traces[:limit] if limit is not None else traces

    def attribution(self) -> Dict[str, Dict[str, object]]:
        """Per-request-kind critical-path table.

        For each kind: request count, mean end-to-end seconds, status
        counts, and per-stage ``{"seconds", "fraction"}`` where
        ``fraction`` is the stage's share of total end-to-end time.
        Because each trace's stage self-times sum to at most its root
        duration, the fractions for a kind sum to at most 1.0.
        """
        with self._lock:
            kinds = {
                kind: {
                    "requests": acc["requests"],
                    "total_seconds": acc["total_seconds"],
                    "statuses": dict(acc["statuses"]),
                    "stages": dict(acc["stages"]),
                }
                for kind, acc in self._kinds.items()
            }
        table: Dict[str, Dict[str, object]] = {}
        for kind, acc in sorted(kinds.items()):
            total = acc["total_seconds"]
            requests = acc["requests"]
            stages = {
                stage: {
                    "seconds": seconds,
                    "fraction": (seconds / total) if total > 0 else 0.0,
                }
                for stage, seconds in sorted(
                    acc["stages"].items(),
                    key=lambda item: item[1],
                    reverse=True,
                )
            }
            table[kind] = {
                "requests": requests,
                "mean_seconds": (total / requests) if requests else 0.0,
                "total_seconds": total,
                "statuses": acc["statuses"],
                "stages": stages,
            }
        return table

    def snapshot(
        self,
        slowest: int = 8,
        failures: int = 8,
    ) -> Dict[str, object]:
        """JSON-serializable view: attribution + retained trace trees."""
        return {
            "attribution": self.attribution(),
            "slowest": [trace.to_dict() for trace in self.slowest(slowest)],
            "failures": [
                trace.to_dict() for trace in self.failures(failures)
            ],
        }

    def render_attribution(self) -> str:
        """Plain-text critical-path table for terminals."""
        table = self.attribution()
        if not table:
            return "(no completed request traces)"
        lines: List[str] = []
        for kind, row in table.items():
            statuses = " ".join(
                f"{status}={count}"
                for status, count in sorted(row["statuses"].items())
            )
            lines.append(
                f"{kind}: {row['requests']} requests, "
                f"mean {row['mean_seconds'] * 1e3:.3f}ms ({statuses})"
            )
            for stage, cell in row["stages"].items():
                lines.append(
                    f"  {cell['fraction'] * 100:6.2f}%  "
                    f"{cell['seconds'] * 1e3:10.3f}ms  {stage}"
                )
        return "\n".join(lines)

    # -- pickling -------------------------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        # itertools.count is picklable, but rebuild it anyway so the
        # restored recorder starts from a clean tiebreak sequence.
        state["_counter"] = next(self._counter)
        return state

    def __setstate__(self, state):
        start = state.pop("_counter")
        self.__dict__.update(state)
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
