"""Processor nodes and the global message queue.

"The control layer consists of multiple processor nodes that accept
and process requests from a global message queue.  Each node has three
main components: a request handler, an auditor, and a transaction
manager" (Section 5).  A master node coordinates (footnote 1); here
the master is :class:`SpitzCluster`, which owns the shared storage
layer and the queue and runs each processor in a thread.

Request-loss discipline: every envelope that enters the queue is
*always* completed — with a real response, an error response, a
deadline-shed response, or a ``cluster stopped`` failure — so a client
blocked on :meth:`SpitzCluster.submit` never waits out its timeout
because of a server-side shutdown or crash.  Shutdown is orderly: the
queue closes (new submissions fail fast with
:class:`~repro.errors.ClusterStoppedError`), one poison pill per node
unblocks the serve loops, and anything still queued is drained and
failed explicitly.

Admission discipline (the back-pressure half of the same invariant):
the queue is the cluster's single admission point, so it is also where
overload is decided.  With a ``capacity`` configured, a queue whose
depth has exceeded it for a sustained window rejects new submissions
fast with a retryable :class:`~repro.errors.ClusterOverloadedError`
instead of letting every client block out its timeout.  Envelopes
carry their client's deadline; a node that dequeues an already-expired
envelope *sheds* it — completes it immediately with a retryable error,
counted as ``queue.shed`` — rather than doing work whose answer nobody
is waiting for.  Accepted-envelope accounting therefore always
balances: processed + shed + failed-on-stop == submitted.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.auditor import Auditor
from repro.core.database import SpitzDatabase
from repro.core.request_handler import Request, RequestHandler, Response
from repro.errors import ClusterOverloadedError, ClusterStoppedError
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.timeseries import TelemetryPlane
from repro.obs.tracing import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    Span,
    Tracer,
)


@dataclass
class Envelope:
    """A request plus the completion event its client waits on.

    The envelope is also the trace-context carrier across the
    client→queue→node thread boundary: :meth:`MessageQueue.submit`
    opens the request's root ``client.submit`` span and attaches it
    (with its tracer) here, the serving node parents its ``node.serve``
    span under it, and :meth:`complete` — the single place an envelope
    is ever finished — closes the root span with the outcome status, so
    shed and errored requests leave a trace instead of vanishing.
    """

    request: Request
    response: Optional[Response] = None
    done: threading.Event = field(default_factory=threading.Event)
    #: Stamped (re-stamped, under the queue lock) at the instant the
    #: envelope actually enters the queue; the serving node measures
    #: queue wait against it.  The construction-time default only
    #: covers envelopes built outside a MessageQueue (unit tests).
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: Absolute ``time.perf_counter()`` instant after which the client
    #: has stopped waiting; a node that dequeues the envelope later
    #: sheds it instead of processing it.  None = wait forever.
    deadline: Optional[float] = None
    #: Root span of this request's trace, opened by the queue at
    #: admission; None when the queue's registry is disabled.
    span: Optional[Span] = None
    #: The tracer that owns :attr:`span` (completion may happen on a
    #: node thread or the cluster's stop path, far from the queue).
    tracer: Optional[Tracer] = None

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.perf_counter()) > self.deadline

    def complete(self, response: Response, status: Optional[str] = None) -> None:
        """Finish the envelope exactly once: record the response, close
        the root span with the outcome status, release the client."""
        if self.done.is_set():
            return
        self.response = response
        if self.tracer is not None and self.span is not None:
            if status is None:
                status = STATUS_OK if response.ok else STATUS_ERROR
            self.tracer.finish(self.span, status=status)
        self.done.set()


class _Poison:
    """Shutdown marker: wakes a serve loop and tells it to exit."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<poison>"


_POISON = _Poison()


class MessageQueue:
    """The global queue feeding the processor nodes.

    ``close()`` rejects all later submissions; ``poison(n)`` enqueues
    ``n`` shutdown markers (one per node) behind everything already
    queued; ``drain()`` removes whatever is left so the cluster can
    fail those envelopes instead of stranding their clients.

    Admission control: with ``capacity`` set, a submit that finds the
    queue deeper than capacity starts (or continues) an overload
    window; once the queue has stayed over capacity for
    ``overload_window`` seconds, further submits are rejected fast with
    a retryable :class:`ClusterOverloadedError` until depth falls back
    under capacity.  The grace window lets momentary bursts through —
    only *sustained* overload sheds load.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        capacity: Optional[int] = None,
        overload_window: float = 0.05,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be positive")
        if overload_window < 0:
            raise ValueError("overload_window must be non-negative")
        self._queue: "queue.Queue[Union[Envelope, _Poison]]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        #: Envelopes currently queued (poison pills excluded), tracked
        #: under ``self._lock`` so admission checks and the
        #: ``queue.depth`` gauge can never observe a half-applied
        #: update from an interleaved submit/take.
        self._depth = 0
        self.capacity = capacity
        self.overload_window = overload_window
        #: perf_counter instant when depth first exceeded capacity, or
        #: None while the queue is under capacity.
        self._over_since: Optional[float] = None
        self.submitted = 0
        self.rejected = 0
        self.rejected_overload = 0
        #: Expired envelopes completed-without-processing by nodes.
        self.shed = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_submitted = self.metrics.counter("queue.submitted")
        self._c_rejected = self.metrics.counter("queue.rejected")
        self._c_rejected_overload = self.metrics.counter(
            "queue.rejected_overload"
        )
        self._c_shed = self.metrics.counter("queue.shed")
        self._g_depth = self.metrics.gauge("queue.depth")
        self.metrics.gauge("queue.capacity").set(
            capacity if capacity is not None else 0
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def _suggested(self, depth: int) -> float:
        """Suggested client backoff at ``depth``.

        Grows with how far past capacity the queue is, so deeper
        saturation spreads retries out further.  Floored so a zero
        grace window still suggests a real (if tiny) pause.
        """
        pause = max(self.overload_window, 0.001)
        if self.capacity is None:
            return pause
        return pause * (1.0 + depth / self.capacity)

    def suggested_backoff(self) -> float:
        """Current suggested backoff (``retry_after``) at live depth.

        The same formula admission rejections embed; the service edge
        uses it to stamp ``Retry-After`` on responses that bypassed
        admission — e.g. envelopes shed after their deadline — so every
        retryable answer a remote client sees carries the queue's own
        estimate of when capacity will exist again.
        """
        with self._lock:
            depth = self._depth
        return self._suggested(depth)

    def _check_admission(self, now: float) -> None:
        """Reject (under ``self._lock``) on sustained overload."""
        if self.capacity is None:
            return
        depth = self._depth
        if depth < self.capacity:
            self._over_since = None
            return
        if self._over_since is None:
            self._over_since = now
        if now - self._over_since < self.overload_window:
            return  # burst grace: accept while the window is open
        self.rejected_overload += 1
        self._c_rejected_overload.inc()
        raise ClusterOverloadedError(
            depth=depth, capacity=self.capacity,
            retry_after=self._suggested(depth),
        )

    def submit(
        self, request: Request, deadline: Optional[float] = None
    ) -> Envelope:
        now = time.perf_counter()
        envelope = Envelope(request=request, deadline=deadline)
        with self._lock:
            if self._closed:
                self.rejected += 1
                self._c_rejected.inc()
                raise ClusterStoppedError(
                    "message queue is closed: the cluster is stopping"
                )
            self._check_admission(now)
            # Open the request's root span *before* the put: once the
            # envelope is visible, a node may dequeue and complete it
            # immediately, and completion closes this span.
            envelope.tracer = self.metrics.tracer
            envelope.span = envelope.tracer.start_span(
                "client.submit",
                attributes={
                    "kind": request.kind.value,
                    "verify": request.verify,
                },
            )
            self._queue.put(envelope)
            self.submitted += 1
            self._depth += 1
            # Stamped after the actual enqueue, still under the lock:
            # queue wait must not include submit-side lock contention
            # or admission-check time.
            envelope.enqueued_at = time.perf_counter()
            self._c_submitted.inc()
            self._g_depth.set(self._depth)
        return envelope

    def record_shed(self) -> None:
        """Account one expired envelope completed without processing."""
        with self._lock:
            self.shed += 1
        self._c_shed.inc()

    def take(
        self, timeout: Optional[float] = None
    ) -> Optional[Union[Envelope, _Poison]]:
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if not isinstance(item, _Poison):
            with self._lock:
                self._depth -= 1
                self._g_depth.set(self._depth)
        return item

    def close(self) -> None:
        """Reject every submission from now on (idempotent)."""
        with self._lock:
            self._closed = True

    def poison(self, count: int) -> None:
        """Enqueue shutdown markers, one per node.

        Poison bypasses the closed check: it is enqueued *after*
        :meth:`close`, behind every accepted envelope, so nodes finish
        real work first and then exit.
        """
        for _ in range(count):
            self._queue.put(_POISON)

    def requeue_poison(self) -> None:
        """Put a taken poison pill back (see ProcessorNode.serve_one).

        A consumer that takes a pill it cannot honour must return it,
        otherwise another serve loop waiting for its shutdown marker
        never gets one.
        """
        self._queue.put(_POISON)

    def drain(self) -> List[Envelope]:
        """Remove and return every queued envelope (skips poison)."""
        stranded: List[Envelope] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if not isinstance(item, _Poison):
                stranded.append(item)
        if stranded:
            with self._lock:
                self._depth -= len(stranded)
                self._g_depth.set(self._depth)
        return stranded


class ProcessorNode:
    """One control-layer node: request handler + auditor + TM.

    The transaction manager is the shared database's manager (the
    storage layer is common to all nodes; Section 5's consistency
    across nodes is the 2PC layer's job, exercised in
    :mod:`repro.txn.two_pc`).
    """

    def __init__(self, name: str, db: SpitzDatabase, mq: MessageQueue):
        self.name = name
        self.handler = RequestHandler(db)
        # A sharded facade has one ledger and one transaction manager
        # *per shard* rather than a single pair to mediate; its own
        # coordinator plays the auditor's role for cross-shard writes.
        ledger = getattr(db, "ledger", None)
        self.auditor = Auditor(ledger) if ledger is not None else None
        self.txn_manager = getattr(db, "txn_manager", None)
        self._mq = mq
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.processed = 0
        self._metrics = db.metrics
        self._c_processed = self._metrics.counter("node.processed")
        self._h_queue_wait = self._metrics.histogram("queue.wait_seconds")

    def serve_one(self, timeout: float = 0.1) -> bool:
        """Process one queued request; True if one was handled.

        A poison pill taken here goes *back* on the queue: the pill
        belongs to a serve loop, and swallowing it would leave that
        loop (or a loop started later) without its shutdown marker.
        """
        envelope = self._mq.take(timeout=timeout)
        if envelope is None:
            return False
        if isinstance(envelope, _Poison):
            self._mq.requeue_poison()
            return False
        self._handle_envelope(envelope)
        return True

    def _tracer_for(self, envelope: Envelope) -> Tracer:
        # Envelopes submitted through a metrics-less queue still get
        # their node.serve span recorded against the node's registry
        # (as an unparented trace root the flight recorder ignores).
        tracer = envelope.tracer
        if tracer is None or not tracer.enabled:
            tracer = self._metrics.tracer
        return tracer

    def _handle_envelope(self, envelope: Envelope) -> None:
        now = time.perf_counter()
        tracer = self._tracer_for(envelope)
        if envelope.expired(now):
            # The client stopped waiting before any node picked this
            # up: shed it.  Completing the envelope (rather than
            # processing-and-dropping the answer) keeps the
            # request-loss invariant *and* skips the wasted work.
            self._mq.record_shed()
            # Per-kind shed attribution: the aggregate queue.shed says
            # load was dropped, this says *whose* (telemetry windows
            # and spitz top break sheds out by request kind).
            self._metrics.counter(
                f"queue.shed.kind.{envelope.request.kind.value}"
            ).inc()
            with tracer.span(
                "node.serve",
                parent=envelope.span,
                attributes={"node": self.name},
            ) as span:
                if span is not None:
                    span.status = STATUS_SHED
            envelope.complete(
                Response(
                    ok=False,
                    error=(
                        "request shed: its deadline expired before a "
                        "processor node dequeued it"
                    ),
                    retryable=True,
                ),
                status=STATUS_SHED,
            )
            return
        queue_wait = now - envelope.enqueued_at
        self._h_queue_wait.observe(queue_wait)
        with tracer.span(
            "node.serve",
            parent=envelope.span,
            attributes={"node": self.name, "queue_wait": queue_wait},
        ) as span:
            response = self.handler.handle(envelope.request)
            if span is not None and not response.ok:
                span.status = STATUS_ERROR
        self.processed += 1
        self._c_processed.inc()
        envelope.complete(response)

    def start(self) -> None:
        """Run the serve loop in a daemon thread."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve_loop, name=f"spitz-node-{self.name}",
            daemon=True,
        )
        self._thread.start()

    def _serve_loop(self) -> None:
        # The stop event only exits the loop when the queue is idle;
        # a poison pill exits unconditionally.  Envelopes accepted
        # before shutdown sit ahead of the poison, so they are always
        # processed rather than failed by the cluster's drain.
        while True:
            envelope = self._mq.take(timeout=0.05)
            if envelope is None:
                if self._stop.is_set():
                    break
                continue
            if isinstance(envelope, _Poison):
                break
            self._handle_envelope(envelope)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


class SpitzCluster:
    """The master: shared storage layer + N processor nodes + queue.

    With ``durable_root`` set, the shared storage layer is opened
    through crash recovery and every commit any node seals is
    write-ahead logged (group commit via ``sync_every``); ``stop``
    syncs and closes the log (releasing the single-writer handle so
    the directory can be reopened), and :meth:`checkpoint` bounds
    replay on the next open.  Commits are serialized by the database's
    commit lock, so one WAL serves all processor threads.
    """

    def __init__(
        self,
        nodes: int = 2,
        mask_bits: int = 5,
        durable_root: Optional[str] = None,
        sync_every: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        queue_capacity: Optional[int] = None,
        overload_window: float = 0.05,
        shards: int = 1,
        telemetry: bool = True,
        telemetry_clock=None,
        indexed_columns: Optional[Sequence[str]] = None,
    ):
        if nodes < 1:
            raise ValueError("need at least one processor node")
        if shards < 1:
            raise ValueError("need at least one shard")
        if indexed_columns and shards > 1:
            raise ValueError(
                "verified search is not available on a sharded cluster "
                "(postings would span shard ledgers); run with shards=1"
            )
        if shards > 1:
            # Imported here: the shard facade sits above core in the
            # layering (same pattern as the durability import below).
            from repro.shard import ShardedDatabase

            self.durable = None
            self.db = ShardedDatabase(
                num_shards=shards,
                mask_bits=mask_bits,
                metrics=metrics,
                durable_root=durable_root,
                sync_every=sync_every,
            )
        elif durable_root is not None:
            # Imported here: durability sits above core in the layering.
            from repro.durability import DurableDatabase

            self.durable: Optional[DurableDatabase] = DurableDatabase.open(
                durable_root,
                sync_every=sync_every,
                mask_bits=mask_bits,
                metrics=metrics,
            )
            self.db = self.durable.db
            if indexed_columns:
                # Recovery replays the WAL through the normal commit
                # path, so the inverted index is already rebuilt;
                # enable_search folds it into committed trees.
                self.db.enable_search(indexed_columns)
        else:
            self.durable = None
            self.db = SpitzDatabase(
                mask_bits=mask_bits,
                metrics=metrics,
                indexed_columns=indexed_columns,
            )
        self.metrics = self.db.metrics
        self.queue = MessageQueue(
            metrics=self.metrics,
            capacity=queue_capacity,
            overload_window=overload_window,
        )
        self.nodes: List[ProcessorNode] = [
            ProcessorNode(f"p{i}", self.db, self.queue)
            for i in range(nodes)
        ]
        # The time-series telemetry plane (DESIGN.md §6h): a background
        # ticker samples the shared registry once per slot, giving the
        # service plane windowed rates, percentiles, and SLO burn
        # health.  Disabled entirely when the registry is disabled (the
        # plane would only ever sample a null registry); a test-injected
        # clock puts it in manual mode (no thread, tests call tick()).
        self.telemetry: Optional[TelemetryPlane] = None
        if telemetry and self.metrics.enabled:
            self.telemetry = TelemetryPlane(
                self.metrics, clock=telemetry_clock
            )

    def checkpoint(self):
        """Durable mode only: snapshot state and truncate the WAL."""
        if self.durable is not None:
            return self.durable.checkpoint()
        if getattr(self.db, "_durables", None):
            return self.db.checkpoint()
        raise RuntimeError("cluster is not running in durable mode")

    def start(self) -> None:
        for node in self.nodes:
            node.start()
        if self.telemetry is not None:
            self.telemetry.start()

    def stop(self) -> None:
        """Stop the nodes; drain-or-fail everything still queued.

        Sequence: close the queue (new submissions now raise
        :class:`ClusterStoppedError`), poison one pill per node so the
        serve loops process every already-accepted envelope and then
        exit, join the threads, and fail whatever is left in the queue
        (e.g. when the nodes were never started or died) so no client
        blocks until its submit timeout.  In durable mode the WAL is
        then synced and closed.  Idempotent, and identical to
        :meth:`close`.
        """
        if self.telemetry is not None:
            self.telemetry.stop()
        self.queue.close()
        self.queue.poison(len(self.nodes))
        for node in self.nodes:
            node.stop()
        stranded = self.queue.drain()
        for envelope in stranded:
            envelope.complete(
                Response(
                    ok=False,
                    error="cluster stopped before the request was processed",
                )
            )
        if stranded:
            self.metrics.counter("cluster.failed_on_stop").inc(
                len(stranded)
            )
        if self.durable is not None:
            self.durable.close()
        elif hasattr(self.db, "close"):
            # Sharded facade: releases per-shard WAL handles (no-op for
            # in-memory shards).
            self.db.close()

    def close(self) -> None:
        """Alias of :meth:`stop` (kept for context-manager symmetry)."""
        self.stop()

    def submit(self, request: Request, timeout: float = 10.0) -> Response:
        """Send a request through the queue and await its response.

        The timeout doubles as the envelope's deadline: if no node has
        dequeued the request by then, whichever node eventually takes
        it sheds it instead of processing work this (timed-out) caller
        will never see.  Raises :class:`ClusterOverloadedError` fast on
        sustained queue saturation and :class:`ClusterStoppedError`
        after shutdown — both retryable without side effects.
        """
        deadline = time.perf_counter() + timeout
        envelope = self.queue.submit(request, deadline=deadline)
        if not envelope.done.wait(timeout=timeout):
            raise TimeoutError("no processor node answered in time")
        assert envelope.response is not None
        return envelope.response

    def stats(self) -> dict:
        """The shared registry's snapshot (same payload as a
        ``RequestKind.STATS`` request answered by any node)."""
        return self.db.metrics_snapshot()
