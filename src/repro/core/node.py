"""Processor nodes and the global message queue.

"The control layer consists of multiple processor nodes that accept
and process requests from a global message queue.  Each node has three
main components: a request handler, an auditor, and a transaction
manager" (Section 5).  A master node coordinates (footnote 1); here
the master is :class:`SpitzCluster`, which owns the shared storage
layer and the queue and runs each processor in a thread.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.auditor import Auditor
from repro.core.database import SpitzDatabase
from repro.core.request_handler import Request, RequestHandler, Response


@dataclass
class Envelope:
    """A request plus the completion event its client waits on."""

    request: Request
    response: Optional[Response] = None
    done: threading.Event = field(default_factory=threading.Event)


class MessageQueue:
    """The global queue feeding the processor nodes."""

    def __init__(self) -> None:
        self._queue: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        self.submitted = 0

    def submit(self, request: Request) -> Envelope:
        envelope = Envelope(request=request)
        self._queue.put(envelope)
        self.submitted += 1
        return envelope

    def take(self, timeout: Optional[float] = None) -> Optional[Envelope]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def poison(self, count: int) -> None:
        """Enqueue shutdown markers, one per node."""
        for _ in range(count):
            self._queue.put(None)


class ProcessorNode:
    """One control-layer node: request handler + auditor + TM.

    The transaction manager is the shared database's manager (the
    storage layer is common to all nodes; Section 5's consistency
    across nodes is the 2PC layer's job, exercised in
    :mod:`repro.txn.two_pc`).
    """

    def __init__(self, name: str, db: SpitzDatabase, mq: MessageQueue):
        self.name = name
        self.handler = RequestHandler(db)
        self.auditor = Auditor(db.ledger)
        self.txn_manager = db.txn_manager
        self._mq = mq
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.processed = 0

    def serve_one(self, timeout: float = 0.1) -> bool:
        """Process one queued request; True if one was handled."""
        envelope = self._mq.take(timeout=timeout)
        if envelope is None:
            return False
        envelope.response = self.handler.handle(envelope.request)
        self.processed += 1
        envelope.done.set()
        return True

    def start(self) -> None:
        """Run the serve loop in a daemon thread."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve_loop, name=f"spitz-node-{self.name}",
            daemon=True,
        )
        self._thread.start()

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            envelope = self._mq.take(timeout=0.05)
            if envelope is None:
                if self._mq.submitted and self._stop.is_set():
                    break
                continue
            envelope.response = self.handler.handle(envelope.request)
            self.processed += 1
            envelope.done.set()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


class SpitzCluster:
    """The master: shared storage layer + N processor nodes + queue.

    With ``durable_root`` set, the shared storage layer is opened
    through crash recovery and every commit any node seals is
    write-ahead logged (group commit via ``sync_every``); ``stop``
    syncs and closes the log (releasing the single-writer handle so
    the directory can be reopened), and :meth:`checkpoint` bounds
    replay on the next open.  Commits are serialized by the database's
    commit lock, so one WAL serves all processor threads.
    """

    def __init__(
        self,
        nodes: int = 2,
        mask_bits: int = 5,
        durable_root: Optional[str] = None,
        sync_every: int = 1,
    ):
        if nodes < 1:
            raise ValueError("need at least one processor node")
        if durable_root is not None:
            # Imported here: durability sits above core in the layering.
            from repro.durability import DurableDatabase

            self.durable: Optional[DurableDatabase] = DurableDatabase.open(
                durable_root, sync_every=sync_every, mask_bits=mask_bits
            )
            self.db = self.durable.db
        else:
            self.durable = None
            self.db = SpitzDatabase(mask_bits=mask_bits)
        self.queue = MessageQueue()
        self.nodes: List[ProcessorNode] = [
            ProcessorNode(f"p{i}", self.db, self.queue)
            for i in range(nodes)
        ]

    def checkpoint(self):
        """Durable mode only: snapshot state and truncate the WAL."""
        if self.durable is None:
            raise RuntimeError("cluster is not running in durable mode")
        return self.durable.checkpoint()

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    def stop(self) -> None:
        """Stop the nodes; in durable mode, sync and release the WAL.

        Idempotent, and identical to :meth:`close` — closing the
        durable database here keeps the single-writer discipline:
        callers that only ever call ``stop()`` do not leak the WAL
        handle or hold the directory against a reopen.
        """
        for node in self.nodes:
            node.stop()
        if self.durable is not None:
            self.durable.close()

    def close(self) -> None:
        """Alias of :meth:`stop` (kept for context-manager symmetry)."""
        self.stop()

    def submit(self, request: Request, timeout: float = 10.0) -> Response:
        """Send a request through the queue and await its response."""
        envelope = self.queue.submit(request)
        if not envelope.done.wait(timeout=timeout):
            raise TimeoutError("no processor node answered in time")
        assert envelope.response is not None
        return envelope.response
