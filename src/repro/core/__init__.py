"""Spitz core: the paper's primary contribution (Section 5).

The control layer (request handler, auditor, transaction manager — one
set per processor node) sits on a storage layer made of a virtual cell
store over ForkBase, a SIRI-indexed ledger, a B+-tree access path and
inverted indexes.  :class:`~repro.core.database.SpitzDatabase` is the
public facade; :class:`~repro.core.verifier.ClientVerifier` is the
client-side trust anchor.
"""

from repro.core.audit import (
    ForkReport,
    ProofBundle,
    audit_ledger,
    compare_replicas,
    make_bundle,
    verify_bundle,
)
from repro.core.cell_store import Cell, CellStore
from repro.core.client import ClusterClient, run_saturation
from repro.core.database import SpitzDatabase
from repro.core.documents import Collection, DocumentStore
from repro.core.node import MessageQueue, ProcessorNode, SpitzCluster
from repro.core.persistence import load_database, save_database
from repro.core.ledger import Block, LedgerDigest, SpitzLedger
from repro.core.proofs import (
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.schema import Column, TableSchema
from repro.core.universal_key import UniversalKey
from repro.core.verifier import ClientVerifier

__all__ = [
    "Block",
    "Collection",
    "DocumentStore",
    "ForkReport",
    "ProofBundle",
    "audit_ledger",
    "compare_replicas",
    "load_database",
    "make_bundle",
    "save_database",
    "verify_bundle",
    "Cell",
    "CellStore",
    "ClientVerifier",
    "ClusterClient",
    "Column",
    "LedgerDigest",
    "LedgerMultiProof",
    "LedgerProof",
    "LedgerRangeProof",
    "MessageQueue",
    "ProcessorNode",
    "SpitzCluster",
    "SpitzDatabase",
    "SpitzLedger",
    "TableSchema",
    "UniversalKey",
    "run_saturation",
]
