"""Audit tooling: replica comparison, fork detection, proof bundles.

The paper's dispute-resolution story (Sections 1, 2.2) needs more than
point proofs: an auditor confronted with two parties' views of "the"
ledger must decide whether they are consistent, and a litigant needs a
self-contained evidence package.  This module provides both:

- :func:`compare_replicas` — find the first block where two ledgers
  diverge (a *fork*), or prove one is a prefix of the other;
- :func:`audit_ledger` — full internal-consistency audit of one
  ledger (chain links, per-block index roots reachable);
- :class:`ProofBundle` — a serializable evidence package (claim +
  proof + the digest it binds to) that a third party can check
  offline with :func:`verify_bundle`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import Digest
from repro.errors import VerificationError
from repro.core.ledger import (
    LedgerDigest,
    SpitzLedger,
    block_digest_of,
    chain_digest_of,
)
from repro.core.proofs import LedgerProof, LedgerRangeProof


@dataclass(frozen=True)
class ForkReport:
    """Outcome of comparing two ledgers."""

    consistent: bool
    fork_height: Optional[int]
    common_prefix: int
    detail: str


def compare_replicas(a: SpitzLedger, b: SpitzLedger) -> ForkReport:
    """Compare two parties' ledgers block by block.

    Consistent means one is a prefix of the other (a replica that is
    merely behind).  A *fork* — two different blocks claiming the same
    height — is the smoking gun of history tampering: the same party
    signed two histories.
    """
    shared = min(a.height, b.height)
    for height in range(shared):
        if a.block(height).chain_digest != b.block(height).chain_digest:
            return ForkReport(
                consistent=False,
                fork_height=height,
                common_prefix=height,
                detail=(
                    f"fork at block #{height}: "
                    f"{a.block(height).chain_digest.short} vs "
                    f"{b.block(height).chain_digest.short}"
                ),
            )
    behind = "equal" if a.height == b.height else (
        f"one replica is {abs(a.height - b.height)} blocks behind"
    )
    return ForkReport(
        consistent=True,
        fork_height=None,
        common_prefix=shared,
        detail=f"consistent prefixes ({behind})",
    )


def audit_ledger(ledger: SpitzLedger) -> List[str]:
    """Full internal audit; returns a list of findings (empty = clean).

    Checks every chain link, recomputes every block digest, and walks
    each block's index root to confirm the nodes are all present in
    the store (a storage layer that dropped or corrupted nodes cannot
    serve proofs for that block).
    """
    findings: List[str] = []
    from repro.crypto.hashing import EMPTY_DIGEST

    running = EMPTY_DIGEST
    for height in range(ledger.height):
        block = ledger.block(height)
        if block.previous_chain_digest != running:
            findings.append(
                f"block #{height}: broken previous-link"
            )
        digest = block_digest_of(
            height=block.height,
            previous=block.previous_chain_digest,
            tree_root=block.tree_root,
            writes_digest=block.writes_digest,
            statements_digest=block.statements_digest,
        )
        running = chain_digest_of(block.previous_chain_digest, digest)
        if block.chain_digest != running:
            findings.append(f"block #{height}: chain digest mismatch")
        try:
            tree = ledger.tree_at(height)
            # Touch every level's first node to prove reachability.
            for _ in tree.scan(b"", b""):
                break
        except Exception as error:  # pragma: no cover - defensive
            findings.append(f"block #{height}: index unreadable ({error})")
    return findings


@dataclass(frozen=True)
class ProofBundle:
    """Self-contained, serializable evidence for one claim."""

    description: str
    digest: LedgerDigest
    proof: object  # LedgerProof | LedgerRangeProof

    def serialize(self) -> bytes:
        return pickle.dumps(self, protocol=4)

    @staticmethod
    def deserialize(data: bytes) -> "ProofBundle":
        bundle = pickle.loads(data)
        if not isinstance(bundle, ProofBundle):
            raise VerificationError("not a proof bundle")
        return bundle


def make_bundle(
    ledger: SpitzLedger, key: bytes, description: str = ""
) -> ProofBundle:
    """Package the current value of ``key`` with everything a third
    party needs to verify it offline."""
    _value, proof = ledger.get_with_proof(key)
    return ProofBundle(
        description=description or f"value of {key!r}",
        digest=ledger.digest(),
        proof=proof,
    )


def verify_bundle(
    bundle: ProofBundle, trusted: Optional[LedgerDigest] = None
) -> Tuple[bool, str]:
    """Check a bundle, optionally pinning it to a known digest.

    Without ``trusted``, the bundle is checked for internal
    consistency (the proof binds to the bundle's own digest) — enough
    to establish *what that ledger said*.  With ``trusted``, the
    bundle must additionally match the digest the verifier already
    knows — establishing it is *the* ledger.
    """
    if trusted is not None and (
        trusted.chain_digest != bundle.digest.chain_digest
    ):
        return False, (
            "bundle digest does not match the trusted digest "
            f"({bundle.digest.chain_digest.short} vs "
            f"{trusted.chain_digest.short})"
        )
    proof = bundle.proof
    if not isinstance(proof, (LedgerProof, LedgerRangeProof)):
        return False, "bundle carries an unknown proof type"
    if not proof.verify(bundle.digest.chain_digest):
        return False, "proof does not verify against the bundle digest"
    return True, "verified"
