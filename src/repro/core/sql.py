"""A small SQL front end.

Spitz "supports both SQL and a self-defined JSON schema"
(Section 5.1).  This module implements the SQL side: a hand-written
tokenizer and recursive-descent parser for the subset the examples and
benchmarks exercise:

- ``CREATE TABLE t (a INT, b STR, ..., PRIMARY KEY (a))``
- ``INSERT INTO t (a, b) VALUES (1, 'x')``
- ``SELECT a, b FROM t [WHERE c [AND c]...] [AS OF BLOCK n] [LIMIT n]``
- ``UPDATE t SET a = 1, b = 'y' [WHERE ...]``
- ``DELETE FROM t [WHERE ...]``

Conditions: ``col op literal`` with ``= != < <= > >=`` and
``col BETWEEN x AND y``.  Literals: integers, floats, single-quoted
strings, TRUE/FALSE/NULL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.core.query import Condition, Op

_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<symbol><=|>=|!=|<>|[(),=<>*-])
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_TYPE_WORDS = {
    "int": "int", "integer": "int", "bigint": "int",
    "float": "float", "double": "float", "real": "float",
    "str": "str", "text": "str", "varchar": "str", "string": "str",
    "bool": "bool", "boolean": "bool",
    "bytes": "bytes", "blob": "bytes",
    "json": "json",
}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlSyntaxError(sql, position, f"unexpected {sql[position]!r}")
        kind = match.lastgroup
        if kind != "space":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


# -- statement objects ------------------------------------------------------


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: Tuple[Tuple[str, str], ...]
    primary_key: str


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Any, ...]


#: Supported aggregate functions (single aggregate, no GROUP BY).
AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Select:
    table: str
    columns: Tuple[str, ...]  # ("*",) for all
    where: Tuple[Condition, ...]
    as_of_block: Optional[int] = None
    limit: Optional[int] = None
    #: (function, column) — column is "*" only for COUNT
    aggregate: Optional[Tuple[str, str]] = None
    #: (column, descending)
    order_by: Optional[Tuple[str, bool]] = None
    #: grouping column (requires an aggregate)
    group_by: Optional[str] = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Any], ...]
    where: Tuple[Condition, ...]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Tuple[Condition, ...]


Statement = object  # union of the five dataclasses above


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- primitives --------------------------------------------------------

    def _error(self, message: str) -> SqlSyntaxError:
        position = (
            self.tokens[self.index].position
            if self.index < len(self.tokens)
            else len(self.sql)
        )
        return SqlSyntaxError(self.sql, position, message)

    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of statement")
        self.index += 1
        return token

    def accept_word(self, *words: str) -> Optional[str]:
        token = self.peek()
        if (
            token is not None
            and token.kind == "word"
            and token.text.lower() in words
        ):
            self.index += 1
            return token.text.lower()
        return None

    def expect_word(self, *words: str) -> str:
        word = self.accept_word(*words)
        if word is None:
            raise self._error(f"expected {'/'.join(words).upper()}")
        return word

    def accept_symbol(self, *symbols: str) -> Optional[str]:
        token = self.peek()
        if (
            token is not None
            and token.kind == "symbol"
            and token.text in symbols
        ):
            self.index += 1
            return token.text
        return None

    def expect_symbol(self, *symbols: str) -> str:
        symbol = self.accept_symbol(*symbols)
        if symbol is None:
            raise self._error(f"expected {' or '.join(symbols)!r}")
        return symbol

    def identifier(self) -> str:
        token = self.next()
        if token.kind != "word":
            raise self._error("expected identifier")
        return token.text

    def literal(self) -> Any:
        token = self.next()
        if token.kind == "symbol" and token.text == "-":
            token = self.next()
            if token.kind != "number":
                raise self._error("expected a number after '-'")
            value = (
                float(token.text) if "." in token.text else int(token.text)
            )
            return -value
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
        raise self._error("expected a literal value")

    # -- statements -----------------------------------------------------------

    def parse(self) -> Statement:
        word = self.expect_word(
            "create", "insert", "select", "update", "delete"
        )
        statement = {
            "create": self._create,
            "insert": self._insert,
            "select": self._select,
            "update": self._update,
            "delete": self._delete,
        }[word]()
        if self.peek() is not None:
            raise self._error("trailing tokens after statement")
        return statement

    def _create(self) -> CreateTable:
        self.expect_word("table")
        table = self.identifier()
        self.expect_symbol("(")
        columns: List[Tuple[str, str]] = []
        primary_key: Optional[str] = None
        while True:
            if self.accept_word("primary"):
                self.expect_word("key")
                self.expect_symbol("(")
                primary_key = self.identifier()
                self.expect_symbol(")")
            else:
                name = self.identifier()
                type_token = self.identifier().lower()
                if type_token not in _TYPE_WORDS:
                    raise self._error(f"unknown column type {type_token!r}")
                columns.append((name, _TYPE_WORDS[type_token]))
            if self.accept_symbol(")"):
                break
            self.expect_symbol(",")
        if primary_key is None:
            raise self._error("CREATE TABLE requires PRIMARY KEY (col)")
        return CreateTable(
            table=table, columns=tuple(columns), primary_key=primary_key
        )

    def _insert(self) -> Insert:
        self.expect_word("into")
        table = self.identifier()
        self.expect_symbol("(")
        columns: List[str] = [self.identifier()]
        while self.accept_symbol(","):
            columns.append(self.identifier())
        self.expect_symbol(")")
        self.expect_word("values")
        self.expect_symbol("(")
        values: List[Any] = [self.literal()]
        while self.accept_symbol(","):
            values.append(self.literal())
        self.expect_symbol(")")
        if len(columns) != len(values):
            raise self._error("column/value count mismatch")
        return Insert(
            table=table, columns=tuple(columns), values=tuple(values)
        )

    def _select_item(self):
        """One projection item: a column name or an aggregate call."""
        name = self.identifier()
        if name.lower() in AGGREGATES and self.accept_symbol("("):
            if self.accept_symbol("*"):
                target = "*"
            else:
                target = self.identifier()
            self.expect_symbol(")")
            if name.lower() != "count" and target == "*":
                raise self._error(f"{name.upper()}(*) is not supported")
            return ("aggregate", (name.lower(), target))
        return ("column", name)

    def _select(self) -> Select:
        columns: List[str] = []
        aggregate = None
        if self.accept_symbol("*"):
            columns = ["*"]
        else:
            items = [self._select_item()]
            while self.accept_symbol(","):
                items.append(self._select_item())
            for kind, payload in items:
                if kind == "aggregate":
                    if aggregate is not None:
                        raise self._error(
                            "only one aggregate per query is supported"
                        )
                    aggregate = payload
                else:
                    columns.append(payload)
            if aggregate is None and not columns:
                raise self._error("empty projection")
        self.expect_word("from")
        table = self.identifier()
        where = self._where()
        group_by = None
        if self.accept_word("group"):
            self.expect_word("by")
            group_by = self.identifier()
        as_of = None
        if self.accept_word("as"):
            self.expect_word("of")
            self.expect_word("block")
            as_of = int(self.literal())
        order_by = None
        if self.accept_word("order"):
            self.expect_word("by")
            order_column = self.identifier()
            descending = False
            if self.accept_word("desc"):
                descending = True
            else:
                self.accept_word("asc")
            order_by = (order_column, descending)
        limit = None
        if self.accept_word("limit"):
            limit = int(self.literal())
        if group_by is not None and aggregate is None:
            raise self._error("GROUP BY requires an aggregate")
        if aggregate is not None and columns and columns != [group_by]:
            raise self._error(
                "non-aggregated columns must match GROUP BY"
            )
        return Select(
            table=table,
            columns=tuple(columns) if columns else ("*",),
            where=where,
            as_of_block=as_of,
            limit=limit,
            aggregate=aggregate,
            order_by=order_by,
            group_by=group_by,
        )

    def _update(self) -> Update:
        table = self.identifier()
        self.expect_word("set")
        assignments: List[Tuple[str, Any]] = []
        while True:
            column = self.identifier()
            self.expect_symbol("=")
            assignments.append((column, self.literal()))
            if not self.accept_symbol(","):
                break
        return Update(
            table=table,
            assignments=tuple(assignments),
            where=self._where(),
        )

    def _delete(self) -> Delete:
        self.expect_word("from")
        table = self.identifier()
        return Delete(table=table, where=self._where())

    # -- where clauses -----------------------------------------------------

    def _where(self) -> Tuple[Condition, ...]:
        if not self.accept_word("where"):
            return ()
        conditions = [self._condition()]
        while self.accept_word("and"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        column = self.identifier()
        if self.accept_word("between"):
            low = self.literal()
            self.expect_word("and")
            high = self.literal()
            return Condition(column=column, op=Op.BETWEEN, value=low, high=high)
        symbol = self.accept_symbol("=", "!=", "<>", "<=", ">=", "<", ">")
        if symbol is None:
            raise self._error("expected a comparison operator")
        op = {
            "=": Op.EQ, "!=": Op.NE, "<>": Op.NE,
            "<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE,
        }[symbol]
        return Condition(column=column, op=op, value=self.literal())


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its statement object."""
    return _Parser(sql).parse()
