"""Client-side retry with deterministic exponential backoff.

The admission point (:class:`~repro.core.node.MessageQueue`) answers
sustained overload with a fast, retryable
:class:`~repro.errors.ClusterOverloadedError`, and nodes shed
past-deadline envelopes with a retryable error response.  Both mean
the same thing to a well-behaved client: *nothing happened, back off
and resubmit*.  :class:`ClusterClient` packages that discipline — the
same ``backoff * 2**attempt`` schedule as
:meth:`repro.integration.simnet.Channel.call_with_retry` — so the CLI,
the benchmarks and the tests all retry the same way.

``sleep`` is injectable: the default really waits (a live cluster
needs wall-clock room to drain its queue), while tests and the
simulation-minded callers can pass a no-op and read the deterministic
``backoff_seconds`` accounting instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.node import SpitzCluster
from repro.core.request_handler import Request, RequestKind, Response
from repro.errors import ClusterOverloadedError, SpitzError
from repro.obs.metrics import snapshot_delta


@dataclass
class ClientStats:
    """Per-client retry/backoff accounting."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    #: Admission rejections (ClusterOverloadedError) seen, including
    #: ones that were retried away.
    rejected_overload: int = 0
    #: Retryable error responses seen (deadline sheds).
    shed_responses: int = 0
    #: Total backoff accumulated by the schedule, in seconds.  With the
    #: default ``sleep`` this time was actually waited; with an
    #: injected no-op it is pure accounting (cf. simnet's
    #: ``backoff_units``).
    backoff_seconds: float = 0.0
    #: Calls that exhausted every attempt.
    exhausted: int = 0
    #: Per-request-kind outcome split, keyed ``"get"``/``"put"``/... ->
    #: ``{"ok": n, "error": n}``.  The client-side mirror of the
    #: server's ``requests.kind.<kind>.ok``/``.errors`` counters, so a
    #: loadgen worker's view can be reconciled against the cluster's.
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record_outcome(self, kind: str, ok: bool) -> None:
        split = self.by_kind.setdefault(kind, {"ok": 0, "error": 0})
        split["ok" if ok else "error"] += 1


class ClusterClient:
    """Submit requests to a :class:`SpitzCluster` with retry/backoff.

    Retries exactly two failure shapes, both side-effect free:

    - :class:`ClusterOverloadedError` raised at admission (the request
      never entered the queue) — backs off by the *larger* of the
      server's suggested ``retry_after`` and the client's own
      exponential schedule;
    - a retryable error response (the envelope was shed unprocessed
      after its deadline).

    Anything else — real error responses, :class:`TimeoutError`,
    :class:`ClusterStoppedError` — propagates untouched: those may
    have side effects or will not improve with retrying.
    """

    def __init__(
        self,
        cluster: SpitzCluster,
        attempts: int = 4,
        backoff: float = 0.02,
        timeout: float = 10.0,
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ):
        if attempts < 1:
            raise ValueError("attempts must be positive")
        self._cluster = cluster
        self._attempts = attempts
        self._backoff = backoff
        self._timeout = timeout
        self._sleep = sleep if sleep is not None else (lambda _s: None)
        self.stats = ClientStats()

    def _backoff_for(self, attempt: int, suggested: float = 0.0) -> float:
        return max(self._backoff * (2 ** attempt), suggested)

    def call(
        self, request: Request, timeout: Optional[float] = None
    ) -> Response:
        """Submit with retries; returns the final response.

        Raises the last :class:`ClusterOverloadedError` if every
        attempt was rejected at admission; returns the last shed
        response if every attempt expired in the queue.
        """
        self.stats.calls += 1
        timeout = timeout if timeout is not None else self._timeout
        last_error: Optional[SpitzError] = None
        last_response: Optional[Response] = None
        for attempt in range(self._attempts):
            self.stats.attempts += 1
            suggested = 0.0
            try:
                response = self._cluster.submit(request, timeout=timeout)
            except ClusterOverloadedError as error:
                self.stats.rejected_overload += 1
                last_error, last_response = error, None
                suggested = error.retry_after
            else:
                if response.ok or not response.retryable:
                    self.stats.record_outcome(
                        request.kind.value, response.ok
                    )
                    return response
                self.stats.shed_responses += 1
                last_error, last_response = None, response
            if attempt == self._attempts - 1:
                break
            self.stats.retries += 1
            delay = self._backoff_for(attempt, suggested)
            self.stats.backoff_seconds += delay
            self._sleep(delay)
        self.stats.exhausted += 1
        self.stats.record_outcome(request.kind.value, False)
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error

    # -- convenience wrappers (what the CLI and benchmarks drive) ------

    def put(self, key: bytes, value: bytes, verify: bool = False) -> Response:
        return self.call(
            Request(RequestKind.PUT, {"key": key, "value": value}, verify)
        )

    def get(self, key: bytes, verify: bool = False) -> Response:
        return self.call(Request(RequestKind.GET, {"key": key}, verify))

    def get_many(self, keys, verify: bool = False) -> Response:
        """Batch point read; with ``verify`` the response carries one
        :class:`~repro.core.proofs.LedgerMultiProof` for every key."""
        return self.call(
            Request(RequestKind.MULTI_GET, {"keys": list(keys)}, verify)
        )

    def search(self, column, predicate, verify: bool = False) -> Response:
        """Secondary-index search on ``column``.

        ``predicate`` is a
        :class:`~repro.search.proofs.SearchPredicate` or a string in
        its CLI grammar (``'>= 10'``, ``'between 3 7'``, a bare
        keyword).  With ``verify`` the response carries a
        :class:`~repro.search.proofs.SearchProof` covering membership
        and completeness.
        """
        from repro.search.proofs import SearchPredicate

        if isinstance(predicate, str):
            predicate = SearchPredicate.parse(predicate)
        return self.call(
            Request(
                RequestKind.SEARCH,
                {"column": column, "predicate": predicate.to_payload()},
                verify,
            )
        )


@dataclass
class SaturationReport:
    """Outcome of one offered-load level against a bounded cluster."""

    clients: int
    ops_per_client: int
    offered: int = 0
    completed: int = 0
    rejected_overload: int = 0
    shed: int = 0
    failed_on_stop: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    wait_p99: Optional[float] = None
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "offered": self.offered,
            "completed": self.completed,
            "rejected_overload": self.rejected_overload,
            "shed": self.shed,
            "failed_on_stop": self.failed_on_stop,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
            "queue_wait_p99": self.wait_p99,
        }


def run_saturation(
    clients: int,
    ops_per_client: int = 25,
    nodes: int = 2,
    capacity: int = 16,
    overload_window: float = 0.01,
    deadline: float = 0.25,
    attempts: int = 1,
    service_delay: float = 0.0,
    metrics=None,
) -> SaturationReport:
    """Drive offered load (possibly past node capacity) at one cluster.

    Spins up a bounded in-process cluster, hammers it with ``clients``
    threads each issuing ``ops_per_client`` PUTs through a
    :class:`ClusterClient`, and reports the reject/shed/complete split.
    ``service_delay`` artificially slows every request (benchmarks use
    it to push a small machine past saturation deterministically).
    With ``attempts=1`` the report measures raw admission behaviour;
    higher values measure how far retry-with-backoff recovers goodput.

    ``metrics`` lets the caller share a registry with the cluster (the
    benchmark harness passes its per-run registry so saturation traces
    land in its flight recorder); the report's counters are computed
    as a before/after delta, so a reused registry does not leak prior
    activity into the accounting.
    """
    cluster = SpitzCluster(
        nodes=nodes,
        queue_capacity=capacity,
        overload_window=overload_window,
        metrics=metrics,
    )
    before = cluster.stats()
    if service_delay > 0:
        for node in cluster.nodes:
            node.handler = _SlowHandler(node.handler, service_delay)
    report = SaturationReport(clients=clients, ops_per_client=ops_per_client)
    lock = threading.Lock()
    cluster.start()
    start = time.perf_counter()

    def worker(worker_id: int) -> None:
        client = ClusterClient(
            cluster, attempts=attempts, backoff=overload_window,
            timeout=deadline,
        )
        completed = errors = rejected = 0
        for i in range(ops_per_client):
            key = f"sat:{worker_id}:{i}".encode()
            try:
                response = client.put(key, b"v")
            except ClusterOverloadedError:
                rejected += 1
                continue
            except TimeoutError:
                # The envelope outlived our wait; a node will shed it
                # (counted by the queue) or stop() will fail it.
                continue
            if not response.ok and not response.retryable:
                errors += 1
            elif response.ok:
                completed += 1
        with lock:
            report.completed += completed
            report.errors += errors
            # Admission rejections that survived the client's retries.
            report.rejected_overload += rejected

    threads = [
        threading.Thread(target=worker, args=(n,), daemon=True)
        for n in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - start
    cluster.stop()
    snap = cluster.stats()
    delta = snapshot_delta(before, snap)
    counters = delta["counters"]
    report.offered = clients * ops_per_client
    report.shed = counters.get("queue.shed", 0)
    report.failed_on_stop = counters.get("cluster.failed_on_stop", 0)
    report.counters = {
        name: counters.get(name, 0)
        for name in (
            "queue.submitted",
            "queue.rejected_overload",
            "queue.shed",
            "node.processed",
            "cluster.failed_on_stop",
        )
    }
    wait = snap["histograms"].get("queue.wait_seconds", {})
    report.wait_p99 = wait.get("p99")
    return report


class _SlowHandler:
    """Wrap a RequestHandler with a fixed per-request service delay."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay

    def handle(self, request) -> Response:
        time.sleep(self._delay)
        return self._inner.handle(request)

    def __getattr__(self, name):
        return getattr(self._inner, name)


__all__: List[str] = [
    "ClientStats",
    "ClusterClient",
    "SaturationReport",
    "run_saturation",
]
